//! Protection-matrix differential tests: every cell of the configuration
//! grid must preserve program semantics exactly.
//!
//! Three MiniC kernels (8-queens, sieve of Eratosthenes, Collatz records,
//! from `flexprot::cc::kernels`) are checked against Rust reference
//! implementations computed in-test,
//! and three assembly workloads against their recorded reference outputs —
//! each across {no protection, guards at two densities, encryption at all
//! three keying granularities, guards+encryption}.

use flexprot::core::{
    protect, EncryptConfig, Granularity, GuardConfig, ProtectionConfig, Selection,
};
use flexprot::isa::Image;
use flexprot::sim::{Outcome, SimConfig};

const GUARD_KEY: u64 = 0x0BAD_C0DE_CAFE_F00D;
const ENC_KEY: u64 = 0x5EED_5EED_5EED_5EED;

/// The configuration grid every kernel is swept over.
fn grid() -> Vec<(&'static str, ProtectionConfig)> {
    let guards = |density: f64| GuardConfig {
        key: GUARD_KEY,
        ..GuardConfig::with_density(density)
    };
    let enc = |granularity: Granularity| EncryptConfig {
        granularity,
        ..EncryptConfig::whole_program(ENC_KEY)
    };
    vec![
        ("none", ProtectionConfig::new()),
        (
            "guards d=0.25",
            ProtectionConfig::new().with_guards(guards(0.25)),
        ),
        (
            "guards d=1.0",
            ProtectionConfig::new().with_guards(guards(1.0)),
        ),
        (
            "enc program",
            ProtectionConfig::new().with_encryption(enc(Granularity::Program)),
        ),
        (
            "enc function",
            ProtectionConfig::new().with_encryption(enc(Granularity::Function)),
        ),
        (
            "enc block",
            ProtectionConfig::new().with_encryption(enc(Granularity::Block)),
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(guards(1.0))
                .with_encryption(enc(Granularity::Function)),
        ),
    ]
}

/// Runs `image` through every grid cell, asserting output and exit code
/// match the reference.
fn assert_matrix(name: &str, image: &Image, expected: &str) {
    for (cell, config) in grid() {
        let protected = protect(image, &config, None)
            .unwrap_or_else(|e| panic!("{name}/{cell}: protect failed: {e}"));
        let r = protected.run(SimConfig::default());
        assert_eq!(
            r.outcome,
            Outcome::Exit(0),
            "{name}/{cell}: wrong exit ({:?})",
            r.outcome
        );
        assert_eq!(r.output, expected, "{name}/{cell}: output diverged");
    }
}

fn compile(name: &str, source: &str) -> Image {
    flexprot::cc::compile_to_image(source).unwrap_or_else(|e| panic!("{name}: {e}"))
}

// ---------------------------------------------------------------- 8-queens

/// Rust reference: number of 8-queens placements.
fn queens_ref() -> String {
    fn solve(row: usize, cols: &mut [i32; 8]) -> u32 {
        if row == 8 {
            return 1;
        }
        let mut count = 0;
        for c in 0..8i32 {
            let safe = cols[..row]
                .iter()
                .enumerate()
                .all(|(r, &qc)| qc != c && (qc - c).abs() != (row - r) as i32);
            if safe {
                cols[row] = c;
                count += solve(row + 1, cols);
            }
        }
        count
    }
    solve(0, &mut [0; 8]).to_string()
}

#[test]
fn queens_matrix() {
    let image = compile("queens", flexprot::cc::kernels::QUEENS);
    assert_matrix("queens", &image, &queens_ref());
}

// ------------------------------------------------------------------ sieve

/// Rust reference: prime count and prime sum below 200.
fn sieve_ref() -> String {
    let n = 200usize;
    let mut flags = vec![true; n];
    let (mut count, mut sum) = (0u32, 0u32);
    for i in 2..n {
        if flags[i] {
            count += 1;
            sum += i as u32;
            let mut j = i + i;
            while j < n {
                flags[j] = false;
                j += i;
            }
        }
    }
    format!("{count} {sum}")
}

#[test]
fn sieve_matrix() {
    let image = compile("sieve", flexprot::cc::kernels::SIEVE);
    assert_matrix("sieve", &image, &sieve_ref());
}

// ---------------------------------------------------------------- collatz

/// Rust reference: the 1..=120 Collatz record holder and its step count.
fn collatz_ref() -> String {
    let steps = |mut n: u64| {
        let mut s = 0u32;
        while n != 1 {
            n = if n.is_multiple_of(2) {
                n / 2
            } else {
                3 * n + 1
            };
            s += 1;
        }
        s
    };
    let (mut best, mut arg) = (0, 1);
    for i in 1..=120u64 {
        let s = steps(i);
        if s > best {
            best = s;
            arg = i;
        }
    }
    format!("{arg} {best}")
}

#[test]
fn collatz_matrix() {
    let image = compile("collatz", flexprot::cc::kernels::COLLATZ);
    assert_matrix("collatz", &image, &collatz_ref());
}

// ------------------------------------------------- assembly workloads

#[test]
fn assembly_workload_matrix() {
    for name in ["rle", "bitcount", "fir"] {
        let workload = flexprot::workloads::by_name(name).expect("kernel");
        let image = workload.image();
        assert_matrix(name, &image, &workload.expected_output());
    }
}

// The grid itself must exercise distinct selections (guard against a
// refactor collapsing cells into duplicates).
#[test]
fn grid_cells_are_distinct() {
    let cells = grid();
    assert_eq!(cells.len(), 7);
    let selections: Vec<String> = cells.iter().map(|(_, c)| format!("{c:?}")).collect();
    for (i, a) in selections.iter().enumerate() {
        for b in &selections[i + 1..] {
            assert_ne!(a, b);
        }
    }
    let densities: Vec<f64> = cells
        .iter()
        .filter_map(|(_, c)| c.guards.as_ref())
        .map(|g| match g.selection {
            Selection::Density(d) => d,
            _ => unreachable!("grid uses density selection"),
        })
        .collect();
    assert!(densities.contains(&0.25) && densities.contains(&1.0));
}
