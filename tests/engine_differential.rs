//! Differential fuzzing of the two simulator cores.
//!
//! The predecoded engine (fill-path transform + decoded-line store) must
//! be observationally identical to the reference per-fetch interpreter:
//! same outcome, same output, and bit-identical statistics — cycles,
//! cache misses and monitor fill penalties included. This sweep runs 64
//! randomly generated MiniC programs through every cell of the
//! 7-configuration protection grid on both engines and asserts full
//! [`flexprot::sim::RunResult`] equality.
//!
//! Generated programs may loop past the fuel limit; that is fine — the
//! engines must then agree on `OutOfFuel` at the same instruction count.

use flexprot::core::{protect, EncryptConfig, Granularity, GuardConfig, ProtectionConfig};
use flexprot::isa::{Inst, Reg, Rng64};
use flexprot::sim::{EngineKind, Machine, Outcome, SimConfig};

const GUARD_KEY: u64 = 0x0BAD_C0DE_CAFE_F00D;
const ENC_KEY: u64 = 0x5EED_5EED_5EED_5EED;
const FUEL: u64 = 200_000;

/// The same 7-cell grid as `tests/protection_matrix.rs`.
fn grid() -> Vec<(&'static str, ProtectionConfig)> {
    let guards = |density: f64| GuardConfig {
        key: GUARD_KEY,
        ..GuardConfig::with_density(density)
    };
    let enc = |granularity: Granularity| EncryptConfig {
        granularity,
        ..EncryptConfig::whole_program(ENC_KEY)
    };
    vec![
        ("none", ProtectionConfig::new()),
        (
            "guards d=0.25",
            ProtectionConfig::new().with_guards(guards(0.25)),
        ),
        (
            "guards d=1.0",
            ProtectionConfig::new().with_guards(guards(1.0)),
        ),
        (
            "enc program",
            ProtectionConfig::new().with_encryption(enc(Granularity::Program)),
        ),
        (
            "enc function",
            ProtectionConfig::new().with_encryption(enc(Granularity::Function)),
        ),
        (
            "enc block",
            ProtectionConfig::new().with_encryption(enc(Granularity::Block)),
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(guards(1.0))
                .with_encryption(enc(Granularity::Function)),
        ),
    ]
}

/// A random well-formed MiniC program (the grammar from the verifier's
/// property tests): straight-line assignments, nested ifs, decrementing
/// while loops and helper calls over four variables.
fn random_minic(rng: &mut Rng64) -> String {
    const VARS: [&str; 4] = ["a", "b", "c", "d"];
    fn var(rng: &mut Rng64) -> &'static str {
        VARS[rng.index(VARS.len())]
    }
    fn expr(rng: &mut Rng64) -> String {
        match rng.index(4) {
            0 => var(rng).to_owned(),
            1 => rng.index(50).to_string(),
            2 => format!(
                "{} {} {}",
                var(rng),
                ["+", "-", "*"][rng.index(3)],
                var(rng)
            ),
            _ => format!("{} + {}", var(rng), 1 + rng.index(9)),
        }
    }
    fn stmt(rng: &mut Rng64, depth: usize, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match rng.index(if depth > 0 { 5 } else { 2 }) {
            0 | 1 => {
                let (v, e) = (var(rng), expr(rng));
                out.push_str(&format!("{pad}{v} = {e};\n"));
            }
            2 => {
                out.push_str(&format!("{pad}if ({} < {}) {{\n", var(rng), rng.index(40)));
                block(rng, depth - 1, out, indent + 1);
                if rng.chance(0.5) {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    block(rng, depth - 1, out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            3 => {
                let v = var(rng);
                out.push_str(&format!("{pad}while ({v} > 0) {{\n"));
                block(rng, depth - 1, out, indent + 1);
                out.push_str(&format!("{}{v} = {v} - 1;\n", "    ".repeat(indent + 1)));
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                let v = var(rng);
                out.push_str(&format!("{pad}{v} = helper({});\n", expr(rng)));
            }
        }
    }
    fn block(rng: &mut Rng64, depth: usize, out: &mut String, indent: usize) {
        for _ in 0..1 + rng.index(3) {
            stmt(rng, depth, out, indent);
        }
    }

    let mut body = String::new();
    for v in VARS {
        body.push_str(&format!("    int {v} = {};\n", rng.index(20)));
    }
    block(rng, 2, &mut body, 1);
    body.push_str("    print(a + b + c + d);\n    return 0;\n");
    format!("int helper(int x) {{ return x * 2 + 1; }}\n\nint main() {{\n{body}}}\n")
}

/// Self-modifying code aimed at the decode cache's weakest spot: a store
/// into the *currently executing* I-cache line. The predecoded engine
/// keeps decoded instructions per cache line, so `note_text_write` must
/// invalidate the patched slot before the very next fetch — the store at
/// text offset 16 rewrites the word at offset 20 (same 32-byte line, one
/// instruction ahead of the PC), and both engines must execute the
/// patched instruction, not the stale decoded one.
#[test]
fn store_into_executing_line_invalidates_decoded_slot_before_next_fetch() {
    // The patched-in instruction is computed from the real encoder so the
    // test cannot drift from the ISA: `ori $a0, $zero, 2`.
    let patch_word = Inst::Ori {
        rt: Reg::A0,
        rs: Reg::ZERO,
        imm: 2,
    }
    .encode();
    let source = format!(
        r#"
main:   la   $t0, patch          # words 0-1
        lui  $t1, {hi}
        ori  $t1, $t1, {lo}
        sw   $t1, 0($t0)         # word 4 (offset 16): patches offset 20
patch:  li   $a0, 1              # word 5 (offset 20): overwritten above
        li   $v0, 1
        syscall                  # prints $a0 -- must be the patched 2
        li   $v0, 10
        li   $a0, 0
        syscall
"#,
        hi = patch_word >> 16,
        lo = patch_word & 0xFFFF
    );
    let image = flexprot::asm::assemble(&source).expect("self-modifying program assembles");
    // Both the store and its target sit in one default 32-byte I-cache
    // line; if the layout ever drifts, the test would silently stop
    // exercising the same-line case, so pin it.
    let patch_addr = image.symbol("patch").unwrap();
    let store_addr = image.entry + 16;
    assert_eq!(
        store_addr / 32,
        patch_addr / 32,
        "store and patch target must share an I-cache line"
    );

    let run = |kind| Machine::new(&image, SimConfig::default().with_engine(kind)).run();
    let fast = run(EngineKind::Predecoded);
    let reference = run(EngineKind::Reference);
    assert_eq!(fast.outcome, Outcome::Exit(0));
    assert_eq!(
        fast.output, "2",
        "stale decoded slot survived the text store"
    );
    assert_eq!(fast, reference, "engines diverged on same-line text store");
}

#[test]
fn engines_agree_on_random_programs_across_the_protection_grid() {
    let mut rng = Rng64::new(0xD1FF_E12E_4CE5_0001);
    let grid = grid();
    for case in 0..64 {
        let source = random_minic(&mut rng);
        let image = flexprot::cc::compile_to_image(&source)
            .unwrap_or_else(|e| panic!("random-{case}: compile failed: {e}\n{source}"));
        for (cell, config) in &grid {
            let protected = protect(&image, config, None)
                .unwrap_or_else(|e| panic!("random-{case}/{cell}: protect failed: {e}"));
            let sim = SimConfig {
                max_instructions: FUEL,
                ..SimConfig::default()
            };
            let fast = protected.run(sim.clone().with_engine(EngineKind::Predecoded));
            let reference = protected.run(sim.with_engine(EngineKind::Reference));
            assert_eq!(
                fast, reference,
                "random-{case}/{cell}: engines diverged\n{source}"
            );
        }
    }
}
