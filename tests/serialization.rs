//! Cross-crate integration: protected programs survive a full
//! serialize → deserialize → run round trip — the shipping path of a real
//! deployment (binary to the device, monitor config to the FPGA).

use flexprot::core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
use flexprot::isa::Image;
use flexprot::secmon::{SecMon, SecMonConfig};
use flexprot::sim::{Machine, Outcome, SimConfig};

#[test]
fn every_workload_ships_through_the_containers() {
    for workload in flexprot::workloads::all() {
        let image = workload.image();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(0.5))
            .with_encryption(EncryptConfig::whole_program(0x51AB));
        let protected = protect(&image, &config, None).expect("protect");

        // Ship: image and monitor config as raw bytes.
        let image_bytes = protected.image.to_bytes();
        let config_bytes = protected.secmon.to_bytes();

        // Receive and run.
        let shipped_image = Image::from_bytes(&image_bytes).expect("image container");
        let shipped_config = SecMonConfig::from_bytes(&config_bytes).expect("config container");
        assert_eq!(shipped_image, protected.image, "{}", workload.name);
        assert_eq!(shipped_config, protected.secmon, "{}", workload.name);

        let run = Machine::with_monitor(
            &shipped_image,
            SimConfig::default(),
            SecMon::new(shipped_config),
        )
        .run();
        assert_eq!(run.outcome, Outcome::Exit(0), "{}", workload.name);
        assert_eq!(run.output, workload.expected_output(), "{}", workload.name);
    }
}

#[test]
fn watermark_round_trips_through_the_containers() {
    let workload = flexprot::workloads::by_name("fir").expect("kernel");
    let image = workload.image();
    let config = ProtectionConfig::new()
        .with_guards(GuardConfig::with_density(1.0))
        .with_encryption(EncryptConfig::whole_program(0x77))
        .with_watermark(*b"BUILD-2026-07");
    let protected = protect(&image, &config, None).expect("protect");

    // Reconstruct the Protected from shipped bytes and extract.
    let shipped = flexprot::core::Protected {
        image: Image::from_bytes(&protected.image.to_bytes()).expect("image"),
        secmon: SecMonConfig::from_bytes(&protected.secmon.to_bytes()).expect("config"),
        report: protected.report,
    };
    assert_eq!(
        shipped.extract_watermark(13).as_deref(),
        Some(&b"BUILD-2026-07"[..])
    );
    let run = shipped.run(SimConfig::default());
    assert_eq!(run.outcome, Outcome::Exit(0));
}

#[test]
fn corrupted_containers_are_rejected_not_misparsed() {
    let workload = flexprot::workloads::by_name("hash").expect("kernel");
    let image = workload.image();
    let protected = protect(
        &image,
        &ProtectionConfig::new().with_guards(GuardConfig::with_density(0.3)),
        None,
    )
    .expect("protect");
    let image_bytes = protected.image.to_bytes();
    let config_bytes = protected.secmon.to_bytes();
    // Any truncation must be an error, never a partial parse.
    for cut in [0, 1, image_bytes.len() / 2, image_bytes.len() - 1] {
        assert!(Image::from_bytes(&image_bytes[..cut]).is_err(), "cut {cut}");
    }
    for cut in [0, 3, config_bytes.len() / 2, config_bytes.len() - 1] {
        assert!(
            SecMonConfig::from_bytes(&config_bytes[..cut]).is_err(),
            "cut {cut}"
        );
    }
}
