//! Cross-crate integration: the observability layer's metrics must
//! reconcile **exactly** with the simulator's own accounting, and guard
//! counters must match the protection toolchain's static story.

use flexprot::core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
use flexprot::sim::{Outcome, SimConfig};
use flexprot::trace::{Recorder, METRICS_SCHEMA};

/// A straight-line program: no branches, no calls, so every guard window
/// runs exactly once — `guard_checks_passed` must equal the static site
/// count recorded in the monitor configuration.
const STRAIGHT_LINE: &str = r#"
main:   li   $t0, 21
        add  $t1, $t0, $t0
        sub  $t2, $t1, $t0
        xor  $t3, $t1, $t2
        sll  $t4, $t3, 1
        or   $a0, $t4, $t3
        andi $a0, $a0, 0xFF
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#;

/// A loopy program: sites repeat, so total checks exceed distinct sites.
const LOOPY: &str = r#"
main:   li   $s0, 25
        li   $s1, 0
loop:   addu $s1, $s1, $s0
        addi $s0, $s0, -1
        bgtz $s0, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#;

#[test]
fn traced_run_reconciles_exactly_with_sim_result() {
    let image = flexprot::asm::assemble_or_panic(LOOPY);
    let config = ProtectionConfig::new()
        .with_guards(GuardConfig::with_density(1.0))
        .with_encryption(EncryptConfig::whole_program(0xD00D_1E55));
    let protected = protect(&image, &config, None).unwrap();
    let (sink, recorder) = Recorder::new().shared();
    let r = protected.run_traced(SimConfig::default(), &sink);
    assert_eq!(r.outcome, Outcome::Exit(0));

    let recorder = recorder.borrow();
    let m = recorder.metrics();
    // Event-derived counters equal the simulator's Stats, field by field.
    assert_eq!(m.counter("icache_accesses"), r.stats.icache_accesses);
    assert_eq!(m.counter("icache_misses"), r.stats.icache_misses);
    assert_eq!(m.counter("dcache_accesses"), r.stats.dcache_accesses);
    assert_eq!(m.counter("dcache_misses"), r.stats.dcache_misses);
    assert_eq!(m.counter("dcache_writebacks"), r.stats.dcache_writebacks);
    assert_eq!(m.counter("instructions_committed"), r.stats.instructions);
    assert_eq!(
        m.counter("decrypt_stall_cycles"),
        r.stats.monitor_fill_cycles
    );
    // The RunEnd reconciliation record carries the authoritative stats.
    assert_eq!(m.counter("sim_cycles"), r.stats.cycles);
    assert_eq!(m.counter("sim_instructions"), r.stats.instructions);
    assert_eq!(m.counter("sim_icache_misses"), r.stats.icache_misses);
    assert_eq!(m.counter("sim_dcache_misses"), r.stats.dcache_misses);
    assert_eq!(
        m.counter("sim_monitor_fill_cycles"),
        r.stats.monitor_fill_cycles
    );
    // Histogram mass equals the counters it decomposes.
    let fills = m.histogram("icache_fill_cycles").unwrap();
    assert_eq!(fills.count(), r.stats.icache_misses);
    assert_eq!(
        m.histogram("decrypt_stall_cycles").unwrap().sum(),
        r.stats.monitor_fill_cycles
    );
    // The JSON document round-trips with the stable schema tag.
    let doc = m.to_json();
    let value = flexprot::trace::json::parse(&doc).unwrap();
    assert_eq!(
        value
            .get("schema")
            .and_then(flexprot::trace::json::Value::as_str),
        Some(METRICS_SCHEMA)
    );
}

#[test]
fn straight_line_clean_run_checks_every_site_exactly_once() {
    let image = flexprot::asm::assemble_or_panic(STRAIGHT_LINE);
    let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
    let protected = protect(&image, &config, None).unwrap();
    let static_sites = protected.secmon.sites.len() as u64;
    assert!(static_sites > 0, "density 1.0 must insert guards");

    let (sink, recorder) = Recorder::new().shared();
    let r = protected.run_traced(SimConfig::default(), &sink);
    assert_eq!(r.outcome, Outcome::Exit(0));

    let recorder = recorder.borrow();
    let m = recorder.metrics();
    assert_eq!(m.counter("guard_checks_passed"), static_sites);
    assert_eq!(m.counter("guard_sites_passed"), static_sites);
    assert_eq!(recorder.distinct_sites_passed() as u64, static_sites);
    assert_eq!(m.counter("guard_checks_failed"), 0);
    assert_eq!(m.counter("spacing_exceeded"), 0);
    assert!(recorder.first_failure().is_none());
}

#[test]
fn loopy_clean_run_repeats_sites_but_never_fails() {
    let image = flexprot::asm::assemble_or_panic(LOOPY);
    let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
    let protected = protect(&image, &config, None).unwrap();
    let static_sites = protected.secmon.sites.len() as u64;

    let (sink, recorder) = Recorder::new().shared();
    let r = protected.run_traced(SimConfig::default(), &sink);
    assert_eq!(r.outcome, Outcome::Exit(0));

    let recorder = recorder.borrow();
    let m = recorder.metrics();
    // The loop body's guard runs 25 times: strictly more checks than sites.
    assert!(m.counter("guard_checks_passed") > static_sites);
    assert!(m.counter("guard_sites_passed") <= static_sites);
    assert_eq!(m.counter("guard_checks_failed"), 0);
    assert_eq!(
        m.counter("guard_windows_opened"),
        m.counter("guard_windows_closed")
    );
}
