//! Acceptance tests for the static tamper-surface analysis.
//!
//! Two claims are checked against the same protection-matrix grid the
//! differential tests sweep:
//!
//! 1. the coverage analysis *proves* full reachable coverage for every
//!    fully-protected cell, and *refutes* it with a concrete witness word
//!    for every under-protected one;
//! 2. the static oracle built from the surface map predicts dynamic
//!    detection with precision and recall ≥ 0.9 on the default attack
//!    sweep.

use flexprot::attack::{evaluate, Attack, AttackSummary};
use flexprot::core::{protect, EncryptConfig, Granularity, GuardConfig, ProtectionConfig};
use flexprot::isa::Image;
use flexprot::sim::SimConfig;
use flexprot::verify::SurfaceMap;

const GUARD_KEY: u64 = 0x0BAD_C0DE_CAFE_F00D;
const ENC_KEY: u64 = 0x5EED_5EED_5EED_5EED;

fn guards(density: f64) -> GuardConfig {
    GuardConfig {
        key: GUARD_KEY,
        ..GuardConfig::with_density(density)
    }
}

fn enc(granularity: Granularity) -> EncryptConfig {
    EncryptConfig {
        granularity,
        ..EncryptConfig::whole_program(ENC_KEY)
    }
}

/// The golden images: MiniC kernels plus assembly workloads.
fn programs() -> Vec<(String, Image)> {
    let mut out: Vec<(String, Image)> = flexprot::cc::kernels::all()
        .into_iter()
        .map(|(name, src)| {
            let image =
                flexprot::cc::compile_to_image(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name.to_owned(), image)
        })
        .collect();
    for name in ["rle", "bitcount", "fir"] {
        let workload = flexprot::workloads::by_name(name).expect("kernel");
        out.push((name.to_owned(), workload.image()));
    }
    out
}

/// Internal consistency: the entry list is exactly the set of words that
/// no sound window and no cipher region covers.
fn assert_consistent(label: &str, image: &Image, map: &SurfaceMap) {
    assert_eq!(map.text_words, image.text.len(), "{label}");
    assert_eq!(map.covered.len(), map.text_words, "{label}");
    let mut expected = Vec::new();
    for i in 0..map.text_words {
        if !map.covered[i] && !map.encrypted[i] {
            expected.push(image.text_base + 4 * i as u32);
        }
    }
    let mut listed: Vec<u32> = map.entries.iter().map(|e| e.addr).collect();
    listed.sort_unstable();
    assert_eq!(listed, expected, "{label}: entries vs bitmaps");
    for e in &map.entries {
        let i = ((e.addr - image.text_base) / 4) as usize;
        assert_eq!(e.reachable, map.reachable[i], "{label}: {:#010x}", e.addr);
    }
}

#[test]
fn coverage_is_proved_or_refuted_for_every_matrix_cell() {
    // `full` records what the analysis must conclude for the cell: a
    // proof of full reachable coverage, or a refutation with a witness.
    let cells: Vec<(&str, ProtectionConfig, Option<bool>)> = vec![
        ("none", ProtectionConfig::new(), Some(false)),
        (
            "guards d=0.25",
            ProtectionConfig::new().with_guards(guards(0.25)),
            Some(false),
        ),
        (
            "guards d=1.0",
            ProtectionConfig::new().with_guards(guards(1.0)),
            Some(true),
        ),
        (
            "enc program",
            ProtectionConfig::new().with_encryption(enc(Granularity::Program)),
            Some(true),
        ),
        // Function/block keying covers what the front end mapped into
        // regions; whether that is everything depends on the program, so
        // only the verdict's witness obligation is checked.
        (
            "enc function",
            ProtectionConfig::new().with_encryption(enc(Granularity::Function)),
            None,
        ),
        (
            "enc block",
            ProtectionConfig::new().with_encryption(enc(Granularity::Block)),
            None,
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(guards(1.0))
                .with_encryption(enc(Granularity::Function)),
            Some(true),
        ),
    ];
    for (name, image) in programs() {
        for (cell, config, full) in &cells {
            let label = format!("{name}/{cell}");
            let protected = protect(&image, config, None)
                .unwrap_or_else(|e| panic!("{label}: protect failed: {e}"));
            let map = protected.surface_map();
            assert_consistent(&label, &protected.image, &map);
            let proved = map.full_reachable_coverage();
            if let Some(expected) = full {
                assert_eq!(proved, *expected, "{label}: verdict");
            }
            if !proved {
                // The refutation must carry a concrete witness: a
                // reachable word no protection mechanism covers.
                let witness = map
                    .entries
                    .iter()
                    .find(|e| e.reachable)
                    .unwrap_or_else(|| panic!("{label}: refuted without witness"));
                let i = ((witness.addr - protected.image.text_base) / 4) as usize;
                assert!(
                    !map.covered[i] && !map.encrypted[i] && map.reachable[i],
                    "{label}: witness {:#010x} is not a gap",
                    witness.addr
                );
            }
        }
    }
}

#[test]
fn static_oracle_meets_precision_and_recall_targets() {
    let workload = flexprot::workloads::by_name("rle").expect("kernel");
    let image = workload.image();
    let expected = workload.expected_output();
    let configs = vec![
        ("guards", ProtectionConfig::new().with_guards(guards(1.0))),
        (
            "enc",
            ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(ENC_KEY)),
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(guards(1.0))
                .with_encryption(EncryptConfig::whole_program(ENC_KEY)),
        ),
    ];
    let sim = SimConfig::default();
    let mut agg = AttackSummary::default();
    for (name, config) in configs {
        let protected = protect(&image, &config, None).unwrap_or_else(|e| panic!("{name}: {e}"));
        for attack in Attack::all() {
            let summary = evaluate(&protected, &expected, attack, 10, 0xA77A_C4E5, &sim);
            agg.merge(&summary);
        }
    }
    assert!(agg.oracle_trials() > 0);
    assert!(
        agg.oracle_precision() >= 0.9,
        "precision {:.3} over {} trials (tp {} fp {} fn {} tn {})",
        agg.oracle_precision(),
        agg.oracle_trials(),
        agg.oracle_true_pos,
        agg.oracle_false_pos,
        agg.oracle_false_neg,
        agg.oracle_true_neg,
    );
    assert!(
        agg.oracle_recall() >= 0.9,
        "recall {:.3} over {} trials (tp {} fp {} fn {} tn {})",
        agg.oracle_recall(),
        agg.oracle_trials(),
        agg.oracle_true_pos,
        agg.oracle_false_pos,
        agg.oracle_false_neg,
        agg.oracle_true_neg,
    );
}
