//! Cross-checks the two independent control-flow recoveries.
//!
//! The protection toolchain (`flexprot::core::Cfg::recover`) and the
//! static verifier (`flexprot::verify::{Flow, Cfg}`) each rebuild a CFG
//! from the bare image — deliberately written twice so the verifier can
//! catch toolchain bugs. That redundancy is only worth anything if the
//! two agree: this test pins the contract that both recoveries partition
//! the text segment into the *same* basic-block boundaries for every
//! program of the protection matrix, and that the shared anchor set
//! ([`flexprot::isa::Image::anchor_indices`]) is a subset of both.

use flexprot::isa::Image;
use flexprot::verify::{Cfg as VerifyCfg, Flow};

/// The six matrix programs: three MiniC kernels and three assembly
/// workloads.
fn matrix_images() -> Vec<(String, Image)> {
    let mut images = Vec::new();
    for (name, source) in [
        ("queens", flexprot::cc::kernels::QUEENS),
        ("sieve", flexprot::cc::kernels::SIEVE),
        ("collatz", flexprot::cc::kernels::COLLATZ),
    ] {
        let image = flexprot::cc::compile_to_image(source)
            .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        images.push((name.to_owned(), image));
    }
    for name in ["rle", "bitcount", "fir"] {
        let workload = flexprot::workloads::by_name(name).expect("kernel");
        images.push((name.to_owned(), workload.image()));
    }
    images
}

/// Block boundaries as half-open word-index ranges, from the toolchain's
/// recovery.
fn core_boundaries(image: &Image) -> Vec<(usize, usize)> {
    let cfg = flexprot::core::Cfg::recover(image).expect("core recovery");
    cfg.blocks
        .iter()
        .map(|b| (b.start, b.start + b.len))
        .collect()
}

/// Block boundaries from the verifier's flow-graph partitioning.
fn verify_boundaries(image: &Image) -> Vec<(usize, usize)> {
    let flow = Flow::recover(image, &image.text);
    let cfg = VerifyCfg::build(image, &flow);
    cfg.blocks.iter().map(|b| (b.start, b.end)).collect()
}

#[test]
fn both_recoveries_agree_on_block_boundaries() {
    for (name, image) in matrix_images() {
        let core = core_boundaries(&image);
        let verify = verify_boundaries(&image);
        assert_eq!(
            core, verify,
            "{name}: core and verify CFG recoveries partition text differently"
        );
        // Sanity: the partition covers the whole text segment exactly.
        let mut expected_start = 0;
        for &(start, end) in &core {
            assert_eq!(start, expected_start, "{name}: gap or overlap at {start}");
            assert!(end > start, "{name}: empty block at {start}");
            expected_start = end;
        }
        assert_eq!(expected_start, image.text.len(), "{name}: trailing gap");
    }
}

#[test]
fn anchor_indices_are_leaders_in_both_recoveries() {
    for (name, image) in matrix_images() {
        let anchors = image.anchor_indices();
        assert!(!anchors.is_empty(), "{name}: no anchors");
        let starts: Vec<usize> = core_boundaries(&image).iter().map(|b| b.0).collect();
        for a in anchors {
            assert!(
                starts.binary_search(&a).is_ok(),
                "{name}: anchor {a} is not a block start"
            );
        }
    }
}
