//! Cross-crate integration: every workload, under every protection
//! configuration, must produce its reference output — and pay for it.

use flexprot::core::{
    protect, EncryptConfig, Granularity, GuardConfig, Placement, ProtectionConfig, Selection,
};
use flexprot::sim::{Machine, Outcome, SimConfig};

fn configs() -> Vec<(&'static str, ProtectionConfig)> {
    vec![
        ("none", ProtectionConfig::new()),
        (
            "guards-0.25",
            ProtectionConfig::new().with_guards(GuardConfig::with_density(0.25)),
        ),
        (
            "guards-1.0",
            ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
        ),
        (
            "enc-program",
            ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0xE4C)),
        ),
        (
            "enc-block",
            ProtectionConfig::new().with_encryption(EncryptConfig {
                granularity: Granularity::Block,
                ..EncryptConfig::whole_program(0xB10C)
            }),
        ),
        (
            "combined",
            ProtectionConfig::new()
                .with_guards(GuardConfig {
                    placement: Placement::Random,
                    ..GuardConfig::with_density(0.5)
                })
                .with_encryption(EncryptConfig {
                    granularity: Granularity::Function,
                    ..EncryptConfig::whole_program(0xF7)
                }),
        ),
    ]
}

#[test]
fn every_workload_survives_every_configuration() {
    for workload in flexprot::workloads::all() {
        let image = workload.image();
        let expected = workload.expected_output();
        let base = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(base.outcome, Outcome::Exit(0), "{} baseline", workload.name);
        assert_eq!(base.output, expected, "{} baseline output", workload.name);
        for (config_name, config) in configs() {
            let protected = protect(&image, &config, None)
                .unwrap_or_else(|e| panic!("{}/{config_name}: {e}", workload.name));
            let run = protected.run(SimConfig::default());
            assert_eq!(
                run.outcome,
                Outcome::Exit(0),
                "{}/{config_name}: {:?}",
                workload.name,
                run.outcome
            );
            assert_eq!(
                run.output, expected,
                "{}/{config_name}: output corrupted",
                workload.name
            );
            assert!(
                run.stats.cycles >= base.stats.cycles,
                "{}/{config_name}: protection cannot be faster than baseline",
                workload.name
            );
        }
    }
}

#[test]
fn guard_checks_fire_on_every_workload() {
    for workload in flexprot::workloads::all() {
        let image = workload.image();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).expect("protect");
        let mut machine = protected.machine(SimConfig::default());
        let run = machine.run();
        assert_eq!(run.outcome, Outcome::Exit(0), "{}", workload.name);
        assert!(
            machine.monitor().checks_passed() > 0,
            "{}: no guard check ever executed",
            workload.name
        );
        assert!(
            machine.monitor().tamper_log().is_empty(),
            "{}: false positive {:?}",
            workload.name,
            machine.monitor().tamper_log()
        );
    }
}

#[test]
fn spacing_bounds_never_false_positive() {
    // enforce_spacing yields a finite bound on these kernels; the
    // untampered run must never trip it.
    for workload in flexprot::workloads::all() {
        let image = workload.image();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(0.4));
        let protected = protect(&image, &config, None).expect("protect");
        if protected.secmon.spacing_bound.is_none() {
            continue;
        }
        let run = protected.run(SimConfig::default());
        assert_eq!(
            run.outcome,
            Outcome::Exit(0),
            "{}: spacing bound false positive: {:?}",
            workload.name,
            run.outcome
        );
    }
}

#[test]
fn profile_guided_protection_matches_oracle() {
    use flexprot::core::{optimize, Cfg, OptimizerConfig, Profile};
    let workload = flexprot::workloads::by_name("matmul").expect("kernel");
    let image = workload.image();
    let profile = Profile::collect_clean(&image, &SimConfig::default());
    let cfg = Cfg::recover(&image).expect("cfg");
    let plan = optimize(
        &image,
        &cfg,
        &profile,
        &OptimizerConfig {
            budget_fraction: 0.15,
            ..OptimizerConfig::default()
        },
    );
    let config = ProtectionConfig::from_plan(
        &plan,
        GuardConfig {
            enforce_spacing: false,
            selection: Selection::Density(0.0),
            placement: Placement::ColdestFirst,
            key: 0xC0DE,
            seed: 1,
        },
        EncryptConfig::whole_program(0x5EED),
    );
    let protected = protect(&image, &config, Some(&profile)).expect("protect");
    let run = protected.run(SimConfig::default());
    assert_eq!(run.outcome, Outcome::Exit(0));
    assert_eq!(run.output, workload.expected_output());
}

#[test]
fn shipped_encrypted_binary_is_unreadable() {
    // Static analysis of the shipped binary must not reveal the original
    // instruction stream: most ciphertext words differ, and a large share
    // do not even decode.
    let workload = flexprot::workloads::by_name("hash").expect("kernel");
    let image = workload.image();
    let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0x5EED));
    let protected = protect(&image, &config, None).expect("protect");
    let changed = image
        .text
        .iter()
        .zip(&protected.image.text)
        .filter(|(a, b)| a != b)
        .count();
    assert!(changed as f64 >= image.text.len() as f64 * 0.95);
    let undecodable = protected
        .image
        .decode_text()
        .filter(|(_, d)| d.is_err())
        .count();
    assert!(
        undecodable as f64 >= protected.image.text.len() as f64 * 0.3,
        "ciphertext decodes too cleanly: {undecodable}/{}",
        protected.image.text.len()
    );
}
