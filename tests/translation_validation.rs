//! Acceptance tests for the translation validator (`verify::equiv`).
//!
//! Every cell of the 6-program × 7-configuration protection matrix must
//! validate with a `Proven` verdict or carry a concrete witness address —
//! a refusal without a logged reason is a test failure. Injected faults
//! (a guard word rewritten to clobber a live register, a skewed cipher
//! region key) must be caught with witness addresses inside the damaged
//! range.

use flexprot::core::{protect, EncryptConfig, Granularity, GuardConfig, ProtectionConfig};
use flexprot::isa::Image;
use flexprot::secmon::derive_subkey;
use flexprot::verify::equiv::{self, EquivVerdict};

const GUARD_KEY: u64 = 0x0BAD_C0DE_CAFE_F00D;
const ENC_KEY: u64 = 0x5EED_5EED_5EED_5EED;

/// The same 6-program roster as `fpsurface`/`fpnetmap`/`fpequiv`.
fn programs() -> Vec<(String, Image)> {
    let mut programs: Vec<(String, Image)> = Vec::new();
    for (name, source) in flexprot::cc::kernels::all() {
        let image = flexprot::cc::compile_to_image(source)
            .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        programs.push((name.to_owned(), image));
    }
    for name in ["rle", "bitcount", "fir"] {
        let workload = flexprot::workloads::by_name(name).expect("workload");
        programs.push((name.to_owned(), workload.image()));
    }
    programs
}

/// The 7-cell protection grid of `tests/protection_matrix.rs`.
fn grid() -> Vec<(&'static str, ProtectionConfig)> {
    let guards = |density: f64| GuardConfig {
        key: GUARD_KEY,
        ..GuardConfig::with_density(density)
    };
    let enc = |granularity: Granularity| EncryptConfig {
        granularity,
        ..EncryptConfig::whole_program(ENC_KEY)
    };
    vec![
        ("none", ProtectionConfig::new()),
        (
            "guards d=0.25",
            ProtectionConfig::new().with_guards(guards(0.25)),
        ),
        (
            "guards d=1.0",
            ProtectionConfig::new().with_guards(guards(1.0)),
        ),
        (
            "enc program",
            ProtectionConfig::new().with_encryption(enc(Granularity::Program)),
        ),
        (
            "enc function",
            ProtectionConfig::new().with_encryption(enc(Granularity::Function)),
        ),
        (
            "enc block",
            ProtectionConfig::new().with_encryption(enc(Granularity::Block)),
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(guards(1.0))
                .with_encryption(enc(Granularity::Function)),
        ),
    ]
}

#[test]
fn every_matrix_cell_is_proven_or_carries_a_witness() {
    for (name, image) in &programs() {
        for (cell, config) in &grid() {
            let protected =
                protect(image, config, None).unwrap_or_else(|e| panic!("{name}/{cell}: {e}"));
            let report = equiv::validate(image, &protected.image, &protected.secmon);
            match &report.verdict {
                EquivVerdict::Proven => {
                    assert!(
                        report.is_clean(),
                        "{name}/{cell}: proven but has error findings: {:?}",
                        report.findings
                    );
                    assert!(
                        report.refusals.is_empty(),
                        "{name}/{cell}: proven despite refusals"
                    );
                }
                EquivVerdict::Inequivalent { witness_addr } => {
                    panic!(
                        "{name}/{cell}: pipeline output judged inequivalent at \
                         {witness_addr:#010x}: {:?}",
                        report.findings
                    );
                }
                EquivVerdict::Refused { reason } => {
                    assert!(
                        !report.refusals.is_empty(),
                        "{name}/{cell}: refused (`{reason}`) without a logged refusal"
                    );
                }
            }
            // Whatever the verdict, every window got judged.
            assert_eq!(
                report.windows.len(),
                protected.secmon.sites.len(),
                "{name}/{cell}: a scheduled window was skipped"
            );
        }
    }
}

#[test]
fn pipeline_matrix_is_fully_proven() {
    // Stronger than the witness-or-proof guarantee: the real protection
    // pipeline emits only inert guard forms and involutive ciphers, so
    // every cell must in fact be Proven with zero refusals.
    for (name, image) in &programs() {
        for (cell, config) in &grid() {
            let protected =
                protect(image, config, None).unwrap_or_else(|e| panic!("{name}/{cell}: {e}"));
            let report = equiv::validate(image, &protected.image, &protected.secmon);
            assert_eq!(
                report.verdict,
                EquivVerdict::Proven,
                "{name}/{cell}: {:?} / refusals {:?}",
                report.findings,
                report.refusals
            );
        }
    }
}

#[test]
fn injected_guard_clobber_is_caught_with_witness() {
    let (name, image) = &programs()[0];
    let config = ProtectionConfig::new().with_guards(GuardConfig {
        key: GUARD_KEY,
        ..GuardConfig::with_density(1.0)
    });
    let protected = protect(image, &config, None).unwrap_or_else(|e| panic!("{name}: {e}"));
    let (&site_addr, _) = protected
        .secmon
        .sites
        .iter()
        .next()
        .expect("density 1.0 must schedule guards");
    let idx = protected
        .image
        .text_index_of(site_addr)
        .expect("site in text");
    let mut tampered = protected.image.clone();
    // Rewrite the first guard word into `addu $sp, $sp, $sp`: the stack
    // pointer is live essentially everywhere, so the window provably
    // writes live architectural state.
    tampered.text[idx] = flexprot::isa::Inst::Addu {
        rd: flexprot::isa::Reg::SP,
        rs: flexprot::isa::Reg::SP,
        rt: flexprot::isa::Reg::SP,
    }
    .encode();
    let report = equiv::validate(image, &tampered, &protected.secmon);
    match report.verdict {
        EquivVerdict::Inequivalent { witness_addr } => {
            assert_eq!(witness_addr, site_addr, "witness must be the damaged word");
        }
        other => panic!(
            "expected inequivalent, got {other:?}: {:?}",
            report.findings
        ),
    }
    assert!(
        report.count_id("FP801") > 0,
        "clobber must surface as FP801: {:?}",
        report.findings
    );
}

#[test]
fn injected_cipher_key_skew_is_caught_with_witness() {
    let (name, image) = &programs()[0];
    let config = ProtectionConfig::new().with_encryption(EncryptConfig {
        granularity: Granularity::Function,
        ..EncryptConfig::whole_program(ENC_KEY)
    });
    let protected = protect(image, &config, None).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut skewed = protected.secmon.clone();
    // Re-derive one region's key from a skewed master: decryption of that
    // region now yields garbage, and every mismatch lies inside it.
    let regions: Vec<_> = skewed.regions.regions().to_vec();
    assert!(
        regions.len() > 1,
        "function granularity has several regions"
    );
    let victim = regions[regions.len() / 2];
    let mut patched = regions.clone();
    for r in &mut patched {
        if r.start == victim.start {
            r.key = derive_subkey(ENC_KEY ^ 1, r.start);
        }
    }
    skewed.regions = flexprot::secmon::RegionTable::new(patched);
    let report = equiv::validate(image, &protected.image, &skewed);
    match report.verdict {
        EquivVerdict::Inequivalent { witness_addr } => {
            assert!(
                witness_addr >= victim.start && witness_addr < victim.end,
                "witness {witness_addr:#010x} must fall inside the skewed region {victim}"
            );
        }
        other => panic!(
            "expected inequivalent, got {other:?}: {:?}",
            report.findings
        ),
    }
    assert!(
        report.count_id("FP803") > 0,
        "key skew must surface as FP803: {:?}",
        report.findings
    );
    assert_eq!(
        report.count_id("FP802"),
        0,
        "all mismatches lie inside the region, so none may be misfiled \
         as alignment faults: {:?}",
        report.findings
    );
}
