//! Cross-crate integration: end-to-end attack/detection properties.

use flexprot::attack::{evaluate, Attack, DetectionCause};
use flexprot::core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
use flexprot::sim::{Machine, SimConfig};

fn attack_sim(base_instrs: u64) -> SimConfig {
    SimConfig {
        max_instructions: base_instrs * 4 + 10_000,
        ..SimConfig::default()
    }
}

#[test]
fn full_guards_dominate_unprotected_on_every_attack() {
    let workload = flexprot::workloads::by_name("adpcm").expect("kernel");
    let image = workload.image();
    let expected = workload.expected_output();
    let base = Machine::new(&image, SimConfig::default()).run();
    let sim = attack_sim(base.stats.instructions);

    let unprotected = protect(&image, &ProtectionConfig::new(), None).unwrap();
    let guarded = protect(
        &image,
        &ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
        None,
    )
    .unwrap();

    for attack in Attack::all() {
        let s_un = evaluate(&unprotected, &expected, attack, 20, 99, &sim);
        let s_g = evaluate(&guarded, &expected, attack, 20, 99, &sim);
        assert!(
            s_g.detection_rate() >= s_un.detection_rate() - 1e-9,
            "{}: guards lowered detection ({:.2} < {:.2})",
            attack.name(),
            s_g.detection_rate(),
            s_un.detection_rate()
        );
        assert!(
            s_g.attacker_success_rate() <= s_un.attacker_success_rate() + 1e-9,
            "{}: guards raised attacker success",
            attack.name()
        );
    }
}

#[test]
fn full_guards_leave_no_silent_corruption_on_single_flips() {
    // At density 1.0 every text word is covered: body words are hashed,
    // terminators are tail-hashed, guard words carry the signature. The
    // only uncheckable case is a flip in a block whose guard never executes
    // before program exit — which cannot produce *wrong output followed by
    // clean exit* unless the exit path itself was reached, where the words
    // are covered too. Empirically: no silent wins across many trials.
    let workload = flexprot::workloads::by_name("strsearch").expect("kernel");
    let image = workload.image();
    let expected = workload.expected_output();
    let base = Machine::new(&image, SimConfig::default()).run();
    let guarded = protect(
        &image,
        &ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
        None,
    )
    .unwrap();
    let summary = evaluate(
        &guarded,
        &expected,
        Attack::BitFlip,
        60,
        1234,
        &attack_sim(base.stats.instructions),
    );
    // A flip can, rarely, fabricate a branch that escapes its window
    // before the check (an inherent limit of check-at-window-end designs,
    // discussed in EXPERIMENTS.md). It must stay a rare tail, and the vast
    // majority of effective flips must be caught.
    assert!(
        summary.wrong_output <= 2,
        "too much silent corruption under full guards: {summary:?}"
    );
    assert!(summary.detected > 0);
    assert!(summary.detection_rate() > 0.9, "{summary:?}");
}

#[test]
fn guard_strip_attack_is_always_detected() {
    let workload = flexprot::workloads::by_name("rle").expect("kernel");
    let image = workload.image();
    let expected = workload.expected_output();
    let base = Machine::new(&image, SimConfig::default()).run();
    let guarded = protect(
        &image,
        &ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
        None,
    )
    .unwrap();
    let summary = evaluate(
        &guarded,
        &expected,
        Attack::GuardStrip,
        5,
        7,
        &attack_sim(base.stats.instructions),
    );
    assert!(
        summary.applied > 0,
        "strip must find guard runs in plaintext"
    );
    assert_eq!(summary.wrong_output, 0, "{summary:?}");
    assert_eq!(
        summary.benign, 0,
        "stripping must never be benign: {summary:?}"
    );
    assert!(summary.detected > 0, "{summary:?}");
}

#[test]
fn encryption_denies_targeted_patching() {
    let workload = flexprot::workloads::by_name("bitcount").expect("kernel");
    let image = workload.image();
    let expected = workload.expected_output();
    let base = Machine::new(&image, SimConfig::default()).run();
    let sim = attack_sim(base.stats.instructions);
    let enc = protect(
        &image,
        &ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0x0FF1CE)),
        None,
    )
    .unwrap();
    // Targeted payload injection requires writing plaintext; on ciphertext
    // it degenerates to noise: the keystream scrambles the payload into
    // effectively random words. Noise can — rarely — decode as valid
    // instructions and exit cleanly with garbage output (encryption is a
    // confidentiality layer, not an integrity check), but that must stay a
    // rare tail, and the attacker's chosen payload semantics never survive.
    let summary = evaluate(&enc, &expected, Attack::CodeInject, 30, 5, &sim);
    assert!(
        summary.wrong_output <= 2,
        "scrambled payloads should not produce controlled output: {summary:?}"
    );
    assert_eq!(
        summary.benign, 0,
        "injection must never be a no-op: {summary:?}"
    );
    // The static verifier flags nearly every mutation: decrypted noise
    // almost always breaks decodability or a relocation invariant.
    assert!(summary.static_detection_rate() > 0.9, "{summary:?}");
    // Branch-flip cannot even locate branches in ciphertext.
    let summary = evaluate(&enc, &expected, Attack::BranchFlip, 30, 5, &sim);
    assert!(
        summary.faulted + summary.detected + summary.benign + summary.timeout
            >= summary.wrong_output,
        "{summary:?}"
    );
}

#[test]
fn detection_latency_is_recorded_and_bounded() {
    let workload = flexprot::workloads::by_name("fir").expect("kernel");
    let image = workload.image();
    let expected = workload.expected_output();
    let base = Machine::new(&image, SimConfig::default()).run();
    let guarded = protect(
        &image,
        &ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
        None,
    )
    .unwrap();
    let summary = evaluate(
        &guarded,
        &expected,
        Attack::InstrSub,
        40,
        42,
        &attack_sim(base.stats.instructions),
    );
    if let Some(latency) = summary.mean_latency() {
        assert!(latency >= 0.0);
        assert!(
            latency <= (base.stats.instructions * 4 + 10_000) as f64,
            "latency beyond fuel: {latency}"
        );
    }
    assert!(summary.detected > 0, "{summary:?}");
}

#[test]
fn guard_detections_carry_guard_event_attribution() {
    // Under guards-only protection every dynamic tamper detection must be
    // *proved* by a guard event in the trace: the recorded cause is either
    // a guard-signature mismatch or the spacing bound, never decrypt noise.
    let workload = flexprot::workloads::by_name("rle").expect("kernel");
    let image = workload.image();
    let expected = workload.expected_output();
    let base = Machine::new(&image, SimConfig::default()).run();
    let guarded = protect(
        &image,
        &ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
        None,
    )
    .unwrap();
    let summary = evaluate(
        &guarded,
        &expected,
        Attack::BitFlip,
        40,
        2026,
        &attack_sim(base.stats.instructions),
    );
    assert!(summary.detected > 0, "{summary:?}");
    let guard_causes = summary.cause_count(DetectionCause::GuardFail)
        + summary.cause_count(DetectionCause::SpacingBound);
    assert_eq!(
        guard_causes, summary.detected,
        "every detection needs a guard event proving it: {summary:?}"
    );
    // Faulted trials (flips that crash before any check) carry fault
    // attributions instead; together the causes cover every caught trial.
    let fault_causes = summary.cause_count(DetectionCause::DecryptGarble)
        + summary.cause_count(DetectionCause::WildControlFlow)
        + summary.cause_count(DetectionCause::OtherFault);
    assert_eq!(
        guard_causes + fault_causes,
        summary.detected + summary.faulted,
        "{summary:?}"
    );
}

#[test]
fn ciphertext_tampering_is_attributed_to_decrypt_garble() {
    // Under encryption-only protection there are no guards to fail; caught
    // tampering manifests as scrambled instructions — decode faults
    // (decrypt-garble) or wild control flow — never as guard events.
    let workload = flexprot::workloads::by_name("bitcount").expect("kernel");
    let image = workload.image();
    let expected = workload.expected_output();
    let base = Machine::new(&image, SimConfig::default()).run();
    let enc = protect(
        &image,
        &ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0xC0DE_D00D)),
        None,
    )
    .unwrap();
    let summary = evaluate(
        &enc,
        &expected,
        Attack::CodeInject,
        40,
        2027,
        &attack_sim(base.stats.instructions),
    );
    assert_eq!(summary.cause_count(DetectionCause::GuardFail), 0);
    assert_eq!(summary.cause_count(DetectionCause::SpacingBound), 0);
    let garble = summary.cause_count(DetectionCause::DecryptGarble)
        + summary.cause_count(DetectionCause::WildControlFlow)
        + summary.cause_count(DetectionCause::OtherFault);
    assert!(
        garble > 0,
        "scrambled payloads must fault somewhere: {summary:?}"
    );
}

#[test]
fn non_halting_monitor_logs_all_events() {
    let workload = flexprot::workloads::by_name("qsort").expect("kernel");
    let image = workload.image();
    let mut config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
    config.halt_on_tamper = false;
    let mut protected = protect(&image, &config, None).unwrap();
    // Flip a register-field bit of a covered body word (the first word of
    // `fill`, which executes and is hashed by fill's guard). Register-field
    // flips keep the word decodable, so the signature check — not a decode
    // fault — must catch it.
    let fill = protected.image.symbol("fill").expect("symbol");
    let index = protected.image.text_index_of(fill).expect("in text");
    protected.image.text[index] ^= 1 << 16; // rt field low bit: stays decodable
    let mut machine = protected.machine(SimConfig {
        max_instructions: 1_000_000,
        ..SimConfig::default()
    });
    let run = machine.run();
    assert!(
        !machine.monitor().tamper_log().is_empty(),
        "non-halting monitor must log the tamper ({:?})",
        run.outcome
    );
}
