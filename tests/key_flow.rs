//! Acceptance: the mandatory key-flow gate on the protection pipeline.
//!
//! `ProtectionConfig::with_key_flow_check` makes `protect` run the FP9xx
//! key-flow taint analysis on the shipped image and refuse to emit a
//! build whose program provably exfiltrates key-derived data (its own
//! ciphertext) to an observable sink. The fixture here is the canonical
//! leak: the program loads a word of its own encrypted text through the
//! *data* path — which the fetch-path-only decryptor never decrypts, so
//! the value read is `plaintext XOR keystream(key)` — and stores it to
//! the data segment where an attacker can read it back.

use flexprot_core::{protect, EncryptConfig, GuardConfig, ProtectError, ProtectionConfig};
use flexprot_isa::Image;

/// Reads the first word of its own (encrypted) text segment as data and
/// publishes it to the data segment. Single-word `lui` idioms keep the
/// instruction indices — and therefore the expected witness address —
/// exact.
fn leaky() -> Image {
    flexprot_asm::assemble_or_panic(
        r#"
main:   lui  $t0, 0x40
        lw   $t1, 0($t0)
        lui  $t2, 0x1001
        sw   $t1, 0($t2)
        li   $v0, 10
        syscall
"#,
    )
}

/// Pure register arithmetic: loads no ciphertext, leaks nothing.
fn clean() -> Image {
    flexprot_asm::assemble_or_panic(
        r#"
main:   li   $t0, 5
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bne  $t0, $zero, loop
        add  $a0, $t1, $zero
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
    )
}

fn encrypted_config() -> ProtectionConfig {
    ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0x5EED))
}

#[test]
fn injected_key_leak_fails_the_gate_with_a_witness() {
    let base = leaky();
    let config = encrypted_config().with_key_flow_check();
    let err = protect(&base, &config, None).expect_err("leak must be caught");
    match err {
        ProtectError::KeyFlowLeak {
            errors,
            witness,
            ref first,
        } => {
            assert!(errors >= 1, "at least the injected FP901: {err}");
            // The leaking store is the fourth instruction of the image.
            assert_eq!(witness, Some(0x0040_000C), "{err}");
            assert!(
                first.contains("FP901"),
                "first finding names the lint: {first}"
            );
        }
        other => panic!("expected KeyFlowLeak, got {other}"),
    }
    let shown = err.to_string();
    assert!(shown.contains("key-flow check failed"), "{shown}");
    assert!(
        shown.contains("0x0040000c"),
        "witness surfaces in the message: {shown}"
    );
}

#[test]
fn the_gate_is_opt_in_but_the_findings_are_not_hidden() {
    // Without the gate the same build ships (backwards compatible)…
    let base = leaky();
    let protected = protect(&base, &encrypted_config(), None).expect("gate off");
    // …but a taint-enabled verification of the shipped image still
    // reports the leak, so `fplint --taint` catches what the pipeline
    // was not asked to block.
    let verification = flexprot_verify::analyze_with_options(
        &protected.image,
        &protected.secmon,
        &flexprot_verify::LintPolicy::default(),
        true,
    );
    assert!(
        verification
            .report
            .findings
            .iter()
            .any(|f| f.id == "FP901" && f.severity == flexprot_verify::Severity::Error),
        "{:?}",
        verification.report.findings
    );
    let taint = verification
        .report
        .stats
        .taint
        .expect("taint stats recorded");
    assert!(taint.sources >= 1);
    assert!(taint.tainted_stores >= 1);
}

#[test]
fn clean_programs_pass_the_gate_across_the_protection_matrix() {
    let base = clean();
    let configs = [
        ProtectionConfig::new().with_key_flow_check(),
        encrypted_config().with_key_flow_check(),
        encrypted_config()
            .with_guards(GuardConfig {
                key: 0x0BAD_C0DE_CAFE_F00D,
                ..GuardConfig::with_density(1.0)
            })
            .with_key_flow_check(),
    ];
    for (i, config) in configs.iter().enumerate() {
        let protected = protect(&base, config, None)
            .unwrap_or_else(|e| panic!("config {i}: clean program must pass the gate: {e}"));
        // The gate proved the absence of FP901/FP902; the stats of a
        // fresh taint run agree.
        let verification = flexprot_verify::analyze_with_options(
            &protected.image,
            &protected.secmon,
            &flexprot_verify::LintPolicy::default(),
            true,
        );
        let taint = verification
            .report
            .stats
            .taint
            .expect("taint stats recorded");
        assert_eq!(taint.tainted_stores, 0, "config {i}");
        assert_eq!(taint.tainted_syscalls, 0, "config {i}");
    }
}
