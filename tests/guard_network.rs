//! Acceptance tests for the guard-network analysis and the
//! abstract-interpretation checksum proofs.
//!
//! Three claims over the protection-matrix grid:
//!
//! 1. every guard window of every cell gets a *verdict* — proven, or
//!    unproven with a stated reason — and an untampered build never
//!    yields a mismatch (zero FP703 false positives);
//! 2. a deliberately corrupted guard constant (re-encoded so the word
//!    still *looks* like a guard) is caught purely statically, with a
//!    witness pointing at the corrupted word;
//! 3. the min-cut-aware targeted attacker beats the random single-word
//!    baseline on a weakly connected configuration.

use flexprot::attack::{evaluate_random_nop, evaluate_targeted};
use flexprot::core::{protect, EncryptConfig, Granularity, GuardConfig, ProtectionConfig};
use flexprot::isa::Image;
use flexprot::secmon::guard::{decode_guard_symbol, encode_guard_inst, is_guard_form};
use flexprot::sim::SimConfig;
use flexprot::verify::{analyze, verify, LintPolicy, Verdict};

const GUARD_KEY: u64 = 0x0BAD_C0DE_CAFE_F00D;
const ENC_KEY: u64 = 0x5EED_5EED_5EED_5EED;

fn guards(density: f64) -> GuardConfig {
    GuardConfig {
        key: GUARD_KEY,
        ..GuardConfig::with_density(density)
    }
}

fn enc(granularity: Granularity) -> EncryptConfig {
    EncryptConfig {
        granularity,
        ..EncryptConfig::whole_program(ENC_KEY)
    }
}

/// The golden images: MiniC kernels plus assembly workloads.
fn programs() -> Vec<(String, Image)> {
    let mut out: Vec<(String, Image)> = flexprot::cc::kernels::all()
        .into_iter()
        .map(|(name, src)| {
            let image =
                flexprot::cc::compile_to_image(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name.to_owned(), image)
        })
        .collect();
    for name in ["rle", "bitcount", "fir"] {
        let workload = flexprot::workloads::by_name(name).expect("kernel");
        out.push((name.to_owned(), workload.image()));
    }
    out
}

fn cells() -> Vec<(&'static str, ProtectionConfig)> {
    vec![
        ("none", ProtectionConfig::new()),
        (
            "guards d=0.25",
            ProtectionConfig::new().with_guards(guards(0.25)),
        ),
        (
            "guards d=1.0",
            ProtectionConfig::new().with_guards(guards(1.0)),
        ),
        (
            "enc program",
            ProtectionConfig::new().with_encryption(enc(Granularity::Program)),
        ),
        (
            "enc function",
            ProtectionConfig::new().with_encryption(enc(Granularity::Function)),
        ),
        (
            "enc block",
            ProtectionConfig::new().with_encryption(enc(Granularity::Block)),
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(guards(1.0))
                .with_encryption(enc(Granularity::Function)),
        ),
    ]
}

#[test]
fn every_matrix_cell_gets_a_proof_or_a_reasoned_refusal() {
    for (name, image) in programs() {
        for (cell, config) in &cells() {
            let label = format!("{name}/{cell}");
            let protected = protect(&image, config, None)
                .unwrap_or_else(|e| panic!("{label}: protect failed: {e}"));
            let v = analyze(&protected.image, &protected.secmon, &LintPolicy::default());

            // One verdict per guard window, aligned with the network.
            assert_eq!(v.proofs.len(), v.coverage.windows.len(), "{label}");
            assert_eq!(v.guardnet.nodes.len(), v.coverage.windows.len(), "{label}");
            assert_eq!(v.proofs.len(), protected.secmon.sites.len(), "{label}");
            for proof in &v.proofs {
                match &proof.verdict {
                    Verdict::Proven { .. } => {}
                    Verdict::Unproven { reason } => {
                        assert!(
                            !reason.code().is_empty(),
                            "{label}: refusal without a reason code"
                        );
                    }
                    Verdict::Mismatch { witness_addr, .. } => panic!(
                        "{label}: untampered build claims a mismatch at {witness_addr:#010x}"
                    ),
                }
            }
            // Zero FP703 false positives on pipeline output.
            assert_eq!(
                v.report.with_id("FP703").count(),
                0,
                "{label}:\n{}",
                v.report.render_human()
            );

            // The emitter keeps hash windows disjoint, so its guard
            // digraph is edgeless and (with >= 2 guards) disconnected —
            // the analysis must report that, not paper over it.
            assert_eq!(v.guardnet.edges, 0, "{label}");
            if v.guardnet.sound_count() >= 2 {
                assert_eq!(v.guardnet.min_cut, Some(Vec::new()), "{label}");
                assert!(!v.guardnet.is_connected(), "{label}");
                assert_eq!(
                    v.report.with_id("FP704").count(),
                    1,
                    "{label}: one disconnection note expected:\n{}",
                    v.report.render_human()
                );
            }
        }
    }
}

#[test]
fn corrupted_guard_constant_is_caught_statically_with_a_witness() {
    let workload = flexprot::workloads::by_name("rle").expect("kernel");
    let config = ProtectionConfig::new().with_guards(guards(1.0));
    let p = protect(&workload.image(), &config, None).expect("protect");

    // Re-encode the second symbol word of the first guard with a
    // different symbol: the word still decodes as a well-formed guard
    // instruction, so the structural lint (FP101) stays silent and only
    // the signature checks can object.
    let &site = p.secmon.sites.keys().next().expect("a guard site");
    let idx = p.image.text_index_of(site).unwrap() + 1;
    let old = p.image.text[idx];
    assert!(is_guard_form(old));
    let mut image = p.image.clone();
    image.text[idx] = encode_guard_inst(decode_guard_symbol(old) ^ 0x01, 0).encode();
    assert!(is_guard_form(image.text[idx]));
    assert_ne!(image.text[idx], old);

    let report = verify(&image, &p.secmon);
    assert_eq!(
        report.with_id("FP101").count(),
        0,
        "the corruption preserves guard form:\n{}",
        report.render_human()
    );
    assert!(
        report.with_id("FP102").count() > 0,
        "the concrete signature check must fire:\n{}",
        report.render_human()
    );
    assert!(
        report.with_id("FP703").count() > 0,
        "the abstract proof must independently refute the constant:\n{}",
        report.render_human()
    );

    // The proof's witness points at the corrupted word itself.
    let v = analyze(&image, &p.secmon, &LintPolicy::default());
    let witness_addr = v
        .proofs
        .iter()
        .find_map(|proof| match proof.verdict {
            Verdict::Mismatch { witness_addr, .. } => Some(witness_addr),
            _ => None,
        })
        .expect("a mismatch verdict");
    assert_eq!(
        witness_addr,
        image.addr_of_index(idx),
        "witness must name the corrupted word"
    );
}

#[test]
fn min_cut_targeting_beats_random_words_on_a_weak_network() {
    let workload = flexprot::workloads::by_name("rle").expect("kernel");
    let expected = workload.expected_output();
    // Quarter density: the who-checks-whom network is weakly connected
    // (here: edgeless), so the planner's cheap words are real surface.
    let config = ProtectionConfig::new().with_guards(guards(0.25));
    let p = protect(&workload.image(), &config, None).expect("protect");
    let sim = SimConfig {
        max_instructions: 2_000_000,
        ..SimConfig::default()
    };
    let targeted = evaluate_targeted(&p, &expected, 30, &sim);
    let random = evaluate_random_nop(&p, &expected, 30, 0xA77A_C4E5, &sim);
    assert!(targeted.applied > 0 && random.applied > 0);
    assert!(
        targeted.attacker_success_rate() > random.attacker_success_rate(),
        "graph-aware targeting must beat blind NOPs:\n\
         targeted {targeted:?}\nrandom {random:?}"
    );
}
