#!/bin/sh
# Local CI gate: everything a merge must pass, in the order fastest-fail first.
# Usage: ./ci.sh
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo clippy --workspace --all-targets -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace =="
cargo test --workspace --quiet

echo "== observability smoke: fprun --metrics schema =="
# Build one protected workload end-to-end through the CLI, run it with
# metrics emission and check the document parses with its stable schema
# keys intact.
OBS_DIR=$(mktemp -d)
EXEC_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR" "$EXEC_DIR"' EXIT
cat > "$OBS_DIR/smoke.s" <<'EOF'
main:   li   $s0, 10
        li   $s1, 0
loop:   addu $s1, $s1, $s0
        addi $s0, $s0, -1
        bgtz $s0, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
EOF
cargo run --quiet --release -p flexprot-cli --bin fpasm -- \
    "$OBS_DIR/smoke.s" --o "$OBS_DIR/smoke.fpx"
cargo run --quiet --release -p flexprot-cli --bin fpprotect -- \
    "$OBS_DIR/smoke.fpx" --o "$OBS_DIR/smoke.prot.fpx" \
    --secmon "$OBS_DIR/smoke.fpm" --density 1.0 --encrypt program
cargo run --quiet --release -p flexprot-cli --bin fprun -- \
    "$OBS_DIR/smoke.prot.fpx" --secmon "$OBS_DIR/smoke.fpm" \
    --metrics "$OBS_DIR/smoke.metrics.json" --trace "$OBS_DIR/smoke.trace.jsonl" \
    > /dev/null
for key in '"schema":"flexprot-metrics-v1"' '"counters"' '"histograms"' \
           '"icache_accesses"' '"guard_checks_passed"' '"decrypt_stall_cycles"' \
           '"sim_cycles"' '"instructions_committed"'; do
    grep -q "$key" "$OBS_DIR/smoke.metrics.json" || {
        echo "metrics document missing $key"; exit 1;
    }
done
grep -q '"ev":"run_end"' "$OBS_DIR/smoke.trace.jsonl" || {
    echo "trace missing run_end event"; exit 1;
}
echo "metrics schema OK"

echo "== exec engine: parallel determinism =="
# The batched execution engine guarantees that a sweep's tables, CSVs and
# aggregate metrics are byte-identical whatever the worker count, and that
# the artifact cache actually shares work between cells.
cargo run --quiet --release -p flexprot-bench --bin experiments -- \
    --quick --jobs 1 --csv "$EXEC_DIR/serial" \
    --metrics "$EXEC_DIR/serial.metrics.json" \
    > "$EXEC_DIR/serial.tables.txt" 2> /dev/null
cargo run --quiet --release -p flexprot-bench --bin experiments -- \
    --quick --jobs 4 --csv "$EXEC_DIR/parallel" \
    --metrics "$EXEC_DIR/parallel.metrics.json" \
    > "$EXEC_DIR/parallel.tables.txt" 2> /dev/null
diff -u "$EXEC_DIR/serial.tables.txt" "$EXEC_DIR/parallel.tables.txt" || {
    echo "tables differ between --jobs 1 and --jobs 4"; exit 1;
}
diff -u "$EXEC_DIR/serial.metrics.json" "$EXEC_DIR/parallel.metrics.json" || {
    echo "metrics differ between --jobs 1 and --jobs 4"; exit 1;
}
diff -ru "$EXEC_DIR/serial" "$EXEC_DIR/parallel" || {
    echo "CSV output differs between --jobs 1 and --jobs 4"; exit 1;
}
grep -Eq '"exec_cache_hits":[1-9]' "$EXEC_DIR/serial.metrics.json" || {
    echo "artifact cache recorded no hits"; exit 1;
}
grep -Eq '"exec_cache_misses":[1-9]' "$EXEC_DIR/serial.metrics.json" || {
    echo "artifact cache recorded no misses"; exit 1;
}
echo "parallel determinism OK"

echo "== experiments: results/ baselines under the predecoded engine =="
# Regenerate every table at full fidelity and diff against the committed
# CSVs: the predecoded fetch path must keep all recorded numbers
# byte-identical (a diff means either a stats regression or a deliberate
# experiment change — regenerate results/ and commit). Wall-clock per
# table is logged to results/timings.csv as a perf smoke; the file is
# machine-dependent and NOT diffed (non-gating).
cargo run --quiet --release -p flexprot-bench --bin experiments -- \
    --csv "$EXEC_DIR/full" --timings results/timings.csv \
    > /dev/null 2> /dev/null
for f in "$EXEC_DIR"/full/*.csv; do
    diff -u "results/$(basename "$f")" "$f" || {
        echo "results baseline diverged: $(basename "$f")"; exit 1;
    }
done
echo "results baselines OK (wall times -> results/timings.csv, non-gating)"

echo "== static surface: fpsurface baseline =="
# Lint every golden protected image of the protection matrix. The run
# fails on any error-severity finding (fpsurface exit code), and the
# per-cell tamper-surface counts must match the checked-in baseline —
# a diff means coverage regressed (or improved: regenerate the baseline
# with the same command and commit it alongside the change).
cargo run --quiet --release -p flexprot-cli --bin fpsurface -- \
    --csv "$EXEC_DIR/surface.csv" > /dev/null || {
    echo "fpsurface reported error-severity findings"; exit 1;
}
diff -u results/surface_baseline.csv "$EXEC_DIR/surface.csv" || {
    echo "tamper-surface counts diverged from results/surface_baseline.csv"
    exit 1
}
echo "surface baseline OK"

echo "== guard network: fpnetmap baseline + fplint --guardnet schema =="
# Map the guard network of every protection-matrix cell: abstract
# checksum proofs (proven/mismatch/unproven) and graph shape (edges,
# SCCs, min cut) per cell. A mismatch or error column going non-zero
# means the emitter and the verifier disagree about a checksum constant;
# any other diff against the baseline means network shape or proof power
# changed (regenerate with UPDATE_BASELINES=1 ./ci.sh and commit the new
# baseline). The grid must also be byte-identical whatever the worker
# count. --refusals writes the per-window non-proven ledger: one row per
# unproven/mismatch window with its typed reason code. Diffing it against
# results/refusals_baseline.csv enforces that the refusal count only goes
# down — a window sliding back from proven shows up as a new ledger row.
cargo run --quiet --release -p flexprot-cli --bin fpnetmap -- \
    --jobs 1 --csv "$EXEC_DIR/guardnet.csv" \
    --refusals "$EXEC_DIR/refusals.csv" > /dev/null || {
    echo "fpnetmap reported checksum mismatches"; exit 1;
}
cargo run --quiet --release -p flexprot-cli --bin fpnetmap -- \
    --jobs 4 --csv "$EXEC_DIR/guardnet4.csv" \
    --refusals "$EXEC_DIR/refusals4.csv" > /dev/null
diff -u "$EXEC_DIR/guardnet.csv" "$EXEC_DIR/guardnet4.csv" || {
    echo "guard-network grid differs between --jobs 1 and --jobs 4"; exit 1;
}
diff -u "$EXEC_DIR/refusals.csv" "$EXEC_DIR/refusals4.csv" || {
    echo "refusal ledger differs between --jobs 1 and --jobs 4"; exit 1;
}
if [ "${UPDATE_BASELINES:-0}" = "1" ]; then
    cp "$EXEC_DIR/guardnet.csv" results/guardnet_baseline.csv
    cp "$EXEC_DIR/refusals.csv" results/refusals_baseline.csv
    echo "regenerated results/guardnet_baseline.csv and results/refusals_baseline.csv"
fi
diff -u results/guardnet_baseline.csv "$EXEC_DIR/guardnet.csv" || {
    echo "guard network diverged from results/guardnet_baseline.csv"
    echo "hint: rerun as UPDATE_BASELINES=1 ./ci.sh and commit the regenerated baseline"
    exit 1
}
diff -u results/refusals_baseline.csv "$EXEC_DIR/refusals.csv" || {
    echo "per-window refusal ledger diverged from results/refusals_baseline.csv"
    echo "hint: a new row means a window regressed from proven; rerun as"
    echo "      UPDATE_BASELINES=1 ./ci.sh only for deliberate prover changes"
    exit 1
}
# The machine-readable guard-network report keeps its stable schema keys.
cargo run --quiet --release -p flexprot-cli --bin fplint -- \
    "$OBS_DIR/smoke.prot.fpx" --secmon "$OBS_DIR/smoke.fpm" --guardnet \
    > "$OBS_DIR/guardnet.json"
for key in '"schema":"flexprot-guardnet-v1"' '"guards"' '"nodes"' '"edges"' \
           '"min_cut"' '"proof"' '"weak_links"'; do
    grep -q "$key" "$OBS_DIR/guardnet.json" || {
        echo "guardnet document missing $key"; exit 1;
    }
done
echo "guard network OK"

echo "== translation validation: fpequiv baseline + fplint --equiv schema =="
# Translation-validate every protection-matrix cell against its baseline:
# the verdict column must read `proven` everywhere (fpequiv exits 1 on any
# error-severity FP8xx finding), the grid must be byte-identical whatever
# the worker count, and the per-cell verdicts must match the checked-in
# baseline. Run UPDATE_BASELINES=1 ./ci.sh to regenerate the baseline
# after a deliberate validator or matrix change.
cargo run --quiet --release -p flexprot-cli --bin fpequiv -- \
    --jobs 1 --csv "$EXEC_DIR/equiv.csv" > /dev/null || {
    echo "fpequiv reported error-severity findings (a matrix cell is not proven)"
    exit 1
}
cargo run --quiet --release -p flexprot-cli --bin fpequiv -- \
    --jobs 4 --csv "$EXEC_DIR/equiv4.csv" > /dev/null
diff -u "$EXEC_DIR/equiv.csv" "$EXEC_DIR/equiv4.csv" || {
    echo "translation-validation grid differs between --jobs 1 and --jobs 4"; exit 1;
}
if [ "${UPDATE_BASELINES:-0}" = "1" ]; then
    cp "$EXEC_DIR/equiv.csv" results/equiv_baseline.csv
    echo "regenerated results/equiv_baseline.csv"
fi
diff -u results/equiv_baseline.csv "$EXEC_DIR/equiv.csv" || {
    echo "translation-validation verdicts diverged from results/equiv_baseline.csv"
    echo "hint: rerun as UPDATE_BASELINES=1 ./ci.sh and commit the regenerated baseline"
    exit 1
}
# The machine-readable verdict document keeps its stable schema keys.
cargo run --quiet --release -p flexprot-cli --bin fplint -- \
    "$OBS_DIR/smoke.prot.fpx" --secmon "$OBS_DIR/smoke.fpm" \
    --equiv "$OBS_DIR/smoke.fpx" > "$OBS_DIR/equiv.json"
for key in '"schema":"flexprot-equiv-v1"' '"verdict":"proven"' '"stats"' \
           '"windows"' '"refusals"' '"findings"'; do
    grep -q "$key" "$OBS_DIR/equiv.json" || {
        echo "equiv document missing $key"; exit 1;
    }
done
echo "translation validation OK"

echo "== key-flow taint: fplint --taint schema =="
# The extended lint document carries the taint stats object when --taint
# is on (the clean smoke build must report zero leaks) and pins it to
# null when off, so consumers can tell "no leaks" from "not checked".
cargo run --quiet --release -p flexprot-cli --bin fplint -- \
    "$OBS_DIR/smoke.prot.fpx" --secmon "$OBS_DIR/smoke.fpm" --taint \
    --format json > "$OBS_DIR/taint.json"
for key in '"schema":"flexprot-lint-v1"' '"taint"' '"sources"' \
           '"tainted_stores":0' '"tainted_syscalls":0' '"key_dependent"' \
           '"unresolved_reads"'; do
    grep -q "$key" "$OBS_DIR/taint.json" || {
        echo "taint-enabled lint document missing $key"; exit 1;
    }
done
cargo run --quiet --release -p flexprot-cli --bin fplint -- \
    "$OBS_DIR/smoke.prot.fpx" --secmon "$OBS_DIR/smoke.fpm" \
    --format json > "$OBS_DIR/notaint.json"
grep -q '"taint":null' "$OBS_DIR/notaint.json" || {
    echo "lint document without --taint must carry \"taint\":null"; exit 1;
}
echo "key-flow taint schema OK"

echo "CI OK"
