#!/bin/sh
# Local CI gate: everything a merge must pass, in the order fastest-fail first.
# Usage: ./ci.sh
set -eu

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo clippy --workspace --all-targets -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace =="
cargo test --workspace --quiet

echo "CI OK"
