//! # flexprot — flexible software protection via hardware/software codesign
//!
//! A from-scratch reproduction of the DATE-2004 approach to software
//! protection: a compiler-side toolchain embeds **keyed register guards**
//! and applies **fetch-path instruction encryption** to binaries, and a
//! simulated **FPGA secure monitor** between the CPU and instruction memory
//! verifies the instruction stream at run time. Protection strength is
//! *flexible*: a profile-guided optimizer tunes per-function protection
//! levels to an overhead budget.
//!
//! This crate is the facade: it re-exports the whole toolchain.
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`isa`] | `flexprot-isa` | SP32 ISA, encodings, program images |
//! | [`asm`] | `flexprot-asm` | two-pass assembler with relocations |
//! | [`cc`] | `flexprot-cc` | MiniC, a C-subset compiler front end |
//! | [`sim`] | `flexprot-sim` | cycle-approximate CPU + cache simulator |
//! | [`secmon`] | `flexprot-secmon` | the FPGA secure-monitor model |
//! | [`core`] | `flexprot-core` | protection passes + budget optimizer |
//! | [`attack`] | `flexprot-attack` | tamper attacks + detection harness |
//! | [`trace`] | `flexprot-trace` | cycle-level observability: events, metrics, sinks |
//! | [`verify`] | `flexprot-verify` | independent static verification (`fplint`) |
//! | [`workloads`] | `flexprot-workloads` | embedded benchmark kernels |
//!
//! # Quickstart
//!
//! ```
//! use flexprot::core::{protect, GuardConfig, ProtectionConfig};
//! use flexprot::sim::{Outcome, SimConfig};
//!
//! // 1. A program (normally produced by your build system).
//! let image = flexprot::asm::assemble(r#"
//! main:   li   $t0, 6
//!         mul  $a0, $t0, $t0
//!         li   $v0, 1
//!         syscall
//!         li   $v0, 10
//!         syscall
//! "#)?;
//!
//! // 2. Protect it: full-density register guards.
//! let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
//! let protected = protect(&image, &config, None)?;
//!
//! // 3. Run on the simulated CPU with the provisioned secure monitor.
//! let result = protected.run(SimConfig::default());
//! assert_eq!(result.outcome, Outcome::Exit(0));
//! assert_eq!(result.output, "36");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use flexprot_asm as asm;
pub use flexprot_attack as attack;
pub use flexprot_cc as cc;
pub use flexprot_core as core;
pub use flexprot_isa as isa;
pub use flexprot_secmon as secmon;
pub use flexprot_sim as sim;
pub use flexprot_trace as trace;
pub use flexprot_verify as verify;
pub use flexprot_workloads as workloads;
