//! Driver logic for the command-line toolchain.
//!
//! Each binary (`fpasm`, `fpobjdump`, `fpprotect`, `fprun`, `fplint`,
//! `fpsweep`, `fpsurface`, `fpnetmap`, `fpequiv`) is a thin wrapper
//! around a driver function here,
//! so the full argument-parsing and I/O logic is unit-testable without
//! spawning processes.
//!
//! A complete protected build-and-run pipeline:
//!
//! ```text
//! fpasm program.s -o program.fpx
//! fpprotect program.fpx -o program.prot.fpx --secmon program.fpm \
//!           --density 0.5 --encrypt function
//! fplint program.prot.fpx --secmon program.fpm   # static self-check
//! fprun program.prot.fpx --secmon program.fpm --stats
//! fpobjdump program.prot.fpx          # ciphertext: mostly .word noise
//! ```

pub mod args;
pub mod drivers;

pub use drivers::{
    fpasm, fpcc, fpequiv, fplint, fpnetmap, fpobjdump, fpprotect, fprun, fpsurface, fpsweep,
    CliError, LintSummary, RunSummary,
};
