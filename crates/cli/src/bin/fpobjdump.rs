//! Thin wrapper over [`flexprot_cli::fpobjdump`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fpobjdump(&args) {
        Ok(message) => println!("{message}"),
        Err(err) => {
            eprintln!("fpobjdump: {err}");
            std::process::exit(2);
        }
    }
}
