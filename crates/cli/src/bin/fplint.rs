//! Thin wrapper over [`flexprot_cli::fplint`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fplint(&args) {
        Ok(summary) => {
            print!("{}", summary.report);
            std::process::exit(summary.exit_code);
        }
        Err(err) => {
            eprintln!("fplint: {err}");
            std::process::exit(2);
        }
    }
}
