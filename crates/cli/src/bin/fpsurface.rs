//! Thin wrapper over [`flexprot_cli::fpsurface`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fpsurface(&args) {
        Ok(summary) => {
            print!("{}", summary.report);
            std::process::exit(summary.exit_code);
        }
        Err(err) => {
            eprintln!("fpsurface: {err}");
            std::process::exit(2);
        }
    }
}
