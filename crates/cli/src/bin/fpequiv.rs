//! Thin wrapper over [`flexprot_cli::fpequiv`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fpequiv(&args) {
        Ok(summary) => {
            print!("{}", summary.report);
            std::process::exit(summary.exit_code);
        }
        Err(err) => {
            eprintln!("fpequiv: {err}");
            std::process::exit(2);
        }
    }
}
