//! Thin wrapper over [`flexprot_cli::fpasm`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fpasm(&args) {
        Ok(message) => println!("{message}"),
        Err(err) => {
            eprintln!("fpasm: {err}");
            std::process::exit(2);
        }
    }
}
