//! Thin wrapper over [`flexprot_cli::fprun`].

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fprun(&args) {
        Ok(summary) => {
            print!("{}", summary.output);
            std::io::stdout().flush().ok();
            eprintln!("{}", summary.report);
            std::process::exit(summary.exit_code);
        }
        Err(err) => {
            eprintln!("fprun: {err}");
            std::process::exit(2);
        }
    }
}
