//! Thin wrapper over [`flexprot_cli::fpnetmap`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fpnetmap(&args) {
        Ok(summary) => {
            print!("{}", summary.report);
            std::process::exit(summary.exit_code);
        }
        Err(err) => {
            eprintln!("fpnetmap: {err}");
            std::process::exit(2);
        }
    }
}
