//! Thin wrapper over [`flexprot_cli::fpsweep`].

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fpsweep(&args) {
        Ok(report) => {
            print!("{report}");
            std::io::stdout().flush().ok();
        }
        Err(err) => {
            eprintln!("fpsweep: {err}");
            std::process::exit(2);
        }
    }
}
