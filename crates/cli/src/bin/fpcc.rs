//! Thin wrapper over [`flexprot_cli::fpcc`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fpcc(&args) {
        Ok(message) => println!("{message}"),
        Err(err) => {
            eprintln!("fpcc: {err}");
            std::process::exit(2);
        }
    }
}
