//! Thin wrapper over [`flexprot_cli::fpprotect`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flexprot_cli::fpprotect(&args) {
        Ok(message) => println!("{message}"),
        Err(err) => {
            eprintln!("fpprotect: {err}");
            std::process::exit(2);
        }
    }
}
