//! Minimal dependency-free argument parsing.

use std::collections::BTreeMap;

/// Parsed command line: positional arguments plus `--flag [value]` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--name value` options (`None` for bare flags).
    pub options: BTreeMap<String, Option<String>>,
}

/// Option names that take a value; everything else `--…` is a bare flag.
/// A single-dash spelling (`-o value`) is accepted as an alias for a
/// *declared* valued option; any other `-…` token stays positional.
pub fn parse(args: &[String], valued: &[&str]) -> Result<Args, String> {
    let mut out = Args::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let name = arg
            .strip_prefix("--")
            .or_else(|| arg.strip_prefix('-').filter(|n| valued.contains(n)));
        if let Some(name) = name {
            if valued.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                out.options.insert(name.to_owned(), Some(value.clone()));
            } else {
                out.options.insert(name.to_owned(), None);
            }
        } else {
            out.positional.push(arg.clone());
        }
    }
    Ok(out)
}

impl Args {
    /// Whether a flag/option was given.
    pub fn has(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// The value of a valued option, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.as_deref())
    }

    /// Parses an option as `T`, with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("invalid value `{text}` for --{name}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn positional_and_options_mix() {
        let args = parse(
            &split("in.s -x --density 0.5 --stats out.fpx"),
            &["density"],
        )
        .unwrap();
        assert_eq!(args.positional, vec!["in.s", "-x", "out.fpx"]);
        assert_eq!(args.value("density"), Some("0.5"));
        assert!(args.has("stats"));
        assert!(!args.has("density-missing"));
    }

    #[test]
    fn short_alias_for_valued_options() {
        // `fpasm in.s -o out.fpx` — the usage strings advertise the short
        // spelling, so a declared valued option must accept it.
        let args = parse(&split("in.s -o out.fpx"), &["o"]).unwrap();
        assert_eq!(args.positional, vec!["in.s"]);
        assert_eq!(args.value("o"), Some("out.fpx"));
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&split("--density"), &["density"]).is_err());
    }

    #[test]
    fn parse_or_defaults_and_parses() {
        let args = parse(&split("--n 7"), &["n"]).unwrap();
        assert_eq!(args.parse_or("n", 0u32).unwrap(), 7);
        assert_eq!(args.parse_or("m", 3u32).unwrap(), 3);
        let bad = parse(&split("--n x"), &["n"]).unwrap();
        assert!(bad.parse_or("n", 0u32).is_err());
    }
}
