//! The four tool drivers.

use std::fmt;
use std::path::Path;

use flexprot_core::{
    protect, EncryptConfig, Granularity, GuardConfig, Placement, ProtectionConfig, Selection,
};
use flexprot_exec::{default_jobs, Engine, SweepSpec};
use flexprot_isa::Image;
use flexprot_secmon::{DecryptModel, SecMon, SecMonConfig};
use flexprot_sim::{CacheConfig, Machine, Outcome, SimConfig};
use flexprot_trace::Recorder;

use crate::args::{parse, Args};

/// Any failure a driver can report (message already formatted for users).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError(message)
    }
}

fn read(path: &str) -> Result<Vec<u8>, CliError> {
    std::fs::read(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))
}

fn write(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    if let Some(dir) = Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError(format!("cannot create {}: {e}", dir.display())))?;
        }
    }
    std::fs::write(path, bytes).map_err(|e| CliError(format!("cannot write {path}: {e}")))
}

fn load_image(path: &str) -> Result<Image, CliError> {
    Image::from_bytes(&read(path)?).map_err(|e| CliError(format!("{path}: {e}")))
}

/// RFC-4180 escaping for one CSV field: a value containing a comma, a
/// double quote or a newline is quoted, with embedded quotes doubled.
/// Plain values (the overwhelming majority) pass through unchanged, so
/// existing baselines keep their bytes.
pub(crate) fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_owned()
    }
}

/// Joins one row with [`csv_field`] escaping applied to every cell.
pub(crate) fn csv_row(cells: &[String]) -> String {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&csv_field(cell));
    }
    line
}

/// The shared option block of every batch driver (`fprun`'s multi-image
/// mode, `fpsurface`, `fpsweep`, `fpnetmap`): worker count plus the CSV
/// and metrics export paths. Parsing it in one place keeps `--jobs`
/// semantics identical everywhere — explicit `--jobs 0` is a usage error
/// (it used to clamp to one worker in some drivers while
/// `FLEXPROT_JOBS=0` silently fell back to the CPU count).
#[derive(Debug, Clone)]
pub(crate) struct BatchOpts {
    /// Worker threads; defaults to [`default_jobs`] (`FLEXPROT_JOBS` or
    /// the CPU count).
    pub workers: usize,
    /// `--csv <path>`: write the tabular report here.
    pub csv: Option<String>,
    /// `--metrics <path>`: write the engine's aggregate
    /// `flexprot-metrics-v1` document here.
    pub metrics: Option<String>,
}

impl BatchOpts {
    /// The valued option names this block consumes; splice into the
    /// driver's `parse` list.
    pub const VALUED: [&'static str; 3] = ["jobs", "csv", "metrics"];

    pub fn from_args(args: &Args) -> Result<BatchOpts, CliError> {
        let workers: usize = args.parse_or("jobs", default_jobs())?;
        if workers == 0 {
            return Err(CliError(
                "--jobs must be at least 1 (unset FLEXPROT_JOBS or omit --jobs for the default)"
                    .to_owned(),
            ));
        }
        Ok(BatchOpts {
            workers,
            csv: args.value("csv").map(str::to_owned),
            metrics: args.value("metrics").map(str::to_owned),
        })
    }

    /// Writes the CSV report if `--csv` was given.
    pub fn write_csv(&self, csv: &str) -> Result<(), CliError> {
        match &self.csv {
            Some(path) => write(path, csv.as_bytes()),
            None => Ok(()),
        }
    }

    /// Writes the engine's aggregate metrics if `--metrics` was given.
    pub fn write_metrics(&self, engine: &Engine) -> Result<(), CliError> {
        match &self.metrics {
            Some(path) => write(path, engine.metrics().to_json().as_bytes()),
            None => Ok(()),
        }
    }
}

/// `fpasm <input.s> -o <output.fpx>` — assemble a source file.
///
/// Returns the human-readable success message.
///
/// # Errors
///
/// Reports I/O, parse and assembly failures.
pub fn fpasm(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse(raw_args, &["o"])?;
    let [input] = args.positional.as_slice() else {
        return Err(CliError(
            "usage: fpasm <input.s> [-o|--o <output.fpx>]".to_owned(),
        ));
    };
    let source = String::from_utf8(read(input)?)
        .map_err(|_| CliError(format!("{input}: not valid UTF-8")))?;
    let image = flexprot_asm::assemble(&source).map_err(|e| CliError(format!("{input}:{e}")))?;
    let output = args
        .value("o")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}.fpx", input.trim_end_matches(".s")));
    write(&output, &image.to_bytes())?;
    Ok(format!(
        "assembled {input}: {} text words, {} data bytes -> {output}",
        image.text.len(),
        image.data.len()
    ))
}

/// `fpobjdump <image.fpx>` — disassembly, symbols and relocations.
///
/// # Errors
///
/// Reports I/O and container-format failures.
pub fn fpobjdump(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse(raw_args, &["secmon"])?;
    let [input] = args.positional.as_slice() else {
        return Err(CliError(
            "usage: fpobjdump <image.fpx> [--secmon <cfg.fpm>]".to_owned(),
        ));
    };
    let image = load_image(input)?;
    let mut out = String::new();
    out.push_str(&format!(
        "{input}: entry {:#010x}, text {:#010x}+{} words, data {:#010x}+{} bytes\n\n",
        image.entry,
        image.text_base,
        image.text.len(),
        image.data_base,
        image.data.len()
    ));
    out.push_str("SYMBOLS\n");
    for (name, addr) in &image.symbols {
        out.push_str(&format!("  {addr:#010x}  {name}\n"));
    }
    out.push_str(&format!("\nRELOCATIONS ({})\n", image.relocs.len()));
    for reloc in &image.relocs {
        out.push_str(&format!(
            "  word {:>5}  {:<5} -> {:#010x}\n",
            reloc.text_index, reloc.kind, reloc.target
        ));
    }
    if let Some(path) = args.value("secmon") {
        let config =
            SecMonConfig::from_bytes(&read(path)?).map_err(|e| CliError(format!("{path}: {e}")))?;
        out.push_str(&format!(
            "\nMONITOR CONFIG ({path})\n  guard sites: {}\n  window starts: {}\n  protected ranges: {}\n  reset points: {}\n  spacing bound: {}\n  encrypted regions: {}\n  decrypt: {} cyc/word, startup {}, {}\n  halt on tamper: {}\n",
            config.sites.len(),
            config.window_starts.len(),
            config.protected.len(),
            config.reset_points.len(),
            config
                .spacing_bound
                .map_or_else(|| "disabled".to_owned(), |b| b.to_string()),
            config.regions.regions().len(),
            config.decrypt.cycles_per_word,
            config.decrypt.startup,
            if config.decrypt.pipelined { "pipelined" } else { "serial" },
            config.halt_on_tamper,
        ));
        out.push_str("  sites:\n");
        for (&addr, site) in &config.sites {
            let window = config.window_interval(addr).map_or_else(
                || "window unresolved".to_owned(),
                |(start, end)| format!("window [{start:#010x}, {end:#010x})"),
            );
            out.push_str(&format!(
                "    {addr:#010x}  {} symbols, tail {}, {window}\n",
                site.symbols, site.tail
            ));
        }
    }
    out.push_str("\nDISASSEMBLY\n");
    out.push_str(&image.disassemble());
    Ok(out)
}

/// `fpprotect <in.fpx> -o <out.fpx> --secmon <out.fpm> [options]`.
///
/// Options: `--density <0..1>`, `--placement uniform|random|coldest|loop`,
/// `--encrypt program|function|block`, `--guard-key N`, `--enc-key N`,
/// `--seed N`, `--no-spacing`, `--cycles-per-word N`, `--serial`,
/// `--watermark TEXT` (embedded in the guard salt channel), `--profile`
/// (run a baseline profiling simulation first, enabling cold-first
/// placement to see real execution counts).
///
/// # Errors
///
/// Reports I/O, format and protection-pass failures.
pub fn fpprotect(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse(
        raw_args,
        &[
            "o",
            "secmon",
            "density",
            "placement",
            "encrypt",
            "guard-key",
            "enc-key",
            "seed",
            "cycles-per-word",
            "watermark",
        ],
    )?;
    let [input] = args.positional.as_slice() else {
        return Err(CliError(
            "usage: fpprotect <in.fpx> --o <out.fpx> --secmon <out.fpm> [options]".to_owned(),
        ));
    };
    let image = load_image(input)?;

    let mut config = ProtectionConfig::new();
    let density: f64 = args.parse_or("density", 0.0)?;
    if density > 0.0 {
        let placement = match args.value("placement").unwrap_or("uniform") {
            "uniform" => Placement::Uniform,
            "random" => Placement::Random,
            "coldest" => Placement::ColdestFirst,
            "loop" => Placement::LoopHeaders,
            other => return Err(CliError(format!("unknown placement `{other}`"))),
        };
        config.guards = Some(GuardConfig {
            key: args.parse_or("guard-key", 0x0BAD_C0DE_CAFE_F00Du64)?,
            seed: args.parse_or("seed", 1u64)?,
            placement,
            selection: Selection::Density(density),
            enforce_spacing: !args.has("no-spacing"),
        });
    }
    if let Some(granularity) = args.value("encrypt") {
        let granularity = match granularity {
            "program" => Granularity::Program,
            "function" => Granularity::Function,
            "block" => Granularity::Block,
            other => return Err(CliError(format!("unknown granularity `{other}`"))),
        };
        config.encryption = Some(EncryptConfig {
            master_key: args.parse_or("enc-key", 0x5EED_5EED_5EED_5EEDu64)?,
            granularity,
            model: DecryptModel {
                cycles_per_word: args.parse_or("cycles-per-word", 2u64)?,
                startup: 4,
                pipelined: !args.has("serial"),
            },
            scope: None,
        });
    }
    if let Some(text) = args.value("watermark") {
        config.watermark = Some(text.as_bytes().to_vec());
    }
    let profile = if args.has("profile") {
        let (profile, result) = flexprot_core::Profile::collect(&image, &SimConfig::default());
        if result.outcome != Outcome::Exit(0) {
            return Err(CliError(format!(
                "profiling run did not exit cleanly: {:?}",
                result.outcome
            )));
        }
        Some(profile)
    } else {
        None
    };
    let protected =
        protect(&image, &config, profile.as_ref()).map_err(|e| CliError(e.to_string()))?;

    let out_path = args
        .value("o")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{input}.prot"));
    write(&out_path, &protected.image.to_bytes())?;
    let mut message = format!(
        "protected {input}: {} guards (+{:.1}% size), {} encrypted region(s) -> {out_path}",
        protected.report.guards_inserted,
        protected.report.size_overhead_fraction() * 100.0,
        protected.report.encrypted_regions
    );
    if let Some(secmon_path) = args.value("secmon") {
        write(secmon_path, &protected.secmon.to_bytes())?;
        message.push_str(&format!("; monitor config -> {secmon_path}"));
    }
    Ok(message)
}

/// What [`fprun`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The program's console output.
    pub output: String,
    /// Human-readable outcome + optional stats block.
    pub report: String,
    /// Suggested process exit code.
    pub exit_code: i32,
}

fn fprun_sim(args: &Args) -> Result<SimConfig, CliError> {
    let mut sim = SimConfig {
        max_instructions: args.parse_or("max-instr", 200_000_000u64)?,
        ..SimConfig::default()
    };
    if let Some(bytes) = args.value("icache") {
        let size: u32 = bytes
            .parse()
            .map_err(|_| CliError(format!("invalid --icache `{bytes}`")))?;
        sim.icache = CacheConfig {
            size_bytes: size,
            ..CacheConfig::default_icache()
        };
        sim.icache
            .validate()
            .map_err(|e| CliError(format!("--icache: {e}")))?;
    }
    if let Some(kind) = args.value("engine") {
        sim.engine = kind
            .parse()
            .map_err(|e| CliError(format!("--engine: {e}")))?;
    }
    Ok(sim)
}

fn fprun_secmon(args: &Args) -> Result<SecMonConfig, CliError> {
    match args.value("secmon") {
        Some(path) => {
            SecMonConfig::from_bytes(&read(path)?).map_err(|e| CliError(format!("{path}: {e}")))
        }
        None => Ok(SecMonConfig::transparent()),
    }
}

fn outcome_code(outcome: &Outcome) -> (String, i32) {
    match outcome {
        Outcome::Exit(code) => (format!("exit {code}"), *code),
        Outcome::TamperDetected(event) => (format!("TAMPER: {event}"), 101),
        Outcome::Fault(fault) => (format!("FAULT: {fault}"), 102),
        Outcome::OutOfFuel => ("out of fuel".to_owned(), 103),
    }
}

/// `fprun <image.fpx>... [--secmon <cfg.fpm>] [--icache BYTES]
/// [--max-instr N] [--engine predecoded|reference] [--jobs N] [--stats]
/// [--metrics <out.json>] [--trace <out.jsonl>]`.
///
/// `--engine` selects the simulator core: `predecoded` (the default
/// fill-path engine) or `reference` (the per-fetch interpreter kept for
/// differential checking). Both report identical outcomes and stats.
///
/// Exit-code contract: the program's own exit code on a clean run,
/// `101` for a tamper response, `102` for a CPU fault, `103` when the
/// `--max-instr` fuel limit was exhausted, and `2` for usage or I/O
/// errors.
///
/// `--metrics` writes the `flexprot-metrics-v1` counter/histogram document
/// aggregated from the run's event stream; `--trace` writes every event as
/// one JSONL line. Either flag attaches the observability sink to both the
/// CPU and the secure monitor; without them the run is uninstrumented.
///
/// With several images the runs are batched over an execution-engine
/// worker pool (`--jobs N`, default `FLEXPROT_JOBS`/CPU count); every
/// image shares the same monitor config and simulator flags, the report
/// carries one line per image in argument order, and `--metrics` writes
/// the merged aggregate document. `--trace` requires a single image.
///
/// # Errors
///
/// Reports I/O and format failures (simulation outcomes are reported in
/// the summary, not as errors).
pub fn fprun(raw_args: &[String]) -> Result<RunSummary, CliError> {
    let args = parse(
        raw_args,
        &[
            "secmon",
            "icache",
            "max-instr",
            "engine",
            "metrics",
            "trace",
            "jobs",
        ],
    )?;
    if args.positional.is_empty() {
        return Err(CliError(
            "usage: fprun <image.fpx>... [--secmon <cfg.fpm>] [--jobs N] [--stats]".to_owned(),
        ));
    }
    if args.positional.len() > 1 {
        return fprun_batch(&args);
    }
    let input = &args.positional[0];
    let image = load_image(input)?;
    let sim = fprun_sim(&args)?;
    let mut monitor = SecMon::new(fprun_secmon(&args)?);
    let metrics_path = args.value("metrics").map(str::to_owned);
    let trace_path = args.value("trace").map(str::to_owned);
    let observed = (metrics_path.is_some() || trace_path.is_some()).then(|| {
        let recorder = if trace_path.is_some() {
            Recorder::with_trace()
        } else {
            Recorder::new()
        };
        recorder.shared()
    });
    if let Some((sink, _)) = &observed {
        monitor.attach_sink(sink.clone());
    }
    let mut machine = Machine::with_monitor(&image, sim, monitor);
    if let Some((sink, _)) = &observed {
        machine.attach_sink(sink.clone());
    }
    let result = machine.run();
    if let Some((_, recorder)) = &observed {
        let recorder = recorder.borrow();
        if let Some(path) = &metrics_path {
            write(path, recorder.metrics().to_json().as_bytes())?;
        }
        if let Some(path) = &trace_path {
            let mut body =
                String::with_capacity(recorder.trace_lines().iter().map(|l| l.len() + 1).sum());
            for line in recorder.trace_lines() {
                body.push_str(line);
                body.push('\n');
            }
            write(path, body.as_bytes())?;
        }
    }

    let (outcome_text, exit_code) = outcome_code(&result.outcome);
    let mut report = outcome_text;
    if args.has("stats") {
        report.push_str(&format!(
            "\ninstructions {}\ncycles       {}\nCPI          {:.3}\nI-miss       {:.4}%\nD-miss       {:.4}%\nmonitor fill {} cycles",
            result.stats.instructions,
            result.stats.cycles,
            result.stats.cpi(),
            result.stats.icache_miss_rate() * 100.0,
            result.stats.dcache_miss_rate() * 100.0,
            result.stats.monitor_fill_cycles,
        ));
    }
    Ok(RunSummary {
        output: result.output,
        report,
        exit_code,
    })
}

/// Several positional images: fan the runs out over an [`Engine`] pool.
/// Outputs and report lines come back in argument order whatever the
/// worker count.
fn fprun_batch(args: &Args) -> Result<RunSummary, CliError> {
    if args.value("trace").is_some() {
        return Err(CliError(
            "--trace requires a single image (run the batch without it)".to_owned(),
        ));
    }
    let sim = fprun_sim(args)?;
    let secmon = fprun_secmon(args)?;
    let batch = BatchOpts::from_args(args)?;
    let want_metrics = batch.metrics.is_some();
    let want_stats = args.has("stats");
    let engine = Engine::new(batch.workers);
    let results = engine.run_jobs(&args.positional, |ctx, path| {
        let image = load_image(path)?;
        let mut monitor = SecMon::new(secmon.clone());
        let observed = want_metrics.then(|| Recorder::new().shared());
        if let Some((sink, _)) = &observed {
            monitor.attach_sink(sink.clone());
        }
        let mut machine = Machine::with_monitor(&image, sim.clone(), monitor);
        if let Some((sink, _)) = &observed {
            machine.attach_sink(sink.clone());
        }
        let result = machine.run();
        if let Some((_, recorder)) = &observed {
            ctx.merge_metrics(recorder.borrow().metrics());
        }
        let (text, code) = outcome_code(&result.outcome);
        let mut line = format!("{path}: {text}");
        if want_stats {
            line.push_str(&format!(
                " ({} instrs, {} cycles, CPI {:.3})",
                result.stats.instructions,
                result.stats.cycles,
                result.stats.cpi()
            ));
        }
        Ok::<_, CliError>((result.output, line, code))
    });
    let mut outputs = Vec::new();
    let mut lines = Vec::new();
    let mut exit_code = 0;
    for result in results {
        let (output, line, code) = result?;
        outputs.push(output);
        lines.push(line);
        if exit_code == 0 {
            exit_code = code;
        }
    }
    batch.write_metrics(&engine)?;
    Ok(RunSummary {
        output: outputs.join("\n"),
        report: lines.join("\n"),
        exit_code,
    })
}

/// What [`fplint`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintSummary {
    /// Rendered report (human or CSV).
    pub report: String,
    /// Suggested process exit code (see [`fplint`]'s exit-code contract).
    pub exit_code: i32,
}

/// `fplint <image.fpx> [--secmon <cfg.fpm>] [--deny L,..] [--allow L,..]
/// [--format human|csv|json] [--csv] [--taint] [--surface] [--guardnet]
/// [--equiv <baseline.fpx>] [--lints]`.
///
/// Statically verifies the protection contract of an image against its
/// monitor configuration (transparent configuration if `--secmon` is
/// omitted). `--deny`/`--allow` take comma-separated lint IDs or names;
/// `--format` selects the report rendering (`--csv` is a shorthand for
/// `--format csv`; `json` emits the stable `flexprot-lint-v1` document);
/// `--taint` additionally runs the key-flow taint analysis (FP901–FP904
/// findings; the JSON document's `stats.taint` object carries the run
/// counters); `--surface` prints the static tamper-surface map
/// (`flexprot-surface-v1` JSON) and `--guardnet` the guard network with
/// its checksum proofs (`flexprot-guardnet-v1` JSON) instead of the lint
/// report; `--equiv <baseline.fpx>` runs the translation validator
/// against the given *baseline* image and prints the
/// `flexprot-equiv-v1` verdict document (FP8xx findings); `--lints`
/// prints the lint table and exits.
///
/// # Exit codes
///
/// The contract scripts rely on (stable across releases):
///
/// * `0` — the image verifies clean (no error-severity finding under the
///   effective policy);
/// * `1` — at least one finding at deny level: the image is rejected;
/// * `2` — usage or I/O error (unknown flag, unreadable file, bad
///   policy); the binaries map every [`CliError`] to this code.
///
/// # Errors
///
/// Reports I/O, format and policy failures. Findings are reported in the
/// summary, not as errors.
pub fn fplint(raw_args: &[String]) -> Result<LintSummary, CliError> {
    use flexprot_verify::{analyze_with_options, lint_by_id, LintPolicy, LINTS};

    let args = parse(raw_args, &["secmon", "deny", "allow", "format", "equiv"])?;
    if args.has("lints") {
        let mut out = String::new();
        for lint in LINTS {
            // Severity's Display ignores format padding, so stringify it
            // first to keep the columns aligned across all families.
            let severity = lint.default_severity.to_string();
            out.push_str(&format!(
                "{}  {severity:<7}  {:<29}  {}\n",
                lint.id, lint.name, lint.description
            ));
        }
        return Ok(LintSummary {
            report: out,
            exit_code: 0,
        });
    }
    let [input] = args.positional.as_slice() else {
        return Err(CliError(
            "usage: fplint <image.fpx> [--secmon <cfg.fpm>] [--deny L,..] \
             [--allow L,..] [--format human|csv|json] [--csv] [--taint] \
             [--surface] [--guardnet] [--equiv <baseline.fpx>] [--lints]"
                .to_owned(),
        ));
    };
    let format = match args.value("format") {
        None if args.has("csv") => "csv",
        None => "human",
        Some(f @ ("human" | "csv" | "json")) => f,
        Some(other) => {
            return Err(CliError(format!(
                "--format: unknown format `{other}` (expected human, csv or json)"
            )));
        }
    };
    let image = load_image(input)?;
    let config = match args.value("secmon") {
        Some(path) => {
            SecMonConfig::from_bytes(&read(path)?).map_err(|e| CliError(format!("{path}: {e}")))?
        }
        None => SecMonConfig::transparent(),
    };
    let list = |name: &str| -> Result<Vec<String>, CliError> {
        let Some(value) = args.value(name) else {
            return Ok(Vec::new());
        };
        value
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|key| {
                lint_by_id(key)
                    .map(|l| l.id.to_owned())
                    .ok_or_else(|| CliError(format!("--{name}: unknown lint `{key}`")))
            })
            .collect()
    };
    let policy = LintPolicy::new(&list("deny")?, &list("allow")?).map_err(CliError)?;
    if let Some(base_path) = args.value("equiv") {
        let base = load_image(base_path)?;
        let equiv = flexprot_verify::equiv::validate_with_policy(&base, &image, &config, &policy);
        return Ok(LintSummary {
            report: equiv.to_json(),
            exit_code: i32::from(!equiv.is_clean()),
        });
    }
    let verification = analyze_with_options(&image, &config, &policy, args.has("taint"));
    let report = if args.has("guardnet") {
        verification.guardnet_json()
    } else if args.has("surface") {
        verification.surface.to_json()
    } else {
        match format {
            "csv" => verification.report.render_csv(),
            "json" => verification.report.render_json(),
            _ => verification.report.render_human(),
        }
    };
    Ok(LintSummary {
        report,
        exit_code: i32::from(!verification.report.is_clean()),
    })
}

/// `fpsurface [--programs a,b,..] [--jobs N] [--csv <out.csv>]` — lint
/// every golden program of the protection matrix and tabulate its static
/// tamper surface.
///
/// The grid crosses the reference MiniC kernels
/// ([`flexprot_cc::kernels`]) and three assembly workloads with the seven
/// protection-matrix cells (no protection, guards at two densities,
/// encryption at three granularities, guards+encryption). Each cell
/// protects the program, runs the full static analysis
/// ([`flexprot_verify::analyze`]) on the shipped image, and reports one
/// CSV row; cells fan out over `--jobs` workers through the batched
/// execution engine and the rows are identical whatever the worker count.
/// The suggested exit code is 1 when any cell has error-severity
/// findings, which is how CI gates on it.
///
/// # Errors
///
/// Reports unknown program names, compilation and I/O failures.
pub fn fpsurface(raw_args: &[String]) -> Result<LintSummary, CliError> {
    use flexprot_verify::{LintPolicy, Severity};

    let mut valued = vec!["programs"];
    valued.extend(BatchOpts::VALUED);
    let args = parse(raw_args, &valued)?;
    if !args.positional.is_empty() {
        return Err(CliError(
            "usage: fpsurface [--programs a,b,..] [--jobs N] [--csv <out.csv>] \
             [--metrics <out.json>]"
                .to_owned(),
        ));
    }
    let batch = BatchOpts::from_args(&args)?;
    let jobs = matrix_jobs(args.value("programs"))?;
    let engine = Engine::new(batch.workers);
    let results = engine.run_jobs(&jobs, |_ctx, (name, cell, image, config)| {
        let protected = protect(image, config, None)
            .map_err(|e| CliError(format!("{name}/{cell}: protect failed: {e}")))?;
        let verification =
            flexprot_verify::analyze(&protected.image, &protected.secmon, &LintPolicy::default());
        let map = &verification.surface;
        Ok::<_, CliError>(vec![
            name.clone(),
            cell.clone(),
            map.text_words.to_string(),
            map.reachable.iter().filter(|&&r| r).count().to_string(),
            map.sound_windows.to_string(),
            map.covered_words().to_string(),
            map.encrypted_words().to_string(),
            map.surface_words().to_string(),
            verification.report.count(Severity::Error).to_string(),
            verification.report.count(Severity::Warning).to_string(),
            map.full_reachable_coverage().to_string(),
        ])
    });

    let header = [
        "program",
        "cell",
        "text_words",
        "reachable",
        "windows",
        "covered",
        "encrypted",
        "surface",
        "errors",
        "warnings",
        "full_coverage",
    ];
    let mut csv = header.join(",");
    csv.push('\n');
    let mut errors = 0usize;
    for result in results {
        let row = result?;
        errors += row[8].parse::<usize>().unwrap_or(0);
        csv.push_str(&csv_row(&row));
        csv.push('\n');
    }
    batch.write_csv(&csv)?;
    batch.write_metrics(&engine)?;
    Ok(LintSummary {
        report: csv,
        exit_code: i32::from(errors > 0),
    })
}

/// The golden protection-matrix grid every batch analyzer sweeps: the
/// reference MiniC kernels plus three assembly workloads, crossed with
/// the seven protection cells (no protection, guards at two densities,
/// encryption at three granularities, guards+encryption). `filter` is
/// the `--programs` comma list; unknown names are usage errors.
fn matrix_jobs(
    filter: Option<&str>,
) -> Result<Vec<(String, String, Image, ProtectionConfig)>, CliError> {
    let mut programs: Vec<(String, Image)> = Vec::new();
    for (name, source) in flexprot_cc::kernels::all() {
        let image = flexprot_cc::compile_to_image(source)
            .map_err(|e| CliError(format!("{name}: internal: {e}")))?;
        programs.push((name.to_owned(), image));
    }
    for name in ["rle", "bitcount", "fir"] {
        let workload = flexprot_workloads::by_name(name)
            .ok_or_else(|| CliError(format!("workload `{name}` missing")))?;
        programs.push((name.to_owned(), workload.image()));
    }
    if let Some(filter) = filter {
        let wanted: Vec<&str> = filter
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let known: Vec<String> = programs.iter().map(|(n, _)| n.clone()).collect();
        for name in &wanted {
            if !known.iter().any(|k| k == name) {
                return Err(CliError(format!(
                    "--programs: unknown program `{name}`; known: {}",
                    known.join(", ")
                )));
            }
        }
        programs.retain(|(name, _)| wanted.iter().any(|w| w == name));
    }

    let guards = |density: f64| GuardConfig {
        key: 0x0BAD_C0DE_CAFE_F00D,
        ..GuardConfig::with_density(density)
    };
    let enc = |granularity: Granularity| EncryptConfig {
        granularity,
        ..EncryptConfig::whole_program(0x5EED_5EED_5EED_5EED)
    };
    let cells: Vec<(&str, ProtectionConfig)> = vec![
        ("none", ProtectionConfig::new()),
        (
            "guards-0.25",
            ProtectionConfig::new().with_guards(guards(0.25)),
        ),
        (
            "guards-1.0",
            ProtectionConfig::new().with_guards(guards(1.0)),
        ),
        (
            "enc-program",
            ProtectionConfig::new().with_encryption(enc(Granularity::Program)),
        ),
        (
            "enc-function",
            ProtectionConfig::new().with_encryption(enc(Granularity::Function)),
        ),
        (
            "enc-block",
            ProtectionConfig::new().with_encryption(enc(Granularity::Block)),
        ),
        (
            "guards-enc",
            ProtectionConfig::new()
                .with_guards(guards(1.0))
                .with_encryption(enc(Granularity::Function)),
        ),
    ];

    let mut jobs: Vec<(String, String, Image, ProtectionConfig)> = Vec::new();
    for (name, image) in &programs {
        for (cell, config) in &cells {
            jobs.push((
                name.clone(),
                (*cell).to_owned(),
                image.clone(),
                config.clone(),
            ));
        }
    }
    Ok(jobs)
}

/// `fpnetmap [--programs a,b,..] [--jobs N] [--csv <out.csv>]
/// [--refusals <out.csv>] [--metrics <out.json>]` — tabulate the guard
/// network and checksum proofs of every protection-matrix cell.
///
/// Each cell protects the program, builds the who-checks-whom guard
/// digraph and the abstract-interpretation checksum proofs
/// ([`flexprot_verify::analyze`]), and reports one CSV row: guard/sound
/// counts, edge and SCC counts, unchecked/acyclic/articulation tallies,
/// the minimum-cut size (`none` when no cut disconnects the network),
/// and the proof verdict tally (proven/mismatch/unproven). Cells fan out
/// over `--jobs` workers and the rows are identical whatever the worker
/// count. The suggested exit code is 1 when any cell has an
/// error-severity finding (a `mismatch` implies one via FP703).
///
/// `--refusals` writes the per-window refusal ledger alongside: one
/// `program,cell,site,verdict,code` row per guard window the prover
/// could *not* prove, keyed by the stable
/// [`flexprot_verify::UnprovenReason`] codes. CI pins this file as
/// `results/refusals_baseline.csv`, so any precision regression (a
/// window sliding back from proven) shows up as a new row in the diff.
///
/// # Errors
///
/// Reports unknown program names, compilation and I/O failures.
pub fn fpnetmap(raw_args: &[String]) -> Result<LintSummary, CliError> {
    use flexprot_verify::{LintPolicy, Severity, Verdict};

    let mut valued = vec!["programs", "refusals"];
    valued.extend(BatchOpts::VALUED);
    let args = parse(raw_args, &valued)?;
    if !args.positional.is_empty() {
        return Err(CliError(
            "usage: fpnetmap [--programs a,b,..] [--jobs N] [--csv <out.csv>] \
             [--refusals <out.csv>] [--metrics <out.json>]"
                .to_owned(),
        ));
    }
    let batch = BatchOpts::from_args(&args)?;
    let jobs = matrix_jobs(args.value("programs"))?;
    let engine = Engine::new(batch.workers);
    let results = engine.run_jobs(&jobs, |_ctx, (name, cell, image, config)| {
        let protected = protect(image, config, None)
            .map_err(|e| CliError(format!("{name}/{cell}: protect failed: {e}")))?;
        let v =
            flexprot_verify::analyze(&protected.image, &protected.secmon, &LintPolicy::default());
        let net = &v.guardnet;
        let mut proven = 0usize;
        let mut mismatch = 0usize;
        let mut unproven = 0usize;
        let mut unproven_rows: Vec<Vec<String>> = Vec::new();
        for proof in &v.proofs {
            match &proof.verdict {
                Verdict::Proven { .. } => proven += 1,
                Verdict::Mismatch { .. } => {
                    mismatch += 1;
                    unproven_rows.push(vec![
                        name.clone(),
                        cell.clone(),
                        format!("{:#010x}", proof.site_addr),
                        "mismatch".to_owned(),
                        "signature_mismatch".to_owned(),
                    ]);
                }
                Verdict::Unproven { reason } => {
                    unproven += 1;
                    unproven_rows.push(vec![
                        name.clone(),
                        cell.clone(),
                        format!("{:#010x}", proof.site_addr),
                        "unproven".to_owned(),
                        reason.code().to_owned(),
                    ]);
                }
            }
        }
        let min_cut = match &net.min_cut {
            None => "none".to_owned(),
            Some(cut) => cut.len().to_string(),
        };
        let row = vec![
            name.clone(),
            cell.clone(),
            net.nodes.len().to_string(),
            net.sound_count().to_string(),
            net.edges.to_string(),
            net.scc_count.to_string(),
            net.unchecked_count().to_string(),
            net.acyclic_count().to_string(),
            net.nodes
                .iter()
                .filter(|n| n.articulation)
                .count()
                .to_string(),
            min_cut,
            proven.to_string(),
            mismatch.to_string(),
            unproven.to_string(),
            v.report.count(Severity::Error).to_string(),
        ];
        Ok::<_, CliError>((row, unproven_rows))
    });

    let header = [
        "program",
        "cell",
        "guards",
        "sound",
        "edges",
        "sccs",
        "unchecked",
        "acyclic",
        "articulation",
        "min_cut",
        "proven",
        "mismatch",
        "unproven",
        "errors",
    ];
    let mut csv = header.join(",");
    csv.push('\n');
    let mut refusals = String::from("program,cell,site,verdict,code\n");
    let mut errors = 0usize;
    for result in results {
        let (row, unproven_rows) = result?;
        errors += row[13].parse::<usize>().unwrap_or(0);
        csv.push_str(&csv_row(&row));
        csv.push('\n');
        for r in &unproven_rows {
            refusals.push_str(&csv_row(r));
            refusals.push('\n');
        }
    }
    batch.write_csv(&csv)?;
    if let Some(path) = args.value("refusals") {
        write(path, refusals.as_bytes())?;
    }
    batch.write_metrics(&engine)?;
    Ok(LintSummary {
        report: csv,
        exit_code: i32::from(errors > 0),
    })
}

/// `fpequiv [--programs a,b,..] [--jobs N] [--csv <out.csv>]
/// [--metrics <out.json>]` — translation-validate every cell of the
/// protection matrix.
///
/// Each cell protects the program and runs the translation validator
/// ([`flexprot_verify::equiv`]) against the unprotected baseline: CFG
/// alignment modulo inserted guard runs, guard-window transparency
/// (no live architectural state written), and cipher round-trip
/// identity. One CSV row per cell carries the three-valued verdict
/// (`proven` / `inequivalent` / `refused`), the witness address when one
/// exists, the alignment and window tallies, the per-window refusal
/// reasons as a `code:count` tally keyed by the stable
/// [`flexprot_verify::RefusalReason`] codes (`none` when every window is
/// proven), and the FP801–FP804 finding counts. Cells fan out over
/// `--jobs` workers through the batched execution engine and the rows
/// are identical whatever the worker count.
///
/// # Exit codes
///
/// Same contract as [`fplint`]: `0` when every cell is proven (or
/// soundly refused with only warning-severity findings), `1` when any
/// cell has an error-severity finding, `2` (from the binary) on usage
/// or I/O errors.
///
/// # Errors
///
/// Reports unknown program names, compilation and I/O failures.
pub fn fpequiv(raw_args: &[String]) -> Result<LintSummary, CliError> {
    use flexprot_verify::{equiv, Severity};

    let mut valued = vec!["programs"];
    valued.extend(BatchOpts::VALUED);
    let args = parse(raw_args, &valued)?;
    if !args.positional.is_empty() {
        return Err(CliError(
            "usage: fpequiv [--programs a,b,..] [--jobs N] [--csv <out.csv>] \
             [--metrics <out.json>]"
                .to_owned(),
        ));
    }
    let batch = BatchOpts::from_args(&args)?;
    let jobs = matrix_jobs(args.value("programs"))?;
    let engine = Engine::new(batch.workers);
    let results = engine.run_jobs(&jobs, |_ctx, (name, cell, image, config)| {
        let protected = protect(image, config, None)
            .map_err(|e| CliError(format!("{name}/{cell}: protect failed: {e}")))?;
        let report = equiv::validate(image, &protected.image, &protected.secmon);
        let witness = match report.verdict {
            equiv::EquivVerdict::Inequivalent { witness_addr } => format!("{witness_addr:#010x}"),
            _ => "none".to_owned(),
        };
        let errors = report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        let mut by_code: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for (_, reason) in &report.refusals {
            *by_code.entry(reason.code()).or_default() += 1;
        }
        let refusal_codes = if by_code.is_empty() {
            "none".to_owned()
        } else {
            by_code
                .iter()
                .map(|(code, count)| format!("{code}:{count}"))
                .collect::<Vec<_>>()
                .join(";")
        };
        Ok::<_, CliError>(vec![
            name.clone(),
            cell.clone(),
            report.verdict.label().to_owned(),
            witness,
            report.stats.base_words.to_string(),
            report.stats.prot_words.to_string(),
            report.stats.guard_words.to_string(),
            report.stats.aligned_words.to_string(),
            report.stats.windows_proven.to_string(),
            report.stats.windows_refused.to_string(),
            refusal_codes,
            report.stats.cipher_regions.to_string(),
            report.stats.cipher_words.to_string(),
            report.count_id("FP801").to_string(),
            report.count_id("FP802").to_string(),
            report.count_id("FP803").to_string(),
            report.count_id("FP804").to_string(),
            errors.to_string(),
        ])
    });

    let header = [
        "program",
        "cell",
        "verdict",
        "witness",
        "base_words",
        "prot_words",
        "guard_words",
        "aligned",
        "windows_proven",
        "windows_refused",
        "refusal_codes",
        "cipher_regions",
        "cipher_words",
        "fp801",
        "fp802",
        "fp803",
        "fp804",
        "errors",
    ];
    let mut csv = header.join(",");
    csv.push('\n');
    let mut errors = 0usize;
    for result in results {
        let row = result?;
        errors += row[17].parse::<usize>().unwrap_or(0);
        csv.push_str(&csv_row(&row));
        csv.push('\n');
    }
    batch.write_csv(&csv)?;
    batch.write_metrics(&engine)?;
    Ok(LintSummary {
        report: csv,
        exit_code: i32::from(errors > 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("flexprot-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_sample_source(name: &str) -> String {
        let path = tmp(name);
        std::fs::write(
            &path,
            "main: li $a0, 5\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
        )
        .unwrap();
        path
    }

    #[test]
    fn full_pipeline_assemble_protect_run() {
        let src = write_sample_source("pipe.s");
        let fpx = tmp("pipe.fpx");
        let prot = tmp("pipe.prot.fpx");
        let fpm = tmp("pipe.fpm");

        let msg = fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        assert!(msg.contains("text words"), "{msg}");

        let msg = fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
            "--encrypt",
            "program",
        ]))
        .unwrap();
        assert!(msg.contains("guards"), "{msg}");

        // Without the monitor config the ciphertext must not run cleanly.
        let bare = fprun(&strs(&[&prot, "--max-instr", "100000"])).unwrap();
        assert_ne!(bare.exit_code, 0, "{bare:?}");

        // With the monitor it runs and prints 5.
        let run = fprun(&strs(&[&prot, "--secmon", &fpm, "--stats"])).unwrap();
        assert_eq!(run.exit_code, 0, "{run:?}");
        assert_eq!(run.output, "5");
        assert!(run.report.contains("cycles"));
    }

    #[test]
    fn objdump_shows_symbols_and_disasm() {
        let src = write_sample_source("dump.s");
        let fpx = tmp("dump.fpx");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        let dump = fpobjdump(&strs(&[&fpx])).unwrap();
        assert!(dump.contains("SYMBOLS"));
        assert!(dump.contains("main"));
        assert!(dump.contains("syscall"));
    }

    #[test]
    fn objdump_renders_monitor_config() {
        let src = write_sample_source("dumpcfg.s");
        let fpx = tmp("dumpcfg.fpx");
        let prot = tmp("dumpcfg.prot.fpx");
        let fpm = tmp("dumpcfg.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
            "--encrypt",
            "program",
        ]))
        .unwrap();
        let dump = fpobjdump(&strs(&[&prot, "--secmon", &fpm])).unwrap();
        assert!(dump.contains("MONITOR CONFIG"), "{dump}");
        assert!(dump.contains("guard sites"), "{dump}");
        assert!(dump.contains("symbols, tail"), "{dump}");
        assert!(dump.contains("window [0x"), "{dump}");
    }

    #[test]
    fn tamper_is_reported_with_distinct_exit_code() {
        let src = write_sample_source("tamper.s");
        let fpx = tmp("tamper.fpx");
        let prot = tmp("tamper.prot.fpx");
        let fpm = tmp("tamper.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
        ]))
        .unwrap();
        // Flip one bit in the protected image on disk.
        let mut image = Image::from_bytes(&std::fs::read(&prot).unwrap()).unwrap();
        image.text[0] ^= 1 << 22;
        std::fs::write(&prot, image.to_bytes()).unwrap();
        let run = fprun(&strs(&[&prot, "--secmon", &fpm])).unwrap();
        assert!(
            run.exit_code == 101 || run.exit_code == 102,
            "expected tamper/fault, got {run:?}"
        );
    }

    #[test]
    fn out_of_fuel_has_distinct_exit_code_and_message() {
        let src = tmp("fuel.s");
        std::fs::write(&src, "main: j main\n").unwrap();
        let fpx = tmp("fuel.fpx");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        let run = fprun(&strs(&[&fpx, "--max-instr", "1000"])).unwrap();
        assert_eq!(run.exit_code, 103, "{run:?}");
        assert!(run.report.contains("out of fuel"), "{run:?}");
    }

    #[test]
    fn fault_has_distinct_exit_code_and_message() {
        let src = tmp("fault.s");
        std::fs::write(&src, "main: break\n").unwrap();
        let fpx = tmp("fault.fpx");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        let run = fprun(&strs(&[&fpx])).unwrap();
        assert_eq!(run.exit_code, 102, "{run:?}");
        assert!(run.report.contains("FAULT"), "{run:?}");
    }

    #[test]
    fn engine_flag_selects_core_and_rejects_unknown_names() {
        let src = write_sample_source("engine.s");
        let fpx = tmp("engine.fpx");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        let fast = fprun(&strs(&[&fpx, "--stats"])).unwrap();
        let reference = fprun(&strs(&[&fpx, "--engine", "reference", "--stats"])).unwrap();
        assert_eq!(fast, reference);
        let err = fprun(&strs(&[&fpx, "--engine", "turbo"])).unwrap_err();
        assert!(err.to_string().contains("unknown engine"), "{err}");
    }

    #[test]
    fn fprun_emits_metrics_and_trace() {
        use flexprot_trace::json;

        let src = write_sample_source("obs.s");
        let fpx = tmp("obs.fpx");
        let prot = tmp("obs.prot.fpx");
        let fpm = tmp("obs.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
            "--encrypt",
            "program",
        ]))
        .unwrap();
        let metrics = tmp("obs.metrics.json");
        let trace = tmp("obs.trace.jsonl");
        let run = fprun(&strs(&[
            &prot,
            "--secmon",
            &fpm,
            "--metrics",
            &metrics,
            "--trace",
            &trace,
        ]))
        .unwrap();
        assert_eq!(run.exit_code, 0, "{run:?}");

        let doc = std::fs::read_to_string(&metrics).unwrap();
        let value = json::parse(&doc).unwrap();
        assert_eq!(
            value.get("schema").and_then(json::Value::as_str),
            Some(flexprot_trace::METRICS_SCHEMA)
        );
        let counters = value.get("counters").expect("counters object");
        for key in [
            "icache_accesses",
            "instructions_committed",
            "guard_checks_passed",
            "sim_cycles",
        ] {
            assert!(
                counters.get(key).and_then(json::Value::as_u64).unwrap() > 0,
                "counter {key} missing or zero in {doc}"
            );
        }
        assert!(value.get("histograms").is_some());

        let body = std::fs::read_to_string(&trace).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            let event = json::parse(line).expect("every trace line is JSON");
            assert!(event.get("ev").is_some(), "{line}");
        }
        assert!(
            lines.last().unwrap().contains("\"ev\":\"run_end\""),
            "trace must end with the run_end reconciliation event"
        );
    }

    #[test]
    fn fprun_without_observability_flags_writes_nothing() {
        let src = write_sample_source("noobs.s");
        let fpx = tmp("noobs.fpx");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        let run = fprun(&strs(&[&fpx])).unwrap();
        assert_eq!(run.exit_code, 0, "{run:?}");
        assert_eq!(run.output, "5");
    }

    #[test]
    fn fprun_batch_runs_images_in_order_across_workers() {
        use flexprot_trace::json;

        let first = write_sample_source("batch1.s");
        let second = tmp("batch2.s");
        std::fs::write(
            &second,
            "main: li $a0, 7\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
        )
        .unwrap();
        let fpx1 = tmp("batch1.fpx");
        let fpx2 = tmp("batch2.fpx");
        fpasm(&strs(&[&first, "--o", &fpx1])).unwrap();
        fpasm(&strs(&[&second, "--o", &fpx2])).unwrap();

        let metrics = tmp("batch.metrics.json");
        let run = fprun(&strs(&[
            &fpx1,
            &fpx2,
            &fpx1,
            "--jobs",
            "2",
            "--stats",
            "--metrics",
            &metrics,
        ]))
        .unwrap();
        assert_eq!(run.exit_code, 0, "{run:?}");
        // Outputs and report lines keep the command-line order whatever
        // the worker interleaving.
        assert_eq!(run.output, "5\n7\n5");
        let lines: Vec<&str> = run.report.lines().collect();
        assert_eq!(lines.len(), 3, "{}", run.report);
        assert!(lines[0].starts_with(&fpx1), "{}", run.report);
        assert!(lines[1].starts_with(&fpx2), "{}", run.report);
        assert!(lines[2].starts_with(&fpx1), "{}", run.report);
        assert!(lines[0].contains("instrs"), "{}", run.report);

        // The aggregate metrics document covers all three runs.
        let doc = std::fs::read_to_string(&metrics).unwrap();
        let value = json::parse(&doc).unwrap();
        assert_eq!(
            value.get("schema").and_then(json::Value::as_str),
            Some(flexprot_trace::METRICS_SCHEMA)
        );
        let counters = value.get("counters").expect("counters object");
        assert_eq!(
            counters
                .get("exec_jobs_completed")
                .and_then(json::Value::as_u64),
            Some(3),
            "{doc}"
        );

        // A failing image surfaces its exit code without aborting the batch.
        let serial = fprun(&strs(&[&fpx1, &fpx2, "--jobs", "1"])).unwrap();
        assert_eq!(serial.output, "5\n7");
        assert_eq!(serial.exit_code, 0);

        // --trace is ambiguous across a batch and must be rejected.
        assert!(fprun(&strs(&[&fpx1, &fpx2, "--trace", &tmp("batch.trace")])).is_err());
    }

    #[test]
    fn bad_usage_is_reported() {
        assert!(fpasm(&[]).is_err());
        assert!(fpobjdump(&[]).is_err());
        assert!(fpprotect(&[]).is_err());
        assert!(fprun(&[]).is_err());
        assert!(fprun(&strs(&["/nonexistent.fpx"])).is_err());
        assert!(fplint(&[]).is_err());
        assert!(fplint(&strs(&["/nonexistent.fpx"])).is_err());
    }

    #[test]
    fn fplint_verdicts_follow_tampering() {
        let src = write_sample_source("lint.s");
        let fpx = tmp("lint.fpx");
        let prot = tmp("lint.prot.fpx");
        let fpm = tmp("lint.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
            "--encrypt",
            "program",
        ]))
        .unwrap();

        // Pipeline output verifies clean.
        let clean = fplint(&strs(&[&prot, "--secmon", &fpm])).unwrap();
        assert_eq!(clean.exit_code, 0, "{}", clean.report);
        assert!(clean.report.contains("0 error(s)"), "{}", clean.report);

        // A flipped text bit flips the verdict, with a stable lint ID.
        let mut image = Image::from_bytes(&std::fs::read(&prot).unwrap()).unwrap();
        image.text[1] ^= 1 << 3;
        let bad = tmp("lint.bad.fpx");
        std::fs::write(&bad, image.to_bytes()).unwrap();
        let dirty = fplint(&strs(&[&bad, "--secmon", &fpm])).unwrap();
        assert_eq!(dirty.exit_code, 1, "{}", dirty.report);
        assert!(dirty.report.contains("[FP1"), "{}", dirty.report);

        // CSV output carries the same findings machine-readably.
        let csv = fplint(&strs(&[&bad, "--secmon", &fpm, "--csv"])).unwrap();
        assert!(csv.report.starts_with("id,name,severity,addr,message"));
        assert_eq!(csv.exit_code, 1);

        // Allowing every fired lint flips the verdict back to clean
        // (FP703 is the abstract re-derivation of the tamper FP102
        // catches concretely).
        let relaxed = fplint(&strs(&[
            &bad,
            "--secmon",
            &fpm,
            "--allow",
            "FP101,FP102,FP301,FP703",
        ]))
        .unwrap();
        assert_eq!(relaxed.exit_code, 0, "{}", relaxed.report);
    }

    #[test]
    fn fplint_lints_and_policy_validation() {
        let table = fplint(&strs(&["--lints"])).unwrap();
        assert_eq!(table.exit_code, 0);
        assert!(table.report.contains("FP102"), "{}", table.report);
        assert!(
            table.report.contains("signature-mismatch"),
            "{}",
            table.report
        );
        // Every lint family is listed with its documented severity — the
        // guard-network (FP7xx) and translation-validation (FP8xx)
        // families included — and the severity column stays aligned.
        for line in [
            "FP703  error",
            "FP704  note",
            "FP801  error",
            "FP804  warning",
        ] {
            assert!(table.report.contains(line), "{line}:\n{}", table.report);
        }
        for l in table.report.lines() {
            // id (5) + 2 spaces + severity padded to 7 + 2 spaces = the
            // name column always starts at byte 16.
            assert_eq!(l.as_bytes()[15], b' ', "ragged: {l}");
            assert_ne!(l.as_bytes()[16], b' ', "ragged: {l}");
        }

        let src = write_sample_source("lintpol.s");
        let fpx = tmp("lintpol.fpx");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        let err = fplint(&strs(&[&fpx, "--deny", "FP999"])).unwrap_err();
        assert!(err.to_string().contains("unknown lint"), "{err}");

        // A bare image under the transparent config is clean, and denying
        // a note-level lint can make it fail.
        let ok = fplint(&strs(&[&fpx])).unwrap();
        assert_eq!(ok.exit_code, 0, "{}", ok.report);
    }

    #[test]
    fn fplint_formats_and_surface_map() {
        use flexprot_trace::json;

        let src = write_sample_source("lintfmt.s");
        let fpx = tmp("lintfmt.fpx");
        let prot = tmp("lintfmt.prot.fpx");
        let fpm = tmp("lintfmt.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
        ]))
        .unwrap();

        // --format json emits the stable flexprot-lint-v1 document.
        let lint = fplint(&strs(&[&prot, "--secmon", &fpm, "--format", "json"])).unwrap();
        let doc = json::parse(&lint.report).expect("lint report is JSON");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some("flexprot-lint-v1")
        );
        assert!(doc.get("stats").is_some(), "{}", lint.report);

        // --format csv matches the --csv shorthand.
        let long = fplint(&strs(&[&prot, "--secmon", &fpm, "--format", "csv"])).unwrap();
        let short = fplint(&strs(&[&prot, "--secmon", &fpm, "--csv"])).unwrap();
        assert_eq!(long, short);

        // --surface prints the tamper-surface map; every reachable word
        // is covered at density 1.0.
        let surface = fplint(&strs(&[&prot, "--secmon", &fpm, "--surface"])).unwrap();
        assert_eq!(surface.exit_code, 0, "{}", surface.report);
        let map = json::parse(&surface.report).expect("surface map is JSON");
        assert_eq!(
            map.get("schema").and_then(json::Value::as_str),
            Some("flexprot-surface-v1")
        );
        assert_eq!(
            map.get("surface_words").and_then(json::Value::as_u64),
            Some(0)
        );

        assert!(fplint(&strs(&[&prot, "--format", "yaml"])).is_err());
    }

    #[test]
    fn fplint_guardnet_emits_the_schema_and_exit_codes_hold() {
        use flexprot_trace::json;

        let src = write_sample_source("lintnet.s");
        let fpx = tmp("lintnet.fpx");
        let prot = tmp("lintnet.prot.fpx");
        let fpm = tmp("lintnet.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
        ]))
        .unwrap();

        // Exit code 0: clean image; --guardnet replaces the report with
        // the flexprot-guardnet-v1 document.
        let net = fplint(&strs(&[&prot, "--secmon", &fpm, "--guardnet"])).unwrap();
        assert_eq!(net.exit_code, 0, "{}", net.report);
        let doc = json::parse(&net.report).expect("guardnet report is JSON");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some("flexprot-guardnet-v1")
        );
        let guards = doc.get("guards").and_then(json::Value::as_u64).unwrap();
        assert!(guards > 0, "{}", net.report);
        assert_eq!(
            doc.get("proven").and_then(json::Value::as_u64),
            Some(guards),
            "every untampered constant proves: {}",
            net.report
        );
        assert!(doc.get("nodes").is_some(), "{}", net.report);
        assert!(doc.get("min_cut").is_some(), "{}", net.report);

        // Exit code 1: a tampered body word must flip the verdict, and
        // the guardnet document must carry the mismatch verdict. Flip a
        // word inside the first guard's hashed body (not a symbol word,
        // which would break guard form and take the FP101 path instead).
        let mut image = Image::from_bytes(&std::fs::read(&prot).unwrap()).unwrap();
        let config = SecMonConfig::from_bytes(&std::fs::read(&fpm).unwrap()).unwrap();
        let &site = config.sites.keys().next().unwrap();
        let idx = image.text_index_of(site).unwrap();
        image.text[idx.checked_sub(1).unwrap()] ^= 1 << 7;
        let bad = tmp("lintnet.bad.fpx");
        std::fs::write(&bad, image.to_bytes()).unwrap();
        let dirty = fplint(&strs(&[&bad, "--secmon", &fpm])).unwrap();
        assert_eq!(dirty.exit_code, 1, "{}", dirty.report);
        assert!(dirty.report.contains("FP703"), "{}", dirty.report);
        let dirty_net = fplint(&strs(&[&bad, "--secmon", &fpm, "--guardnet"])).unwrap();
        assert!(
            dirty_net.report.contains("mismatch"),
            "{}",
            dirty_net.report
        );

        // Exit code 2 is the CliError path: the binaries map every Err
        // to process exit 2, so usage and I/O failures must be Errs.
        assert!(fplint(&strs(&[])).is_err());
        assert!(fplint(&strs(&["/nonexistent.fpx"])).is_err());
        assert!(fplint(&strs(&[&prot, "--format", "yaml"])).is_err());
    }

    #[test]
    fn fpnetmap_grid_is_deterministic_and_reports_the_disconnection() {
        let serial = fpnetmap(&strs(&["--programs", "collatz,rle", "--jobs", "1"])).unwrap();
        assert_eq!(serial.exit_code, 0, "{}", serial.report);
        let lines: Vec<&str> = serial.report.lines().collect();
        assert_eq!(
            lines[0],
            "program,cell,guards,sound,edges,sccs,unchecked,acyclic,articulation,\
             min_cut,proven,mismatch,unproven,errors"
        );
        // 2 programs x 7 cells, plus the header.
        assert_eq!(lines.len(), 15, "{}", serial.report);
        for line in &lines[1..] {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 14, "{line}");
            // No mismatches and no errors on untampered builds.
            assert_eq!(cols[11], "0", "{line}");
            assert_eq!(cols[13], "0", "{line}");
            // The emitter's disjoint windows mean an edgeless digraph:
            // every guard cell reports zero edges and (with >= 2 guards)
            // an already-disconnected network (min_cut 0).
            if cols[1].starts_with("guards") {
                assert_eq!(cols[4], "0", "{line}");
                let sound: usize = cols[3].parse().unwrap();
                if sound >= 2 {
                    assert_eq!(cols[9], "0", "{line}");
                }
                // Every guard gets a verdict: proven or (conservatively,
                // when a store with an unknown address sits inside the
                // window) unproven — never a mismatch on a clean build.
                let proven: usize = cols[10].parse().unwrap();
                let unproven: usize = cols[12].parse().unwrap();
                let guards: usize = cols[2].parse().unwrap();
                assert_eq!(proven + unproven, guards, "{line}");
            }
        }

        let parallel = fpnetmap(&strs(&["--programs", "collatz,rle", "--jobs", "4"])).unwrap();
        assert_eq!(serial, parallel);

        assert!(fpnetmap(&strs(&["--programs", "bogus"])).is_err());
        assert!(fpnetmap(&strs(&["stray-positional"])).is_err());
    }

    #[test]
    fn csv_fields_with_commas_and_quotes_are_escaped() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_row(&["a".to_owned(), "b,c".to_owned()]), "a,\"b,c\"");
    }

    #[test]
    fn fplint_csv_format_follows_the_exit_code_contract() {
        let src = write_sample_source("lintcsv.s");
        let fpx = tmp("lintcsv.fpx");
        let prot = tmp("lintcsv.prot.fpx");
        let fpm = tmp("lintcsv.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
        ]))
        .unwrap();

        // Exit 0: a clean image under --format csv, not just human.
        let clean = fplint(&strs(&[&prot, "--secmon", &fpm, "--format", "csv"])).unwrap();
        assert_eq!(clean.exit_code, 0, "{}", clean.report);
        assert!(
            clean.report.starts_with("id,name,severity,addr,message"),
            "{}",
            clean.report
        );

        // Exit 1: tampering flips the CSV verdict exactly like the human
        // format.
        let mut image = Image::from_bytes(&std::fs::read(&prot).unwrap()).unwrap();
        image.text[0] ^= 1 << 22;
        let bad = tmp("lintcsv.bad.fpx");
        std::fs::write(&bad, image.to_bytes()).unwrap();
        let dirty = fplint(&strs(&[&bad, "--secmon", &fpm, "--format", "csv"])).unwrap();
        assert_eq!(dirty.exit_code, 1, "{}", dirty.report);

        // Exit 2 (CliError from the binary): usage and I/O errors are
        // Errs under every format.
        assert!(fplint(&strs(&["--format", "csv"])).is_err());
        assert!(fplint(&strs(&["/nonexistent.fpx", "--format", "csv"])).is_err());
    }

    #[test]
    fn fplint_taint_extends_the_json_stats() {
        use flexprot_trace::json;

        let src = write_sample_source("linttaint.s");
        let fpx = tmp("linttaint.fpx");
        let prot = tmp("linttaint.prot.fpx");
        let fpm = tmp("linttaint.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--encrypt",
            "program",
        ]))
        .unwrap();

        // Without --taint the stats advertise the analysis did not run.
        let plain = fplint(&strs(&[&prot, "--secmon", &fpm, "--format", "json"])).unwrap();
        assert!(plain.report.contains("\"taint\":null"), "{}", plain.report);

        // With --taint the flexprot-lint-v1 stats gain the counter block.
        let tainted = fplint(&strs(&[
            &prot, "--secmon", &fpm, "--taint", "--format", "json",
        ]))
        .unwrap();
        assert_eq!(tainted.exit_code, 0, "{}", tainted.report);
        let doc = json::parse(&tainted.report).expect("lint report is JSON");
        let taint = doc
            .get("stats")
            .and_then(|s| s.get("taint"))
            .expect("stats.taint object");
        for key in [
            "sources",
            "tainted_stores",
            "tainted_syscalls",
            "key_dependent",
            "unresolved_reads",
        ] {
            assert!(taint.get(key).is_some(), "{}", tainted.report);
        }
    }

    #[test]
    fn fpnetmap_writes_the_per_window_refusal_ledger() {
        let refusals = tmp("netmap.refusals.csv");
        let run = fpnetmap(&strs(&[
            "--programs",
            "collatz,rle",
            "--jobs",
            "2",
            "--refusals",
            &refusals,
        ]))
        .unwrap();
        assert_eq!(run.exit_code, 0, "{}", run.report);
        let ledger = std::fs::read_to_string(&refusals).unwrap();
        let lines: Vec<&str> = ledger.lines().collect();
        assert_eq!(lines[0], "program,cell,site,verdict,code");
        // Every non-proven window carries a stable snake_case code and a
        // concrete site address; clean builds never report a mismatch.
        for line in &lines[1..] {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 5, "{line}");
            assert!(cols[2].starts_with("0x"), "{line}");
            assert_eq!(cols[3], "unproven", "{line}");
            assert!(
                !cols[4].is_empty() && cols[4].chars().all(|c| c == '_' || c.is_ascii_lowercase()),
                "{line}"
            );
        }
        // The ledger row count is exactly the grid's unproven tally.
        let unproven: usize = run
            .report
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(12).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(lines.len() - 1, unproven, "{ledger}\n{}", run.report);
    }

    #[test]
    fn batch_drivers_reject_zero_jobs() {
        for err in [
            fpsurface(&strs(&["--jobs", "0"])).unwrap_err(),
            fpnetmap(&strs(&["--jobs", "0"])).unwrap_err(),
            fpsweep(&strs(&["--jobs", "0"])).unwrap_err(),
        ] {
            assert!(err.to_string().contains("--jobs"), "{err}");
        }
    }

    #[test]
    fn fpsurface_grid_is_deterministic_and_clean() {
        // A trimmed grid (one kernel, one workload) keeps the test fast;
        // the full six-program grid runs in CI against the checked-in
        // baseline.
        let serial = fpsurface(&strs(&["--programs", "collatz,rle", "--jobs", "1"])).unwrap();
        assert_eq!(serial.exit_code, 0, "{}", serial.report);
        let lines: Vec<&str> = serial.report.lines().collect();
        assert_eq!(
            lines[0],
            "program,cell,text_words,reachable,windows,covered,encrypted,surface,\
             errors,warnings,full_coverage"
        );
        // 2 programs x 7 cells, plus the header.
        assert_eq!(lines.len(), 15, "{}", serial.report);
        assert!(
            lines.iter().any(|l| l.starts_with("collatz,guards-1.0,")),
            "{}",
            serial.report
        );
        // Full-density cells prove full reachable coverage.
        for line in &lines[1..] {
            if line.contains(",guards-1.0,") || line.contains(",guards-enc,") {
                assert!(line.ends_with(",true"), "{line}");
            }
        }

        let parallel = fpsurface(&strs(&["--programs", "collatz,rle", "--jobs", "4"])).unwrap();
        assert_eq!(serial, parallel);

        assert!(fpsurface(&strs(&["--programs", "bogus"])).is_err());
        assert!(fpsurface(&strs(&["stray-positional"])).is_err());
    }

    #[test]
    fn fpequiv_grid_is_deterministic_and_proven() {
        // A trimmed grid (one kernel, one workload) keeps the test fast;
        // the full six-program grid runs in CI against the checked-in
        // baseline.
        let serial = fpequiv(&strs(&["--programs", "collatz,rle", "--jobs", "1"])).unwrap();
        assert_eq!(serial.exit_code, 0, "{}", serial.report);
        let lines: Vec<&str> = serial.report.lines().collect();
        assert_eq!(
            lines[0],
            "program,cell,verdict,witness,base_words,prot_words,guard_words,aligned,\
             windows_proven,windows_refused,refusal_codes,cipher_regions,cipher_words,\
             fp801,fp802,fp803,fp804,errors"
        );
        // 2 programs x 7 cells, plus the header.
        assert_eq!(lines.len(), 15, "{}", serial.report);
        for line in &lines[1..] {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 18, "{line}");
            // Untampered pipeline output is fully proven: no witnesses,
            // no refusals (so no refusal codes), no FP8xx findings.
            assert_eq!(cols[2], "proven", "{line}");
            assert_eq!(cols[3], "none", "{line}");
            assert_eq!(cols[9], "0", "{line}");
            assert_eq!(cols[10], "none", "{line}");
            assert_eq!(cols[17], "0", "{line}");
            // Guard cells insert words; alignment still covers every
            // baseline word.
            let base: usize = cols[4].parse().unwrap();
            let aligned: usize = cols[7].parse().unwrap();
            assert_eq!(base, aligned, "{line}");
            if cols[1].starts_with("guards") {
                assert!(cols[6].parse::<usize>().unwrap() > 0, "{line}");
            }
            if cols[1].starts_with("enc") || cols[1] == "guards-enc" {
                assert!(cols[12].parse::<usize>().unwrap() > 0, "{line}");
            }
        }

        let parallel = fpequiv(&strs(&["--programs", "collatz,rle", "--jobs", "4"])).unwrap();
        assert_eq!(serial, parallel);

        assert!(fpequiv(&strs(&["--programs", "bogus"])).is_err());
        assert!(fpequiv(&strs(&["stray-positional"])).is_err());
    }

    #[test]
    fn fplint_equiv_emits_the_schema_and_exit_codes_hold() {
        use flexprot_trace::json;

        let src = write_sample_source("equiv.s");
        let fpx = tmp("equiv.fpx");
        let prot = tmp("equiv.prot.fpx");
        let fpm = tmp("equiv.fpm");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
            "--encrypt",
            "program",
        ]))
        .unwrap();

        // Exit 0: the protected image is proven equivalent to its
        // baseline, in the stable flexprot-equiv-v1 document.
        let clean = fplint(&strs(&[&prot, "--secmon", &fpm, "--equiv", &fpx])).unwrap();
        assert_eq!(clean.exit_code, 0, "{}", clean.report);
        let doc = json::parse(&clean.report).expect("equiv report is JSON");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some("flexprot-equiv-v1")
        );
        assert_eq!(
            doc.get("verdict").and_then(json::Value::as_str),
            Some("proven")
        );

        // Exit 1: a flipped ciphertext bit breaks the cipher round-trip,
        // with a witness address in the document.
        let mut image = Image::from_bytes(&std::fs::read(&prot).unwrap()).unwrap();
        image.text[1] ^= 1 << 3;
        let bad = tmp("equiv.bad.fpx");
        std::fs::write(&bad, image.to_bytes()).unwrap();
        let dirty = fplint(&strs(&[&bad, "--secmon", &fpm, "--equiv", &fpx])).unwrap();
        assert_eq!(dirty.exit_code, 1, "{}", dirty.report);
        let doc = json::parse(&dirty.report).expect("equiv report is JSON");
        assert_eq!(
            doc.get("verdict").and_then(json::Value::as_str),
            Some("inequivalent")
        );
        assert!(doc.get("witness").is_some(), "{}", dirty.report);
        assert!(dirty.report.contains("FP803"), "{}", dirty.report);

        // Exit 2 (CliError from the binary): unreadable baseline.
        assert!(fplint(&strs(&[
            &prot,
            "--secmon",
            &fpm,
            "--equiv",
            "/nonexistent.fpx"
        ]))
        .is_err());
    }

    #[test]
    fn bad_options_are_reported() {
        let src = write_sample_source("badopt.s");
        let fpx = tmp("badopt.fpx");
        fpasm(&strs(&[&src, "--o", &fpx])).unwrap();
        assert!(fpprotect(&strs(&[&fpx, "--density", "abc"])).is_err());
        assert!(fpprotect(&strs(&[&fpx, "--density", "0.5", "--placement", "bogus"])).is_err());
        assert!(fpprotect(&strs(&[&fpx, "--encrypt", "bogus"])).is_err());
        assert!(fprun(&strs(&[&fpx, "--icache", "999"])).is_err());
    }
}

/// `fpcc <input.c> [-o|--o <output.fpx>] [--emit-asm]` — compile MiniC.
///
/// With `--emit-asm` the generated assembly is written next to the image
/// (same stem, `.s` extension).
///
/// # Errors
///
/// Reports I/O and compilation failures.
pub fn fpcc(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse(raw_args, &["o"])?;
    let [input] = args.positional.as_slice() else {
        return Err(CliError(
            "usage: fpcc <input.c> [-o|--o <output.fpx>] [--emit-asm]".to_owned(),
        ));
    };
    let source = String::from_utf8(read(input)?)
        .map_err(|_| CliError(format!("{input}: not valid UTF-8")))?;
    let asm = flexprot_cc::compile(&source).map_err(|e| CliError(format!("{input}: {e}")))?;
    let image =
        flexprot_asm::assemble(&asm).map_err(|e| CliError(format!("{input}: internal: {e}")))?;
    let stem = input.trim_end_matches(".c");
    let output = args
        .value("o")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{stem}.fpx"));
    write(&output, &image.to_bytes())?;
    let mut message = format!(
        "compiled {input}: {} text words, {} data bytes -> {output}",
        image.text.len(),
        image.data.len()
    );
    if args.has("emit-asm") {
        let asm_path = format!("{stem}.s");
        write(&asm_path, asm.as_bytes())?;
        message.push_str(&format!("; assembly -> {asm_path}"));
    }
    Ok(message)
}

/// `fpsweep [--workloads a,b,..] [--densities 0.25,1.0,..] [--encrypt]
/// [--jobs N] [--csv <out.csv>] [--metrics <out.json>]` — run a guard
/// density sweep over built-in workloads on the batched execution engine.
///
/// Each (workload, density) cell protects the kernel with uniform
/// profile-guided guards at that density (plus whole-program encryption
/// under `--encrypt`), runs it, and reports the cycle overhead against the
/// cached unprotected baseline. Cells fan out over `--jobs` workers;
/// compiled images, baselines and protected binaries are shared through
/// the engine's artifact cache, and the rendered rows are identical
/// whatever the worker count.
///
/// # Errors
///
/// Reports unknown workloads, malformed densities and I/O failures.
pub fn fpsweep(raw_args: &[String]) -> Result<String, CliError> {
    let mut valued = vec!["workloads", "densities"];
    valued.extend(BatchOpts::VALUED);
    let args = parse(raw_args, &valued)?;
    if !args.positional.is_empty() {
        return Err(CliError(
            "usage: fpsweep [--workloads a,b,..] [--densities 0.25,1.0,..] \
             [--encrypt] [--jobs N] [--csv <out.csv>] [--metrics <out.json>]"
                .to_owned(),
        ));
    }
    let mut workloads = Vec::new();
    for name in args
        .value("workloads")
        .unwrap_or("rle,qsort,dijkstra")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        workloads.push(flexprot_workloads::by_name(name).ok_or_else(|| {
            let known: Vec<&str> = flexprot_workloads::all().iter().map(|w| w.name).collect();
            CliError(format!(
                "unknown workload `{name}`; known: {}",
                known.join(", ")
            ))
        })?);
    }
    let mut densities = Vec::new();
    for token in args
        .value("densities")
        .unwrap_or("0.25,1.0")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        let density: f64 = token
            .parse()
            .map_err(|_| CliError(format!("invalid density `{token}`")))?;
        if !(density > 0.0 && density <= 1.0) {
            return Err(CliError(format!("density `{token}` out of range (0, 1]")));
        }
        densities.push(density);
    }
    let encrypt = args.has("encrypt");

    let mut spec = SweepSpec::new().workloads(workloads).profiled();
    for &density in &densities {
        let mut config = ProtectionConfig::new().with_guards(GuardConfig {
            key: 0x0BAD_C0DE_CAFE_F00D,
            seed: 7,
            placement: Placement::Uniform,
            selection: Selection::Density(density),
            enforce_spacing: true,
        });
        let mut tag = format!("guards@{density}");
        if encrypt {
            config = config.with_encryption(EncryptConfig::whole_program(0x5EED_5EED_5EED_5EED));
            tag.push_str("+enc");
        }
        spec = spec.config(tag, config);
    }

    let batch = BatchOpts::from_args(&args)?;
    let engine = Engine::new(batch.workers);
    let jobs = spec.jobs();
    let cells = engine.run_jobs(&jobs, |ctx, job| ctx.run_cell(job));

    let mut rows: Vec<Vec<String>> = vec![[
        "workload",
        "config",
        "base-cycles",
        "cycles",
        "+%",
        "guards",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect()];
    for (job, cell) in jobs.iter().zip(&cells) {
        rows.push(vec![
            job.workload.name.to_owned(),
            job.config_tag.clone(),
            cell.baseline.run.stats.cycles.to_string(),
            cell.run.stats.cycles.to_string(),
            format!("{:.2}", cell.overhead_pct()),
            cell.protected.report.guards_inserted.to_string(),
        ]);
    }

    if batch.csv.is_some() {
        let mut csv = String::new();
        for row in &rows {
            csv.push_str(&csv_row(row));
            csv.push('\n');
        }
        batch.write_csv(&csv)?;
    }
    batch.write_metrics(&engine)?;

    let mut widths = vec![0usize; rows[0].len()];
    for row in &rows {
        for (width, cell) in widths.iter_mut().zip(row) {
            *width = (*width).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        for (i, (cell, width)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}"));
        }
        out.push('\n');
    }
    let stats = engine.cache().stats();
    out.push_str(&format!(
        "({} cells, {} workers, cache {} hits / {} misses)\n",
        jobs.len(),
        engine.workers(),
        stats.hits,
        stats.misses
    ));
    Ok(out)
}

#[cfg(test)]
mod fpsweep_tests {
    use super::*;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn sweep_reports_overhead_rows_and_cache_sharing() {
        let report = fpsweep(&strs(&[
            "--workloads",
            "rle",
            "--densities",
            "0.25,1.0",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert!(report.contains("workload"), "{report}");
        assert!(report.contains("guards@0.25"), "{report}");
        assert!(report.contains("guards@1"), "{report}");
        // Two cells share one compiled image and one baseline.
        assert!(report.contains("hits"), "{report}");
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let serial = fpsweep(&strs(&["--workloads", "rle", "--jobs", "1"])).unwrap();
        let parallel = fpsweep(&strs(&["--workloads", "rle", "--jobs", "4"])).unwrap();
        // The trailing summary names the worker count; the table itself
        // must match byte for byte.
        let table = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('('))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&serial), table(&parallel));
    }

    #[test]
    fn sweep_writes_csv_and_metrics() {
        let dir = std::env::temp_dir().join("flexprot-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("sweep.csv").to_string_lossy().into_owned();
        let metrics_path = dir
            .join("sweep.metrics.json")
            .to_string_lossy()
            .into_owned();
        fpsweep(&strs(&[
            "--workloads",
            "rle",
            "--densities",
            "1.0",
            "--csv",
            &csv_path,
            "--metrics",
            &metrics_path,
        ]))
        .unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("workload,config,base-cycles"), "{csv}");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(
            metrics.contains(flexprot_trace::METRICS_SCHEMA),
            "{metrics}"
        );
        assert!(metrics.contains("exec_jobs_completed"), "{metrics}");
    }

    #[test]
    fn sweep_rejects_bad_input() {
        assert!(fpsweep(&strs(&["--workloads", "nonesuch"])).is_err());
        assert!(fpsweep(&strs(&["--densities", "2.0"])).is_err());
        assert!(fpsweep(&strs(&["--densities", "abc"])).is_err());
        assert!(fpsweep(&strs(&["stray-positional"])).is_err());
    }
}

#[cfg(test)]
mod fpcc_tests {
    use super::*;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("flexprot-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn compile_protect_run_pipeline() {
        let c_path = tmp("prog.c");
        std::fs::write(
            &c_path,
            "int main() { int s = 0; for (int i = 1; i <= 10; i = i + 1) { s = s + i; } print(s); return 0; }",
        )
        .unwrap();
        let fpx = tmp("prog.fpx");
        let msg = fpcc(&strs(&[&c_path, "--o", &fpx, "--emit-asm"])).unwrap();
        assert!(msg.contains("assembly ->"), "{msg}");

        let prot = tmp("prog.prot.fpx");
        let fpm = tmp("prog.fpm");
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "0.5",
            "--encrypt",
            "block",
        ]))
        .unwrap();
        let run = fprun(&strs(&[&prot, "--secmon", &fpm])).unwrap();
        assert_eq!(run.exit_code, 0, "{run:?}");
        assert_eq!(run.output, "55");
    }

    #[test]
    fn profile_flag_enables_cold_placement() {
        let c_path = tmp("prof.c");
        std::fs::write(
            &c_path,
            "int main() { int s = 0; for (int i = 0; i < 200; i += 1) { s += i; } print(s); return 0; }",
        )
        .unwrap();
        let fpx = tmp("prof.fpx");
        fpcc(&strs(&[&c_path, "--o", &fpx])).unwrap();
        let prot = tmp("prof.prot.fpx");
        let fpm = tmp("prof.fpm");
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "0.3",
            "--placement",
            "coldest",
            "--profile",
            "--no-spacing",
        ]))
        .unwrap();
        let run = fprun(&strs(&[&prot, "--secmon", &fpm])).unwrap();
        assert_eq!(run.exit_code, 0, "{run:?}");
        assert_eq!(run.output, "19900");
    }

    #[test]
    fn watermark_flag_embeds_payload() {
        let c_path = tmp("wm.c");
        std::fs::write(&c_path, "int main() { print(1); return 0; }").unwrap();
        let fpx = tmp("wm.fpx");
        fpcc(&strs(&[&c_path, "--o", &fpx])).unwrap();
        let prot = tmp("wm.prot.fpx");
        let fpm = tmp("wm.fpm");
        fpprotect(&strs(&[
            &fpx,
            "--o",
            &prot,
            "--secmon",
            &fpm,
            "--density",
            "1.0",
            "--watermark",
            "K9",
        ]))
        .unwrap();
        let image = Image::from_bytes(&std::fs::read(&prot).unwrap()).unwrap();
        let config =
            flexprot_secmon::SecMonConfig::from_bytes(&std::fs::read(&fpm).unwrap()).unwrap();
        let protected = flexprot_core::Protected {
            image,
            secmon: config,
            report: Default::default(),
        };
        assert_eq!(protected.extract_watermark(2).as_deref(), Some(&b"K9"[..]));
        let run = fprun(&strs(&[&prot, "--secmon", &fpm])).unwrap();
        assert_eq!(run.exit_code, 0);
        assert_eq!(run.output, "1");
    }

    #[test]
    fn compile_errors_are_surfaced() {
        let c_path = tmp("bad.c");
        std::fs::write(&c_path, "int main() { return x; }").unwrap();
        let err = fpcc(&strs(&[&c_path])).unwrap_err();
        assert!(err.to_string().contains("unknown variable"), "{err}");
    }
}
