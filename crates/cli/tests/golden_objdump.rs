//! Golden-file snapshot tests for `fpobjdump`: the dump of two workloads,
//! before and after protection, is compared byte-for-byte against checked-in
//! snapshots. Absolute temp paths are normalized out first so the snapshots
//! are machine-independent.
//!
//! Regenerate after an intentional format or toolchain change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p flexprot-cli --test golden_objdump
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use flexprot_cli::{fpobjdump, fpprotect};

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("flexprot-golden-tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Replaces the run's absolute artifact paths with stable placeholders.
fn normalize(dump: &str, image_path: &str, secmon_path: &str) -> String {
    let mut out = dump.replace(image_path, "<image.fpx>");
    if !secmon_path.is_empty() {
        out = out.replace(secmon_path, "<secmon.fpm>");
    }
    out
}

/// Compares (or, under `UPDATE_GOLDEN=1`, rewrites) one snapshot.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "fpobjdump output drifted from {}; if intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Dumps one workload pre- and post-protection and checks both snapshots.
fn check_workload(name: &str) {
    let workload = flexprot_workloads::by_name(name).expect("kernel");
    let image_path = tmp(&format!("{name}.fpx"));
    fs::write(&image_path, workload.image().to_bytes()).unwrap();

    let pre = fpobjdump(std::slice::from_ref(&image_path)).unwrap();
    assert_golden(
        &format!("{name}.pre.txt"),
        &normalize(&pre, &image_path, ""),
    );

    // Deterministic protection: fixed default keys, fixed seed, mixed
    // guard + function-granular encryption so the dump shows guard sites,
    // regions and ciphertext.
    let prot_path = tmp(&format!("{name}.prot.fpx"));
    let secmon_path = tmp(&format!("{name}.fpm"));
    fpprotect(&[
        image_path.clone(),
        "--o".into(),
        prot_path.clone(),
        "--secmon".into(),
        secmon_path.clone(),
        "--density".into(),
        "0.5".into(),
        "--seed".into(),
        "1".into(),
        "--encrypt".into(),
        "function".into(),
    ])
    .unwrap();
    let post = fpobjdump(&[prot_path.clone(), "--secmon".into(), secmon_path.clone()]).unwrap();
    assert_golden(
        &format!("{name}.post.txt"),
        &normalize(&post, &prot_path, &secmon_path),
    );
}

#[test]
fn rle_objdump_matches_golden() {
    check_workload("rle");
}

#[test]
fn bitcount_objdump_matches_golden() {
    check_workload("bitcount");
}

/// The snapshots themselves must show the protection artifacts, so a
/// regeneration that silently produced an empty or unprotected dump fails.
#[test]
fn golden_snapshots_contain_protection_artifacts() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // files may be mid-rewrite in this run
    }
    for name in ["rle", "bitcount"] {
        let pre = fs::read_to_string(golden_path(&format!("{name}.pre.txt"))).unwrap();
        let post = fs::read_to_string(golden_path(&format!("{name}.post.txt"))).unwrap();
        assert!(pre.contains("SYMBOLS") && pre.contains("DISASSEMBLY"));
        assert!(pre.contains("<image.fpx>") && !pre.contains("/tmp"));
        assert!(post.contains("MONITOR CONFIG (<secmon.fpm>)"), "{name}");
        assert!(post.contains("guard sites"), "{name}");
        assert_ne!(pre, post, "{name}: protection must change the dump");
    }
}
