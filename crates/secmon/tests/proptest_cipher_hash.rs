//! Property tests for the cipher, region table and window hash.

use flexprot_secmon::{keystream, EncRegion, RegionTable, WindowHasher};
use proptest::prelude::*;

proptest! {
    /// XOR keystream application is involutive at any address/key.
    #[test]
    fn apply_is_involutive(key in any::<u64>(), word in any::<u32>(), addr_words in 0u32..(1 << 24)) {
        let addr = addr_words * 4;
        let table = RegionTable::new(vec![EncRegion { start: 0, end: u32::MAX & !3, key }]);
        prop_assert_eq!(table.apply(addr, table.apply(addr, word)), word);
    }

    /// Keystream is a pure function of (key, addr).
    #[test]
    fn keystream_deterministic(key in any::<u64>(), addr in any::<u32>()) {
        prop_assert_eq!(keystream(key, addr), keystream(key, addr));
    }

    /// Region lookup agrees with naive linear search.
    #[test]
    fn lookup_matches_linear_scan(
        starts in prop::collection::btree_set(0u32..1000, 1..8),
        probe in 0u32..4200,
    ) {
        // Build disjoint 16-byte regions from sorted starts spaced 4x apart.
        let regions: Vec<EncRegion> = starts
            .iter()
            .enumerate()
            .map(|(i, &s)| EncRegion {
                start: (s + i as u32 * 1000) * 4,
                end: (s + i as u32 * 1000) * 4 + 16,
                key: i as u64,
            })
            .collect();
        let table = RegionTable::new(regions.clone());
        let probe = probe * 4;
        let linear = regions.iter().find(|r| r.contains(probe));
        prop_assert_eq!(table.lookup(probe), linear);
    }

    /// Equal windows hash equal; any single word mutation changes the
    /// digest (32-bit collision probability is negligible at this scale).
    #[test]
    fn hash_detects_mutation(
        key in any::<u64>(),
        words in prop::collection::vec(any::<u32>(), 1..32),
        index in any::<prop::sample::Index>(),
        flip in 1u32..=u32::MAX,
    ) {
        let base = WindowHasher::hash_window(key, 0x0040_0000, &words);
        prop_assert_eq!(WindowHasher::hash_window(key, 0x0040_0000, &words), base);
        let mut mutated = words.clone();
        let i = index.index(mutated.len());
        mutated[i] ^= flip;
        prop_assert_ne!(WindowHasher::hash_window(key, 0x0040_0000, &mutated), base);
    }

    /// Moving a window without re-signing changes the digest.
    #[test]
    fn hash_is_position_binding(
        key in any::<u64>(),
        words in prop::collection::vec(any::<u32>(), 1..16),
        delta_words in 1u32..1024,
    ) {
        let a = WindowHasher::hash_window(key, 0x0040_0000, &words);
        let b = WindowHasher::hash_window(key, 0x0040_0000 + delta_words * 4, &words);
        prop_assert_ne!(a, b);
    }

    /// Different keys give different keystreams somewhere in any small
    /// address neighbourhood (key recovery cannot be bypassed by guessing
    /// a related key).
    #[test]
    fn distinct_keys_diverge(key in any::<u64>(), tweak in 1u64..=u64::MAX) {
        let other = key ^ tweak;
        let diverges = (0..16u32).any(|i| {
            keystream(key, 0x0040_0000 + 4 * i) != keystream(other, 0x0040_0000 + 4 * i)
        });
        prop_assert!(diverges);
    }
}
