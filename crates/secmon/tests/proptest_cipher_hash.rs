//! Property tests for the cipher, region table and window hash, driven by
//! the in-repo deterministic PRNG.

use flexprot_isa::Rng64;
use flexprot_secmon::{keystream, EncRegion, RegionTable, WindowHasher};

/// XOR keystream application is involutive at any address/key.
#[test]
fn apply_is_involutive() {
    let mut rng = Rng64::new(0x5EC0_0001);
    for _ in 0..1000 {
        let key = rng.next_u64();
        let word = rng.next_u32();
        let addr = rng.below(1 << 24) as u32 * 4;
        let table = RegionTable::new(vec![EncRegion {
            start: 0,
            end: !3,
            key,
        }]);
        assert_eq!(table.apply(addr, table.apply(addr, word)), word);
    }
}

/// Keystream is a pure function of (key, addr).
#[test]
fn keystream_deterministic() {
    let mut rng = Rng64::new(0x5EC0_0002);
    for _ in 0..1000 {
        let key = rng.next_u64();
        let addr = rng.next_u32();
        assert_eq!(keystream(key, addr), keystream(key, addr));
    }
}

/// Region lookup agrees with naive linear search.
#[test]
fn lookup_matches_linear_scan() {
    let mut rng = Rng64::new(0x5EC0_0003);
    for _ in 0..500 {
        let count = rng.range_inclusive(1, 7) as usize;
        let starts: std::collections::BTreeSet<u32> =
            (0..count).map(|_| rng.below(1000) as u32).collect();
        // Build disjoint 16-byte regions from sorted starts spaced 4x apart.
        let regions: Vec<EncRegion> = starts
            .iter()
            .enumerate()
            .map(|(i, &s)| EncRegion {
                start: (s + i as u32 * 1000) * 4,
                end: (s + i as u32 * 1000) * 4 + 16,
                key: i as u64,
            })
            .collect();
        let table = RegionTable::new(regions.clone());
        let probe = rng.below(4200) as u32 * 4;
        let linear = regions.iter().find(|r| r.contains(probe));
        assert_eq!(table.lookup(probe), linear);
    }
}

/// Equal windows hash equal; any single word mutation changes the
/// digest (32-bit collision probability is negligible at this scale).
#[test]
fn hash_detects_mutation() {
    let mut rng = Rng64::new(0x5EC0_0004);
    for _ in 0..1000 {
        let key = rng.next_u64();
        let len = rng.range_inclusive(1, 31) as usize;
        let words: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        let base = WindowHasher::hash_window(key, 0x0040_0000, &words);
        assert_eq!(WindowHasher::hash_window(key, 0x0040_0000, &words), base);
        let mut mutated = words.clone();
        let i = rng.index(mutated.len());
        let flip = loop {
            let f = rng.next_u32();
            if f != 0 {
                break f;
            }
        };
        mutated[i] ^= flip;
        assert_ne!(WindowHasher::hash_window(key, 0x0040_0000, &mutated), base);
    }
}

/// Moving a window without re-signing changes the digest.
#[test]
fn hash_is_position_binding() {
    let mut rng = Rng64::new(0x5EC0_0005);
    for _ in 0..1000 {
        let key = rng.next_u64();
        let len = rng.range_inclusive(1, 15) as usize;
        let words: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        let delta_words = rng.range_inclusive(1, 1023) as u32;
        let a = WindowHasher::hash_window(key, 0x0040_0000, &words);
        let b = WindowHasher::hash_window(key, 0x0040_0000 + delta_words * 4, &words);
        assert_ne!(a, b);
    }
}

/// Different keys give different keystreams somewhere in any small
/// address neighbourhood (key recovery cannot be bypassed by guessing
/// a related key).
#[test]
fn distinct_keys_diverge() {
    let mut rng = Rng64::new(0x5EC0_0006);
    for _ in 0..1000 {
        let key = rng.next_u64();
        let tweak = loop {
            let t = rng.next_u64();
            if t != 0 {
                break t;
            }
        };
        let other = key ^ tweak;
        let diverges = (0..16u32)
            .any(|i| keystream(key, 0x0040_0000 + 4 * i) != keystream(other, 0x0040_0000 + 4 * i));
        assert!(diverges, "key {key:#x} tweak {tweak:#x}");
    }
}
