//! Latency model of the FPGA decryption unit.

/// How long the decryption hardware takes to process a cache-line fill.
///
/// Two organisations are modelled, following the design-space axis of the
/// evaluation:
///
/// * **serial** — one word enters the unit only after the previous word
///   left: `startup + cycles_per_word × words`;
/// * **pipelined** — the unit keeps pace with the memory burst and only its
///   fill-through latency is exposed: `startup + cycles_per_word`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecryptModel {
    /// Cycles to process one word.
    pub cycles_per_word: u64,
    /// Fixed per-fill startup cost (key lookup, control).
    pub startup: u64,
    /// Whether word processing overlaps the memory burst.
    pub pipelined: bool,
}

impl DecryptModel {
    /// A zero-cost model (decryption disabled or free).
    pub fn free() -> DecryptModel {
        DecryptModel {
            cycles_per_word: 0,
            startup: 0,
            pipelined: true,
        }
    }

    /// The baseline of the experiments: 2 cycles/word, 4-cycle startup,
    /// pipelined.
    pub fn baseline() -> DecryptModel {
        DecryptModel {
            cycles_per_word: 2,
            startup: 4,
            pipelined: true,
        }
    }

    /// Extra cycles for a fill in which `encrypted_words` of the line need
    /// decryption. Free when nothing in the line is encrypted.
    pub fn fill_penalty(&self, encrypted_words: u32) -> u64 {
        if encrypted_words == 0 {
            return 0;
        }
        if self.pipelined {
            self.startup + self.cycles_per_word
        } else {
            self.startup + self.cycles_per_word * u64::from(encrypted_words)
        }
    }
}

impl Default for DecryptModel {
    fn default() -> DecryptModel {
        DecryptModel::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_costs_nothing() {
        assert_eq!(DecryptModel::free().fill_penalty(8), 0);
    }

    #[test]
    fn unencrypted_line_costs_nothing() {
        assert_eq!(DecryptModel::baseline().fill_penalty(0), 0);
        let serial = DecryptModel {
            cycles_per_word: 3,
            startup: 10,
            pipelined: false,
        };
        assert_eq!(serial.fill_penalty(0), 0);
    }

    #[test]
    fn serial_scales_with_words() {
        let m = DecryptModel {
            cycles_per_word: 3,
            startup: 2,
            pipelined: false,
        };
        assert_eq!(m.fill_penalty(1), 5);
        assert_eq!(m.fill_penalty(8), 26);
    }

    #[test]
    fn pipelined_is_flat() {
        let m = DecryptModel {
            cycles_per_word: 3,
            startup: 2,
            pipelined: true,
        };
        assert_eq!(m.fill_penalty(1), 5);
        assert_eq!(m.fill_penalty(8), 5);
    }
}
