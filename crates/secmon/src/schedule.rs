//! [`SecMonConfig`]: what the toolchain provisions into the hardware.
//!
//! The configuration is the *hardware half* of the protection contract.
//! The software half — guard instructions and encrypted text — travels in
//! the binary itself. Keeping the signature values in the binary (rather
//! than in the hardware) is the key flexibility property: re-protecting a
//! program does not require re-synthesising the monitor, only reloading
//! this small table.

use std::collections::{BTreeMap, BTreeSet};

use crate::cipher::RegionTable;
use crate::decrypt::DecryptModel;
use crate::guard::SIG_SYMBOLS;

/// One guard site: the address of the first guard instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardSite {
    /// Number of guard instructions at the site.
    pub symbols: u32,
    /// Post-guard words also covered by the signature: after collecting the
    /// symbols, the monitor keeps hashing this many committed words (the
    /// block terminator) before comparing. This closes the classic
    /// branch-patch hole — the conditional branch itself is signed.
    pub tail: u32,
}

impl Default for GuardSite {
    fn default() -> GuardSite {
        GuardSite {
            symbols: SIG_SYMBOLS,
            tail: 0,
        }
    }
}

/// An address range `[start, end)` whose executed instructions count toward
/// the guard-spacing bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectedRange {
    /// First protected byte address.
    pub start: u32,
    /// One past the last protected byte address.
    pub end: u32,
}

impl ProtectedRange {
    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }
}

/// Full secure-monitor configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SecMonConfig {
    /// Key for the window hash.
    pub guard_key: u64,
    /// Guard sites: first-guard-word address → site descriptor.
    pub sites: BTreeMap<u32, GuardSite>,
    /// Window start addresses (guarded block leaders). The hash resets when
    /// one commits, in addition to resetting on every pc discontinuity.
    pub window_starts: BTreeSet<u32>,
    /// Ranges whose executed instructions count toward the spacing bound.
    pub protected: Vec<ProtectedRange>,
    /// Maximum instructions executed inside protected ranges between guard
    /// checks; `None` disables spacing enforcement.
    pub spacing_bound: Option<u64>,
    /// Protected function entries. A pc discontinuity landing on one resets
    /// the spacing counter, so calls (including recursion) into protected
    /// functions do not accumulate across frames. An attacker cannot abuse
    /// this without inserting semantically visible control transfers.
    pub reset_points: BTreeSet<u32>,
    /// Encrypted text regions and their keys.
    pub regions: RegionTable,
    /// Decryption-unit latency model.
    pub decrypt: DecryptModel,
    /// Abort simulation on the first tamper event (true, the default) or
    /// log events and continue (for detection-latency studies).
    pub halt_on_tamper: bool,
}

impl SecMonConfig {
    /// A configuration with no guards and no encryption — a transparent
    /// monitor useful as an experimental control.
    pub fn transparent() -> SecMonConfig {
        SecMonConfig {
            halt_on_tamper: true,
            decrypt: DecryptModel::free(),
            ..SecMonConfig::default()
        }
    }

    /// Whether `addr` is inside a protected (spacing-counted) range.
    pub fn in_protected(&self, addr: u32) -> bool {
        self.protected.iter().any(|r| r.contains(addr))
    }

    /// Total number of guard sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The hash-window start for a guard site: the nearest registered
    /// window start at or before the site (equal when the block body is
    /// empty). This is the rule the hardware applies when it decides
    /// where a rolling window began; static analyses must use the same
    /// one.
    pub fn window_of(&self, site_addr: u32) -> Option<u32> {
        self.window_starts.range(..=site_addr).next_back().copied()
    }

    /// The full hashed interval of a guard site, as a half-open byte
    /// address range `[start, end)`: the window body from
    /// [`window_of`](Self::window_of) through the guard symbols and the
    /// signed tail. `None` when `site_addr` is not a registered site or
    /// no window start precedes it.
    pub fn window_interval(&self, site_addr: u32) -> Option<(u32, u32)> {
        let site = self.sites.get(&site_addr)?;
        let start = self.window_of(site_addr)?;
        let end = site_addr + 4 * (site.symbols + site.tail);
        Some((start, end))
    }

    /// Every guard site with a resolvable window, as
    /// `(window_start, site_addr, site)` triples in address order — the
    /// guard-window metadata static analyzers consume.
    pub fn guard_windows(&self) -> impl Iterator<Item = (u32, u32, &GuardSite)> {
        self.sites
            .iter()
            .filter_map(|(&addr, site)| self.window_of(addr).map(|w| (w, addr, site)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_config_is_inert() {
        let c = SecMonConfig::transparent();
        assert_eq!(c.site_count(), 0);
        assert!(c.regions.is_empty());
        assert!(!c.in_protected(0x0040_0000));
        assert!(c.halt_on_tamper);
    }

    #[test]
    fn protected_range_membership() {
        let c = SecMonConfig {
            protected: vec![ProtectedRange {
                start: 0x100,
                end: 0x200,
            }],
            ..SecMonConfig::transparent()
        };
        assert!(c.in_protected(0x100));
        assert!(c.in_protected(0x1FF));
        assert!(!c.in_protected(0x200));
        assert!(!c.in_protected(0xFF));
    }

    #[test]
    fn default_site_uses_sig_symbols() {
        assert_eq!(GuardSite::default().symbols, SIG_SYMBOLS);
    }

    #[test]
    fn window_of_picks_the_nearest_start_at_or_before_the_site() {
        let mut c = SecMonConfig::transparent();
        c.window_starts.extend([0x100, 0x140, 0x200]);
        c.sites.insert(0x150, GuardSite::default());
        c.sites.insert(0x140, GuardSite::default());
        assert_eq!(c.window_of(0x150), Some(0x140));
        assert_eq!(c.window_of(0x140), Some(0x140), "empty body: start == site");
        assert_eq!(c.window_of(0x0FF), None);
        let triples: Vec<(u32, u32)> = c.guard_windows().map(|(w, s, _)| (w, s)).collect();
        assert_eq!(triples, vec![(0x140, 0x140), (0x140, 0x150)]);
    }

    #[test]
    fn window_interval_spans_body_symbols_and_tail() {
        let mut c = SecMonConfig::transparent();
        c.window_starts.extend([0x100, 0x200]);
        c.sites.insert(
            0x120,
            GuardSite {
                symbols: SIG_SYMBOLS,
                tail: 2,
            },
        );
        // body [0x100, 0x120), 4 symbols + 2 tail words = 24 bytes.
        assert_eq!(c.window_interval(0x120), Some((0x100, 0x138)));
        assert_eq!(c.window_interval(0x200), None, "not a site");
        c.sites.insert(0x080, GuardSite::default());
        assert_eq!(c.window_interval(0x080), None, "no window start before it");
    }
}
