//! Per-address keystream cipher and the encrypted-region table.
//!
//! Text words are encrypted as `cipher = plain ^ keystream(key, addr)`.
//! Because the keystream depends only on the key and the word address, the
//! hardware can decrypt cache-line fills in a single pass with no chaining
//! state — the property that makes fetch-path decryption pipelineable.
//!
//! The underlying PRF is SplitMix64, which is emphatically **not** a
//! cryptographic cipher; it stands in for the block cipher of real hardware
//! (the experiments study *cost*, not cryptanalysis — see DESIGN.md).

use std::fmt;

/// SplitMix64 finaliser, used as the keyed PRF.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 32-bit keystream word for `addr` under `key`.
///
/// # Example
///
/// ```
/// use flexprot_secmon::keystream;
/// let k = keystream(42, 0x0040_0000);
/// assert_eq!(k, keystream(42, 0x0040_0000)); // deterministic
/// assert_ne!(k, keystream(42, 0x0040_0004)); // address-dependent
/// assert_ne!(k, keystream(43, 0x0040_0000)); // key-dependent
/// ```
pub fn keystream(key: u64, addr: u32) -> u32 {
    (splitmix64(key ^ (u64::from(addr) << 1) ^ 0xA5A5_5A5A_F00D_BEEF) & 0xFFFF_FFFF) as u32
}

/// Derives a region subkey from a master key and the region's start address.
///
/// Used for per-function and per-block keying granularities.
pub fn derive_subkey(master: u64, region_start: u32) -> u64 {
    splitmix64(master ^ (u64::from(region_start) << 17))
}

/// One encrypted address range `[start, end)` with its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncRegion {
    /// First encrypted byte address (word-aligned).
    pub start: u32,
    /// One past the last encrypted byte address (word-aligned).
    pub end: u32,
    /// Keystream key for this region.
    pub key: u64,
}

impl EncRegion {
    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }
}

impl fmt::Display for EncRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#010x}, {:#010x})", self.start, self.end)
    }
}

/// A sorted, non-overlapping set of encrypted regions with binary-search
/// lookup — the hardware's region CAM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionTable {
    regions: Vec<EncRegion>,
}

impl RegionTable {
    /// Builds a table, sorting the regions.
    ///
    /// # Panics
    ///
    /// Panics if any region is empty, unaligned, or overlaps another — such
    /// a table would be a toolchain bug, not a runtime condition. Use
    /// [`RegionTable::try_new`] for untrusted input.
    pub fn new(regions: Vec<EncRegion>) -> RegionTable {
        match RegionTable::try_new(regions) {
            Ok(table) => table,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Fallible constructor for untrusted region lists.
    ///
    /// # Errors
    ///
    /// Describes the first empty, unaligned or overlapping region found.
    pub fn try_new(mut regions: Vec<EncRegion>) -> Result<RegionTable, String> {
        regions.sort_by_key(|r| r.start);
        for r in &regions {
            if r.start >= r.end {
                return Err(format!("empty or inverted region {r}"));
            }
            if r.start % 4 != 0 || r.end % 4 != 0 {
                return Err(format!("unaligned region {r}"));
            }
        }
        for pair in regions.windows(2) {
            if pair[0].end > pair[1].start {
                return Err(format!("overlapping regions {} and {}", pair[0], pair[1]));
            }
        }
        Ok(RegionTable { regions })
    }

    /// Whether the table is empty (no encryption configured).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions in ascending address order.
    pub fn regions(&self) -> &[EncRegion] {
        &self.regions
    }

    /// Finds the region containing `addr`, if any.
    pub fn lookup(&self, addr: u32) -> Option<&EncRegion> {
        let idx = self.regions.partition_point(|r| r.end <= addr);
        self.regions.get(idx).filter(|r| r.contains(addr))
    }

    /// Number of encrypted words within the line `[line_addr,
    /// line_addr + 4*line_words)`.
    pub fn encrypted_words_in_line(&self, line_addr: u32, line_words: u32) -> u32 {
        (0..line_words)
            .filter(|i| self.lookup(line_addr + 4 * i).is_some())
            .count() as u32
    }

    /// Applies the keystream to `word` at `addr`: encrypts plaintext or
    /// decrypts ciphertext (XOR is its own inverse). Identity outside every
    /// region.
    pub fn apply(&self, addr: u32, word: u32) -> u32 {
        match self.lookup(addr) {
            Some(region) => word ^ keystream(region.key, addr),
            None => word,
        }
    }

    /// Applies the keystream to a whole cache line in place: `words[i]`
    /// sits at `line_addr + 4*i`. Equivalent to [`RegionTable::apply`]
    /// word by word — this is the burst form the fill-path decryption
    /// unit uses, with a fast exit for unencrypted tables.
    pub fn apply_line(&self, line_addr: u32, words: &mut [u32]) {
        if self.is_empty() {
            return;
        }
        for (i, word) in words.iter_mut().enumerate() {
            let addr = line_addr + 4 * i as u32;
            *word = self.apply(addr, *word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_spreads_bits() {
        // Adjacent addresses must give very different keystream words.
        let a = keystream(1, 0x0040_0000);
        let b = keystream(1, 0x0040_0004);
        assert!((a ^ b).count_ones() >= 8, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn apply_is_involutive() {
        let table = RegionTable::new(vec![EncRegion {
            start: 0x0040_0000,
            end: 0x0040_0100,
            key: 7,
        }]);
        let plain = 0x2108_000A;
        let addr = 0x0040_0010;
        let cipher = table.apply(addr, plain);
        assert_ne!(cipher, plain);
        assert_eq!(table.apply(addr, cipher), plain);
    }

    #[test]
    fn apply_is_identity_outside_regions() {
        let table = RegionTable::new(vec![EncRegion {
            start: 0x0040_0000,
            end: 0x0040_0010,
            key: 7,
        }]);
        assert_eq!(table.apply(0x0040_0010, 123), 123);
        assert_eq!(table.apply(0x003F_FFFC, 123), 123);
    }

    #[test]
    fn apply_line_matches_per_word_apply() {
        // Region covering only the middle of the line, so the line mixes
        // encrypted and plaintext words.
        let table = RegionTable::new(vec![EncRegion {
            start: 0x0040_0008,
            end: 0x0040_0018,
            key: 7,
        }]);
        let line_addr = 0x0040_0000;
        let stored: Vec<u32> = (0..8).map(|i| 0x2108_0000 + i).collect();
        let mut line = stored.clone();
        table.apply_line(line_addr, &mut line);
        for (i, (&burst, &word)) in line.iter().zip(stored.iter()).enumerate() {
            assert_eq!(burst, table.apply(line_addr + 4 * i as u32, word));
        }
        // Empty table: identity on the whole line.
        let mut untouched = stored.clone();
        RegionTable::default().apply_line(line_addr, &mut untouched);
        assert_eq!(untouched, stored);
    }

    #[test]
    fn lookup_finds_correct_region() {
        let table = RegionTable::new(vec![
            EncRegion {
                start: 0x100,
                end: 0x200,
                key: 1,
            },
            EncRegion {
                start: 0x300,
                end: 0x400,
                key: 2,
            },
        ]);
        assert_eq!(table.lookup(0x100).unwrap().key, 1);
        assert_eq!(table.lookup(0x1FC).unwrap().key, 1);
        assert!(table.lookup(0x200).is_none());
        assert_eq!(table.lookup(0x300).unwrap().key, 2);
        assert!(table.lookup(0x400).is_none());
        assert!(table.lookup(0).is_none());
    }

    #[test]
    fn encrypted_words_in_line_counts_partial_overlap() {
        let table = RegionTable::new(vec![EncRegion {
            start: 0x110,
            end: 0x120,
            key: 1,
        }]);
        // 32-byte line at 0x100: words 0x100..0x120, of which 0x110..0x120
        // (4 words) are encrypted.
        assert_eq!(table.encrypted_words_in_line(0x100, 8), 4);
        assert_eq!(table.encrypted_words_in_line(0x120, 8), 0);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_regions_panic() {
        RegionTable::new(vec![
            EncRegion {
                start: 0x100,
                end: 0x200,
                key: 1,
            },
            EncRegion {
                start: 0x1FC,
                end: 0x300,
                key: 2,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_region_panics() {
        RegionTable::new(vec![EncRegion {
            start: 0x101,
            end: 0x200,
            key: 1,
        }]);
    }

    #[test]
    fn subkeys_differ_per_region() {
        assert_ne!(derive_subkey(5, 0x400000), derive_subkey(5, 0x400020));
        assert_ne!(derive_subkey(5, 0x400000), derive_subkey(6, 0x400000));
        assert_eq!(derive_subkey(5, 0x400000), derive_subkey(5, 0x400000));
    }
}
