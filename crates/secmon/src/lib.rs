//! The secure hardware component of the codesign architecture.
//!
//! In the DATE-2004 design an FPGA sits between the processor and
//! instruction memory and (a) decrypts the instruction stream as cache lines
//! are fetched, and (b) verifies *register guards* — keyed signatures that
//! the protection compiler embedded in the register-operand fields of
//! semantically neutral instructions. This crate is the functional and
//! timing model of that hardware:
//!
//! * [`cipher`] — the per-address keystream cipher used for text-segment
//!   encryption, and the encrypted-region table;
//! * [`decrypt`] — the decryption unit's latency model (serial or
//!   pipelined), charged on the I-cache miss path;
//! * [`guard`] — the keyed rolling window hash and the encoding of
//!   signature symbols into guard instructions;
//! * [`schedule`] — [`SecMonConfig`], the configuration the protection
//!   toolchain provisions into the hardware (keys, guard sites, encrypted
//!   regions, spacing bound);
//! * [`monitor`] — [`SecMon`], the runtime model implementing
//!   [`flexprot_sim::FetchMonitor`].
//!
//! The crate deliberately contains **no placement or rewriting logic** —
//! that is the software half of the codesign and lives in `flexprot-core`.
//! Keeping the split mirrors the hardware/software boundary of the paper.

pub mod cipher;
pub mod decrypt;
pub mod guard;
pub mod monitor;
pub mod schedule;
pub mod serialize;

pub use cipher::{derive_subkey, keystream, EncRegion, RegionTable};
pub use decrypt::DecryptModel;
pub use guard::{decode_guard_symbol, encode_guard_inst, WindowHasher, SIG_SYMBOLS};
pub use monitor::SecMon;
pub use schedule::{GuardSite, SecMonConfig};
pub use serialize::ConfigFormatError;
