//! [`SecMon`] — the runtime secure-monitor model.
//!
//! The monitor is a small finite-state machine fed by the committed
//! instruction stream:
//!
//! * a rolling [`WindowHasher`] that resets on every pc discontinuity and at
//!   every registered window start (guarded block leader);
//! * when the pc reaches a guard site, the current digest is snapshotted and
//!   the next [`GuardSite::symbols`](crate::schedule::GuardSite::symbols) committed words are parsed as signature
//!   symbols; any mismatch, or any control transfer that interrupts the
//!   sequence, raises a tamper event;
//! * an instruction counter bounds the distance between successful checks
//!   inside protected ranges, defeating guard stripping;
//! * fetched words passing through the monitor are decrypted per the region
//!   table, with latency charged on I-cache fills.

use flexprot_sim::{FetchMonitor, TamperEvent};
use flexprot_trace::{SharedSink, TraceEvent};

use crate::guard::{decode_guard_symbol, signature_from_symbols, WindowHasher};
use crate::schedule::SecMonConfig;

#[derive(Debug, Clone)]
struct Collect {
    site: u32,
    symbols: Vec<u8>,
    total: u32,
    tail_remaining: u32,
    next_pc: u32,
}

/// The secure monitor: plugs into [`flexprot_sim::Machine::with_monitor`].
///
/// # Example
///
/// ```
/// use flexprot_secmon::{SecMon, SecMonConfig};
/// use flexprot_sim::{Machine, Outcome, SimConfig};
///
/// let image = flexprot_asm::assemble("main: li $v0, 10\n syscall\n")?;
/// let monitor = SecMon::new(SecMonConfig::transparent());
/// let result = Machine::with_monitor(&image, SimConfig::default(), monitor).run();
/// assert_eq!(result.outcome, Outcome::Exit(0));
/// # Ok::<(), flexprot_asm::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SecMon {
    config: SecMonConfig,
    hasher: WindowHasher,
    collecting: Option<Collect>,
    spacing: u64,
    checks_passed: u64,
    tamper_log: Vec<TamperEvent>,
    sink: Option<SharedSink>,
}

impl SecMon {
    /// Creates a monitor provisioned with `config`.
    pub fn new(config: SecMonConfig) -> SecMon {
        let hasher = WindowHasher::new(config.guard_key);
        SecMon {
            config,
            hasher,
            collecting: None,
            spacing: 0,
            checks_passed: 0,
            tamper_log: Vec::new(),
            sink: None,
        }
    }

    /// Attaches an observability sink; guard window transitions, check
    /// outcomes, spacing-counter activity and decryption-unit work are
    /// reported to it. With no sink attached (the default) the monitor's
    /// behaviour and cost are unchanged.
    pub fn attach_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    /// The provisioned configuration.
    pub fn config(&self) -> &SecMonConfig {
        &self.config
    }

    /// Number of guard checks that passed.
    pub fn checks_passed(&self) -> u64 {
        self.checks_passed
    }

    /// Tamper events seen so far (useful with `halt_on_tamper = false`).
    pub fn tamper_log(&self) -> &[TamperEvent] {
        &self.tamper_log
    }

    fn trip(&mut self, pc: u32, reason: String) -> Option<TamperEvent> {
        let event = TamperEvent { pc, reason };
        self.tamper_log.push(event.clone());
        // Recover to a clean state so non-halting mode can continue.
        self.collecting = None;
        self.hasher.reset();
        self.spacing = 0;
        self.config.halt_on_tamper.then_some(event)
    }

    /// Compares the embedded signature against the stream hash once a
    /// guard's symbols (and tail words) have all been observed.
    fn finish_check(&mut self, pc: u32, col: &Collect) -> Option<TamperEvent> {
        let claimed = signature_from_symbols(&col.symbols);
        let computed = self.hasher.digest();
        if claimed != computed {
            self.emit(TraceEvent::GuardFail { site: col.site, pc });
            return self.trip(
                pc,
                format!(
                    "signature mismatch at site {:#010x}: stream hash {computed:#010x}, \
                     embedded signature {claimed:#010x}",
                    col.site
                ),
            );
        }
        self.emit(TraceEvent::GuardPass { site: col.site });
        self.checks_passed += 1;
        self.spacing = 0;
        self.hasher.reset();
        None
    }

    /// Advances an in-progress guard collection by one committed word.
    fn advance_collect(&mut self, mut col: Collect, pc: u32, word: u32) -> Option<TamperEvent> {
        col.next_pc = pc.wrapping_add(4);
        if (col.symbols.len() as u32) < col.total {
            // Symbol phase: guard words carry the signature and are NOT
            // hashed themselves — so their shape must be validated, or an
            // attacker could mutate the non-symbol fields freely.
            if !crate::guard::is_guard_form(word) {
                let site = col.site;
                self.emit(TraceEvent::GuardFail { site, pc });
                return self.trip(
                    pc,
                    format!("malformed guard instruction at site {site:#010x}"),
                );
            }
            col.symbols.push(decode_guard_symbol(word));
        } else {
            // Tail phase: post-guard words (the terminator) are hashed.
            self.hasher.absorb(pc, word);
            col.tail_remaining -= 1;
        }
        if col.symbols.len() as u32 == col.total && col.tail_remaining == 0 {
            self.finish_check(pc, &col)
        } else {
            self.collecting = Some(col);
            None
        }
    }

    fn observe(&mut self, pc: u32, word: u32, sequential: bool) -> Option<TamperEvent> {
        if let Some(col) = self.collecting.take() {
            if !sequential || pc != col.next_pc {
                self.emit(TraceEvent::GuardFail { site: col.site, pc });
                return self.trip(
                    pc,
                    format!(
                        "guard sequence at {:#010x} interrupted (expected {:#010x})",
                        col.site, col.next_pc
                    ),
                );
            }
            return self.advance_collect(col, pc, word);
        }

        if !sequential {
            self.hasher.reset();
            if self.config.reset_points.contains(&pc) {
                self.spacing = 0;
            }
            if self.config.window_starts.contains(&pc) {
                self.emit(TraceEvent::WindowOpen { pc });
            }
        } else if self.config.window_starts.contains(&pc) {
            self.hasher.reset();
            self.emit(TraceEvent::WindowOpen { pc });
        }
        if let Some(site) = self.config.sites.get(&pc).copied() {
            self.emit(TraceEvent::WindowClose { site: pc });
            let col = Collect {
                site: pc,
                symbols: Vec::with_capacity(site.symbols as usize),
                total: site.symbols,
                tail_remaining: site.tail,
                next_pc: pc,
            };
            return self.advance_collect(col, pc, word);
        }

        self.hasher.absorb(pc, word);
        if let Some(bound) = self.config.spacing_bound {
            if self.config.in_protected(pc) {
                self.spacing += 1;
                self.emit(TraceEvent::SpacingTick {
                    pc,
                    count: self.spacing,
                });
                if self.spacing > bound {
                    self.emit(TraceEvent::SpacingExceeded { pc, bound });
                    return self.trip(
                        pc,
                        format!("guard spacing bound {bound} exceeded in protected region"),
                    );
                }
            }
        }
        None
    }
}

impl FetchMonitor for SecMon {
    fn transform_fetch(&mut self, addr: u32, word: u32) -> u32 {
        self.config.regions.apply(addr, word)
    }

    fn transform_fill(&mut self, line_addr: u32, words: &mut [u32]) {
        // Line-granularity decrypt, as the hardware does it: one pass over
        // the filled line. Functionally identical to per-word
        // `transform_fetch`; latency is charged by `fill_penalty`.
        self.config.regions.apply_line(line_addr, words);
    }

    fn fill_penalty(&mut self, line_addr: u32, line_words: u32) -> u64 {
        let encrypted = self
            .config
            .regions
            .encrypted_words_in_line(line_addr, line_words);
        let cycles = self.config.decrypt.fill_penalty(encrypted);
        if encrypted > 0 {
            self.emit(TraceEvent::Decrypt {
                line_addr,
                encrypted_words: encrypted,
                cycles,
            });
        }
        cycles
    }

    fn observe_commit(&mut self, pc: u32, word: u32, sequential: bool) -> Option<TamperEvent> {
        self.observe(pc, word, sequential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::{EncRegion, RegionTable};
    use crate::decrypt::DecryptModel;
    use crate::guard::{encode_guard_inst, signature_symbols};
    use crate::schedule::{GuardSite, ProtectedRange};
    use std::collections::{BTreeMap, BTreeSet};

    const KEY: u64 = 0x05EC_00D5;
    const BASE: u32 = 0x0040_0000;

    /// Builds (config, committed stream) for a window of `body` words
    /// followed by a correct guard sequence.
    fn guarded_stream(body: &[u32]) -> (SecMonConfig, Vec<(u32, u32, bool)>) {
        let site = BASE + 4 * body.len() as u32;
        let digest = WindowHasher::hash_window(KEY, BASE, body);
        let mut stream = Vec::new();
        for (i, &w) in body.iter().enumerate() {
            stream.push((BASE + 4 * i as u32, w, i != 0));
        }
        for (i, sym) in signature_symbols(digest).into_iter().enumerate() {
            let word = encode_guard_inst(sym, i as u8).encode();
            stream.push((site + 4 * i as u32, word, true));
        }
        let mut sites = BTreeMap::new();
        sites.insert(site, GuardSite::default());
        let mut window_starts = BTreeSet::new();
        window_starts.insert(BASE);
        let config = SecMonConfig {
            guard_key: KEY,
            sites,
            window_starts,
            halt_on_tamper: true,
            ..SecMonConfig::transparent()
        };
        (config, stream)
    }

    fn feed(mon: &mut SecMon, stream: &[(u32, u32, bool)]) -> Option<TamperEvent> {
        for &(pc, word, seq) in stream {
            if let Some(e) = mon.observe_commit(pc, word, seq) {
                return Some(e);
            }
        }
        None
    }

    #[test]
    fn correct_guard_passes() {
        let (config, stream) = guarded_stream(&[0x1111_2222, 0x3333_4444, 0x5555_6666]);
        let mut mon = SecMon::new(config);
        assert_eq!(feed(&mut mon, &stream), None);
        assert_eq!(mon.checks_passed(), 1);
        assert!(mon.tamper_log().is_empty());
    }

    #[test]
    fn tampered_window_word_is_detected() {
        let (config, mut stream) = guarded_stream(&[0x1111_2222, 0x3333_4444, 0x5555_6666]);
        stream[1].1 ^= 1 << 13;
        let mut mon = SecMon::new(config);
        let event = feed(&mut mon, &stream).expect("must detect");
        assert!(event.reason.contains("signature mismatch"), "{event}");
        assert_eq!(mon.checks_passed(), 0);
    }

    #[test]
    fn tampered_guard_word_is_detected() {
        let (config, mut stream) = guarded_stream(&[0xAAAA_0001, 0xAAAA_0002]);
        let last = stream.len() - 1;
        // Replace the final guard instruction with a different symbol.
        stream[last].1 = encode_guard_inst(0x5A, 1).encode();
        let mut mon = SecMon::new(config);
        let event = feed(&mut mon, &stream).expect("must detect");
        assert!(event.reason.contains("signature mismatch"), "{event}");
    }

    #[test]
    fn interrupted_guard_sequence_is_detected() {
        let (config, stream) = guarded_stream(&[0xAAAA_0001, 0xAAAA_0002]);
        // Cut the stream mid-guard, then jump somewhere else.
        let cut = stream.len() - 2;
        let mut truncated = stream[..cut].to_vec();
        truncated.push((BASE + 0x100, 0, false));
        let mut mon = SecMon::new(config);
        let event = feed(&mut mon, &truncated).expect("must detect");
        assert!(event.reason.contains("interrupted"), "{event}");
    }

    #[test]
    fn reentry_passes_check_twice() {
        let (config, stream) = guarded_stream(&[0xBBBB_0001, 0xBBBB_0002, 0xBBBB_0003]);
        let mut mon = SecMon::new(config);
        assert_eq!(feed(&mut mon, &stream), None);
        // Second execution of the same window (e.g. a loop) — entered by a
        // taken branch (non-sequential first word).
        assert_eq!(feed(&mut mon, &stream), None);
        assert_eq!(mon.checks_passed(), 2);
    }

    #[test]
    fn fallthrough_entry_resets_at_window_start() {
        let (config, mut stream) = guarded_stream(&[0xCCCC_0001, 0xCCCC_0002]);
        // Pretend the word before BASE fell through into the window:
        // window_start must reset the hash, so the prefix must not matter.
        stream[0].2 = true; // sequential entry into window start
        let mut mon = SecMon::new(config);
        mon.observe_commit(BASE - 4, 0x7777_7777, false);
        assert_eq!(feed(&mut mon, &stream), None);
        assert_eq!(mon.checks_passed(), 1);
    }

    #[test]
    fn sink_observes_window_and_check_events() {
        let (config, stream) = guarded_stream(&[0x1111_2222, 0x3333_4444, 0x5555_6666]);
        let (sink, recorder) = flexprot_trace::Recorder::new().shared();
        let mut mon = SecMon::new(config);
        mon.attach_sink(sink);
        assert_eq!(feed(&mut mon, &stream), None);
        let recorder = recorder.borrow();
        let m = recorder.metrics();
        assert_eq!(m.counter("guard_windows_opened"), 1);
        assert_eq!(m.counter("guard_windows_closed"), 1);
        assert_eq!(m.counter("guard_checks_passed"), mon.checks_passed());
        assert_eq!(m.counter("guard_checks_failed"), 0);
        assert!(recorder.first_failure().is_none());
    }

    #[test]
    fn sink_attributes_guard_failure() {
        let (config, mut stream) = guarded_stream(&[0x1111_2222, 0x3333_4444]);
        stream[0].1 ^= 1 << 9;
        let (sink, recorder) = flexprot_trace::Recorder::new().shared();
        let mut mon = SecMon::new(config);
        mon.attach_sink(sink);
        assert!(feed(&mut mon, &stream).is_some());
        let recorder = recorder.borrow();
        assert_eq!(recorder.metrics().counter("guard_checks_failed"), 1);
        assert!(matches!(
            recorder.first_failure(),
            Some(flexprot_trace::TraceEvent::GuardFail { .. })
        ));
    }

    #[test]
    fn sink_observes_decrypt_work() {
        let regions = RegionTable::new(vec![EncRegion {
            start: BASE,
            end: BASE + 32,
            key: 1,
        }]);
        let config = SecMonConfig {
            regions,
            decrypt: DecryptModel {
                cycles_per_word: 2,
                startup: 4,
                pipelined: false,
            },
            ..SecMonConfig::transparent()
        };
        let (sink, recorder) = flexprot_trace::Recorder::new().shared();
        let mut mon = SecMon::new(config);
        mon.attach_sink(sink);
        let charged = mon.fill_penalty(BASE, 8);
        assert_eq!(mon.fill_penalty(BASE + 32, 8), 0);
        let recorder = recorder.borrow();
        let m = recorder.metrics();
        assert_eq!(m.counter("decrypt_fills"), 1);
        assert_eq!(m.counter("decrypted_words"), 8);
        assert_eq!(m.counter("decrypt_unit_cycles"), charged);
    }

    #[test]
    fn spacing_bound_trips_without_guards() {
        let config = SecMonConfig {
            guard_key: KEY,
            protected: vec![ProtectedRange {
                start: BASE,
                end: BASE + 0x1000,
            }],
            spacing_bound: Some(10),
            halt_on_tamper: true,
            ..SecMonConfig::transparent()
        };
        let mut mon = SecMon::new(config);
        let mut tripped = None;
        for i in 0..20u32 {
            tripped = mon.observe_commit(BASE + 4 * i, 0x0000_0000, i != 0);
            if tripped.is_some() {
                break;
            }
        }
        let event = tripped.expect("spacing bound must trip");
        assert!(event.reason.contains("spacing"), "{event}");
    }

    #[test]
    fn spacing_ignores_unprotected_addresses() {
        let config = SecMonConfig {
            guard_key: KEY,
            protected: vec![ProtectedRange {
                start: BASE + 0x8000,
                end: BASE + 0x9000,
            }],
            spacing_bound: Some(4),
            halt_on_tamper: true,
            ..SecMonConfig::transparent()
        };
        let mut mon = SecMon::new(config);
        for i in 0..100u32 {
            assert_eq!(mon.observe_commit(BASE + 4 * i, 0, i != 0), None);
        }
    }

    #[test]
    fn non_halting_mode_logs_and_continues() {
        let (mut config, mut stream) = guarded_stream(&[0xDDDD_0001, 0xDDDD_0002]);
        config.halt_on_tamper = false;
        stream[0].1 ^= 4;
        let mut mon = SecMon::new(config);
        assert_eq!(feed(&mut mon, &stream), None);
        assert_eq!(mon.tamper_log().len(), 1);
        assert_eq!(mon.checks_passed(), 0);
    }

    #[test]
    fn transform_decrypts_only_regions() {
        let key = 77;
        let regions = RegionTable::new(vec![EncRegion {
            start: BASE,
            end: BASE + 8,
            key,
        }]);
        let config = SecMonConfig {
            regions,
            ..SecMonConfig::transparent()
        };
        let mut mon = SecMon::new(config);
        let plain = 0x2108_0001;
        let cipher = plain ^ crate::cipher::keystream(key, BASE);
        assert_eq!(mon.transform_fetch(BASE, cipher), plain);
        assert_eq!(mon.transform_fetch(BASE + 8, plain), plain);
    }

    #[test]
    fn fill_penalty_charges_only_encrypted_lines() {
        let regions = RegionTable::new(vec![EncRegion {
            start: BASE,
            end: BASE + 32,
            key: 1,
        }]);
        let config = SecMonConfig {
            regions,
            decrypt: DecryptModel {
                cycles_per_word: 2,
                startup: 4,
                pipelined: false,
            },
            ..SecMonConfig::transparent()
        };
        let mut mon = SecMon::new(config);
        assert_eq!(mon.fill_penalty(BASE, 8), 4 + 2 * 8);
        assert_eq!(mon.fill_penalty(BASE + 32, 8), 0);
    }
}

#[cfg(test)]
mod reset_point_tests {
    use super::*;
    use crate::schedule::ProtectedRange;

    const BASE: u32 = 0x0040_0000;

    #[test]
    fn call_into_protected_entry_resets_spacing() {
        let entry = BASE + 0x40;
        let mut reset_points = std::collections::BTreeSet::new();
        reset_points.insert(entry);
        let config = SecMonConfig {
            guard_key: 1,
            protected: vec![ProtectedRange {
                start: BASE,
                end: BASE + 0x1000,
            }],
            spacing_bound: Some(8),
            reset_points,
            halt_on_tamper: true,
            ..SecMonConfig::transparent()
        };
        let mut mon = SecMon::new(config);
        // 6 protected instructions, then a call lands on the entry,
        // then 6 more: never exceeds the bound of 8.
        for i in 0..6u32 {
            assert_eq!(mon.observe_commit(BASE + 4 * i, 0, i != 0), None);
        }
        assert_eq!(mon.observe_commit(entry, 0, false), None);
        for i in 1..7u32 {
            assert_eq!(mon.observe_commit(entry + 4 * i, 0, true), None);
        }
        // Without the reset the 13th protected instruction would trip.
        assert!(mon.tamper_log().is_empty());
    }

    #[test]
    fn sequential_flow_through_entry_does_not_reset() {
        let entry = BASE + 0x10;
        let mut reset_points = std::collections::BTreeSet::new();
        reset_points.insert(entry);
        let config = SecMonConfig {
            guard_key: 1,
            protected: vec![ProtectedRange {
                start: BASE,
                end: BASE + 0x1000,
            }],
            spacing_bound: Some(8),
            reset_points,
            halt_on_tamper: true,
            ..SecMonConfig::transparent()
        };
        let mut mon = SecMon::new(config);
        // Straight-line execution through the entry must keep counting: an
        // attacker cannot launder the counter by falling through.
        let mut tripped = false;
        for i in 0..20u32 {
            if mon.observe_commit(BASE + 4 * i, 0, i != 0).is_some() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "fall-through must not reset the spacing counter");
    }
}

#[cfg(test)]
mod tail_tests {
    use super::*;
    use crate::guard::{encode_guard_inst, signature_symbols, WindowHasher};
    use crate::schedule::GuardSite;
    use std::collections::{BTreeMap, BTreeSet};

    const KEY: u64 = 0xF00D;
    const BASE: u32 = 0x0040_0000;

    /// Window: 2 body words, 4 guard words, 1 tail (terminator) word.
    fn tailed_stream(body: &[u32], terminator: u32) -> (SecMonConfig, Vec<(u32, u32, bool)>) {
        let site = BASE + 4 * body.len() as u32;
        let term_addr = site + 4 * 4;
        let mut hasher = WindowHasher::new(KEY);
        for (i, &w) in body.iter().enumerate() {
            hasher.absorb(BASE + 4 * i as u32, w);
        }
        hasher.absorb(term_addr, terminator);
        let digest = hasher.digest();
        let mut stream = Vec::new();
        for (i, &w) in body.iter().enumerate() {
            stream.push((BASE + 4 * i as u32, w, i != 0));
        }
        for (i, sym) in signature_symbols(digest).into_iter().enumerate() {
            stream.push((
                site + 4 * i as u32,
                encode_guard_inst(sym, i as u8).encode(),
                true,
            ));
        }
        stream.push((term_addr, terminator, true));
        let mut sites = BTreeMap::new();
        sites.insert(
            site,
            GuardSite {
                symbols: 4,
                tail: 1,
            },
        );
        let mut window_starts = BTreeSet::new();
        window_starts.insert(BASE);
        let config = SecMonConfig {
            guard_key: KEY,
            sites,
            window_starts,
            halt_on_tamper: true,
            ..SecMonConfig::transparent()
        };
        (config, stream)
    }

    fn feed(mon: &mut SecMon, stream: &[(u32, u32, bool)]) -> Option<TamperEvent> {
        for &(pc, word, seq) in stream {
            if let Some(e) = mon.observe_commit(pc, word, seq) {
                return Some(e);
            }
        }
        None
    }

    #[test]
    fn tail_covered_window_passes() {
        let (config, stream) = tailed_stream(&[0x1111, 0x2222], 0x1440_FFFE);
        let mut mon = SecMon::new(config);
        assert_eq!(feed(&mut mon, &stream), None);
        assert_eq!(mon.checks_passed(), 1);
    }

    #[test]
    fn tampered_terminator_is_detected() {
        let (config, mut stream) = tailed_stream(&[0x1111, 0x2222], 0x1440_FFFE);
        // Flip the terminator (e.g. beq -> bne is a single-bit opcode flip).
        let last = stream.len() - 1;
        stream[last].1 ^= 1 << 26;
        let mut mon = SecMon::new(config);
        let event = feed(&mut mon, &stream).expect("terminator patch must be caught");
        assert!(event.reason.contains("signature mismatch"), "{event}");
    }

    #[test]
    fn jump_away_before_tail_is_interrupted() {
        let (config, stream) = tailed_stream(&[0x1111, 0x2222], 0x1440_FFFE);
        let mut cut = stream[..stream.len() - 1].to_vec();
        cut.push((BASE + 0x200, 0, false));
        let mut mon = SecMon::new(config);
        let event = feed(&mut mon, &cut).expect("skipping the tail must be caught");
        assert!(event.reason.contains("interrupted"), "{event}");
    }
}
