//! Binary (de)serialization of monitor configurations — the `FPM1`
//! container that a deployment would flash into the FPGA alongside the
//! protected binary.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::cipher::{EncRegion, RegionTable};
use crate::decrypt::DecryptModel;
use crate::schedule::{GuardSite, ProtectedRange, SecMonConfig};

const MAGIC: &[u8; 4] = b"FPM1";

/// Error returned when parsing an `FPM1` container fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigFormatError {
    /// Wrong magic bytes.
    BadMagic,
    /// Input ended early.
    Truncated,
    /// A length field exceeds the remaining input.
    BadLength,
    /// Trailing bytes after the last field.
    TrailingBytes,
    /// The region table violates its invariants (overlap/alignment).
    BadRegions,
}

impl fmt::Display for ConfigFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigFormatError::BadMagic => f.write_str("not an FPM1 monitor config (bad magic)"),
            ConfigFormatError::Truncated => f.write_str("truncated FPM1 config"),
            ConfigFormatError::BadLength => f.write_str("implausible length field"),
            ConfigFormatError::TrailingBytes => f.write_str("trailing bytes after config"),
            ConfigFormatError::BadRegions => f.write_str("invalid encrypted-region table"),
        }
    }
}

impl std::error::Error for ConfigFormatError {}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ConfigFormatError> {
        if self.data.len() - self.pos < n {
            return Err(ConfigFormatError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ConfigFormatError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ConfigFormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ConfigFormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn count(&mut self, min_elem_size: usize) -> Result<usize, ConfigFormatError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size) > self.data.len() - self.pos {
            return Err(ConfigFormatError::BadLength);
        }
        Ok(n)
    }
}

impl SecMonConfig {
    /// Serializes to the `FPM1` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.guard_key.to_le_bytes());
        out.extend_from_slice(&(self.sites.len() as u32).to_le_bytes());
        for (&addr, site) in &self.sites {
            out.extend_from_slice(&addr.to_le_bytes());
            out.extend_from_slice(&site.symbols.to_le_bytes());
            out.extend_from_slice(&site.tail.to_le_bytes());
        }
        out.extend_from_slice(&(self.window_starts.len() as u32).to_le_bytes());
        for &addr in &self.window_starts {
            out.extend_from_slice(&addr.to_le_bytes());
        }
        out.extend_from_slice(&(self.protected.len() as u32).to_le_bytes());
        for range in &self.protected {
            out.extend_from_slice(&range.start.to_le_bytes());
            out.extend_from_slice(&range.end.to_le_bytes());
        }
        out.push(u8::from(self.spacing_bound.is_some()));
        out.extend_from_slice(&self.spacing_bound.unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&(self.reset_points.len() as u32).to_le_bytes());
        for &addr in &self.reset_points {
            out.extend_from_slice(&addr.to_le_bytes());
        }
        out.extend_from_slice(&(self.regions.regions().len() as u32).to_le_bytes());
        for region in self.regions.regions() {
            out.extend_from_slice(&region.start.to_le_bytes());
            out.extend_from_slice(&region.end.to_le_bytes());
            out.extend_from_slice(&region.key.to_le_bytes());
        }
        out.extend_from_slice(&self.decrypt.cycles_per_word.to_le_bytes());
        out.extend_from_slice(&self.decrypt.startup.to_le_bytes());
        out.push(u8::from(self.decrypt.pipelined));
        out.push(u8::from(self.halt_on_tamper));
        out
    }

    /// Parses an `FPM1` container.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigFormatError`] on malformed input; never panics on
    /// untrusted bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<SecMonConfig, ConfigFormatError> {
        let mut r = Reader {
            data: bytes,
            pos: 0,
        };
        if r.take(4)? != MAGIC {
            return Err(ConfigFormatError::BadMagic);
        }
        let guard_key = r.u64()?;
        let n_sites = r.count(12)?;
        let mut sites = BTreeMap::new();
        for _ in 0..n_sites {
            let addr = r.u32()?;
            let symbols = r.u32()?;
            let tail = r.u32()?;
            sites.insert(addr, GuardSite { symbols, tail });
        }
        let n_ws = r.count(4)?;
        let mut window_starts = BTreeSet::new();
        for _ in 0..n_ws {
            window_starts.insert(r.u32()?);
        }
        let n_prot = r.count(8)?;
        let mut protected = Vec::with_capacity(n_prot);
        for _ in 0..n_prot {
            protected.push(ProtectedRange {
                start: r.u32()?,
                end: r.u32()?,
            });
        }
        let has_bound = r.u8()? != 0;
        let bound = r.u64()?;
        let n_rp = r.count(4)?;
        let mut reset_points = BTreeSet::new();
        for _ in 0..n_rp {
            reset_points.insert(r.u32()?);
        }
        let n_regions = r.count(16)?;
        let mut regions = Vec::with_capacity(n_regions);
        for _ in 0..n_regions {
            regions.push(EncRegion {
                start: r.u32()?,
                end: r.u32()?,
                key: r.u64()?,
            });
        }
        let decrypt = DecryptModel {
            cycles_per_word: r.u64()?,
            startup: r.u64()?,
            pipelined: r.u8()? != 0,
        };
        let halt_on_tamper = r.u8()? != 0;
        if r.pos != bytes.len() {
            return Err(ConfigFormatError::TrailingBytes);
        }
        let regions = RegionTable::try_new(regions).map_err(|_| ConfigFormatError::BadRegions)?;
        Ok(SecMonConfig {
            guard_key,
            sites,
            window_starts,
            protected,
            spacing_bound: has_bound.then_some(bound),
            reset_points,
            regions,
            decrypt,
            halt_on_tamper,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SecMonConfig {
        let mut sites = BTreeMap::new();
        sites.insert(
            0x0040_0010,
            GuardSite {
                symbols: 4,
                tail: 1,
            },
        );
        sites.insert(
            0x0040_0080,
            GuardSite {
                symbols: 4,
                tail: 0,
            },
        );
        let mut window_starts = BTreeSet::new();
        window_starts.insert(0x0040_0000);
        let mut reset_points = BTreeSet::new();
        reset_points.insert(0x0040_0000);
        SecMonConfig {
            guard_key: 0xDEAD_BEEF_1234_5678,
            sites,
            window_starts,
            protected: vec![ProtectedRange {
                start: 0x0040_0000,
                end: 0x0040_1000,
            }],
            spacing_bound: Some(99),
            reset_points,
            regions: RegionTable::new(vec![EncRegion {
                start: 0x0040_0000,
                end: 0x0040_0100,
                key: 42,
            }]),
            decrypt: DecryptModel {
                cycles_per_word: 3,
                startup: 5,
                pipelined: false,
            },
            halt_on_tamper: true,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let config = sample();
        assert_eq!(SecMonConfig::from_bytes(&config.to_bytes()), Ok(config));
    }

    #[test]
    fn transparent_config_round_trips() {
        let config = SecMonConfig::transparent();
        assert_eq!(SecMonConfig::from_bytes(&config.to_bytes()), Ok(config));
    }

    #[test]
    fn none_spacing_round_trips() {
        let mut config = sample();
        config.spacing_bound = None;
        assert_eq!(SecMonConfig::from_bytes(&config.to_bytes()), Ok(config));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[3] = b'9';
        assert_eq!(
            SecMonConfig::from_bytes(&bytes),
            Err(ConfigFormatError::BadMagic)
        );
    }

    #[test]
    fn every_truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SecMonConfig::from_bytes(&bytes[..cut]).is_err(),
                "accepted a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(1);
        assert_eq!(
            SecMonConfig::from_bytes(&bytes),
            Err(ConfigFormatError::TrailingBytes)
        );
    }

    #[test]
    fn overlapping_regions_rejected_not_panicking() {
        let mut config = sample();
        // Build bytes manually with overlapping regions by serializing two
        // identical regions.
        let region = *config.regions.regions().first().unwrap();
        config.regions = RegionTable::default();
        let mut bytes = config.to_bytes();
        // Patch the region count (it sits right before decrypt fields:
        // 16 decrypt bytes + 2 flag bytes from the end, minus region data).
        let insert_at = bytes.len() - (8 + 8 + 1 + 1) - 4;
        bytes[insert_at..insert_at + 4].copy_from_slice(&2u32.to_le_bytes());
        let mut region_bytes = Vec::new();
        for _ in 0..2 {
            region_bytes.extend_from_slice(&region.start.to_le_bytes());
            region_bytes.extend_from_slice(&region.end.to_le_bytes());
            region_bytes.extend_from_slice(&region.key.to_le_bytes());
        }
        let tail_start = insert_at + 4;
        bytes.splice(tail_start..tail_start, region_bytes);
        assert_eq!(
            SecMonConfig::from_bytes(&bytes),
            Err(ConfigFormatError::BadRegions)
        );
    }
}
