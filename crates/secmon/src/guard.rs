//! Register guards: the keyed window hash and the symbol encoding.
//!
//! A guard is a run of [`SIG_SYMBOLS`] semantically neutral instructions
//! (each writes `$zero`) whose register-operand fields together spell a
//! 32-bit signature. The signature is the keyed hash of the *window* — the
//! straight-line instructions of the guarded basic block that precede the
//! guard. The hardware recomputes the hash as instructions commit and
//! compares it against the symbols it extracts from the guard instructions
//! themselves, so the signature travels **inside the binary** and the
//! hardware only needs the key and the guard-site schedule.
//!
//! Tampering with any window instruction, with the guard instructions, or
//! with control flow into the window changes either the computed hash or
//! the decoded signature and trips verification.

use flexprot_isa::{Inst, Reg};

/// Number of instructions in one guard sequence (8 signature bits each).
pub const SIG_SYMBOLS: u32 = 4;

/// Keyed rolling hash over `(address, word)` pairs of committed
/// instructions.
///
/// The hash is position-binding: relocating a window without re-signing it
/// changes the digest even if the instruction bytes are identical.
///
/// # Example
///
/// ```
/// use flexprot_secmon::WindowHasher;
///
/// let mut h = WindowHasher::new(0x1234);
/// h.absorb(0x0040_0000, 0x2108_0001);
/// h.absorb(0x0040_0004, 0x2108_0002);
/// let sig = h.digest();
/// let mut h2 = WindowHasher::new(0x1234);
/// h2.absorb(0x0040_0000, 0x2108_0001);
/// h2.absorb(0x0040_0004, 0x2108_0002);
/// assert_eq!(h2.digest(), sig);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowHasher {
    key: u64,
    state: u64,
}

impl WindowHasher {
    /// Creates a hasher seeded with the guard key.
    pub fn new(key: u64) -> WindowHasher {
        let mut h = WindowHasher { key, state: 0 };
        h.reset();
        h
    }

    /// Resets to the start-of-window state (hardware does this on every pc
    /// discontinuity and at every registered window start).
    pub fn reset(&mut self) {
        self.state = self.key ^ 0x6A09_E667_F3BC_C908;
    }

    /// Absorbs one committed instruction.
    pub fn absorb(&mut self, addr: u32, word: u32) {
        let input = (u64::from(addr) << 32) | u64::from(word);
        self.state ^= input;
        self.state = self.state.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.state = self.state.rotate_left(29) ^ (self.state >> 17);
    }

    /// The 32-bit signature of everything absorbed since the last reset.
    pub fn digest(&self) -> u32 {
        let folded = self.state ^ self.state.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        ((folded >> 32) ^ folded) as u32
    }

    /// Convenience: hash of a full window given as `(start_addr, words)`.
    pub fn hash_window(key: u64, start_addr: u32, words: &[u32]) -> u32 {
        let mut h = WindowHasher::new(key);
        for (i, &w) in words.iter().enumerate() {
            h.absorb(start_addr + 4 * i as u32, w);
        }
        h.digest()
    }
}

/// The pool of guard opcodes. All write `$zero`, so any choice is an
/// architectural no-op; the variety exists to diversify the byte patterns.
fn guard_op(selector: u8, rs: Reg, rt: Reg) -> Inst {
    let rd = Reg::ZERO;
    match selector % 6 {
        0 => Inst::Addu { rd, rs, rt },
        1 => Inst::Or { rd, rs, rt },
        2 => Inst::Xor { rd, rs, rt },
        3 => Inst::And { rd, rs, rt },
        4 => Inst::Sltu { rd, rs, rt },
        _ => Inst::Nor { rd, rs, rt },
    }
}

/// Encodes one 8-bit signature symbol as a guard instruction.
///
/// The symbol is carried in `rs` (high 5 bits) and the low 3 bits of `rt`;
/// `salt` picks the opcode and the free high bits of `rt`, letting the
/// emitter diversify consecutive guards.
pub fn encode_guard_inst(symbol: u8, salt: u8) -> Inst {
    let rs = Reg::from_bits(u32::from(symbol) >> 3);
    let rt = Reg::from_bits(u32::from(symbol & 0x7) | (u32::from(salt & 0x3) << 3));
    guard_op(salt >> 2, rs, rt)
}

/// Extracts the 8-bit signature symbol from a committed guard word.
///
/// Works on the raw encoding so the hardware needs no full decoder: the
/// `rs`/`rt` fields sit at fixed bit positions in every R-type word.
pub fn decode_guard_symbol(word: u32) -> u8 {
    let rs = (word >> 21) & 0x1F;
    let rt = (word >> 16) & 0x7;
    ((rs << 3) | rt) as u8
}

/// Whether a committed word has the *shape* of a guard instruction:
/// R-type, `rd == $zero`, `shamt == 0`, funct from the guard pool.
///
/// The signature symbols live only in the `rs`/`rt` fields, so without
/// this check an attacker could flip, say, an `rd` bit — turning the inert
/// guard into an instruction that clobbers a live register — while the
/// embedded signature still verified. The hardware therefore rejects any
/// word at a guard site that is not of guard shape.
pub fn is_guard_form(word: u32) -> bool {
    let opcode = word >> 26;
    let rd = (word >> 11) & 0x1F;
    let sh = (word >> 6) & 0x1F;
    let funct = word & 0x3F;
    opcode == 0 && rd == 0 && sh == 0 && matches!(funct, 0x21 | 0x24 | 0x25 | 0x26 | 0x27 | 0x2B)
}

/// Splits a 32-bit signature into its [`SIG_SYMBOLS`] little-endian symbols.
pub fn signature_symbols(sig: u32) -> [u8; SIG_SYMBOLS as usize] {
    sig.to_le_bytes()
}

/// Reassembles a signature from observed symbols.
pub fn signature_from_symbols(symbols: &[u8]) -> u32 {
    let mut bytes = [0u8; 4];
    bytes[..symbols.len().min(4)].copy_from_slice(&symbols[..symbols.len().min(4)]);
    u32::from_le_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_key_sensitive() {
        let words = [0x1234_5678, 0x9ABC_DEF0, 0x0BAD_F00D];
        let a = WindowHasher::hash_window(1, 0x400000, &words);
        let b = WindowHasher::hash_window(1, 0x400000, &words);
        let c = WindowHasher::hash_window(2, 0x400000, &words);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_is_position_binding() {
        let words = [0x1234_5678, 0x9ABC_DEF0];
        let a = WindowHasher::hash_window(1, 0x400000, &words);
        let b = WindowHasher::hash_window(1, 0x400010, &words);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_detects_single_bit_flip() {
        let words = [0x1234_5678, 0x9ABC_DEF0, 0x0BAD_F00D];
        let base = WindowHasher::hash_window(1, 0x400000, &words);
        for i in 0..words.len() {
            for bit in [0u32, 7, 16, 31] {
                let mut mutated = words;
                mutated[i] ^= 1 << bit;
                assert_ne!(
                    WindowHasher::hash_window(1, 0x400000, &mutated),
                    base,
                    "flip word {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn hash_detects_reordering_and_truncation() {
        let words = [1u32, 2, 3];
        let swapped = [2u32, 1, 3];
        let base = WindowHasher::hash_window(9, 0x400000, &words);
        assert_ne!(WindowHasher::hash_window(9, 0x400000, &swapped), base);
        assert_ne!(WindowHasher::hash_window(9, 0x400000, &words[..2]), base);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = WindowHasher::new(5);
        let initial = h.digest();
        h.absorb(0x400000, 0xFFFF_FFFF);
        assert_ne!(h.digest(), initial);
        h.reset();
        assert_eq!(h.digest(), initial);
    }

    #[test]
    fn guard_symbols_round_trip_for_all_values() {
        for symbol in 0..=255u8 {
            for salt in 0..24u8 {
                let inst = encode_guard_inst(symbol, salt);
                let word = inst.encode();
                assert_eq!(
                    decode_guard_symbol(word),
                    symbol,
                    "symbol {symbol} salt {salt} via {inst}"
                );
                // Guard instructions must be valid and architecturally inert.
                let decoded = Inst::decode(word).expect("guard word must decode");
                assert_eq!(decoded.def(), Some(Reg::ZERO));
            }
        }
    }

    #[test]
    fn salt_diversifies_encodings() {
        let words: std::collections::BTreeSet<u32> = (0..24u8)
            .map(|salt| encode_guard_inst(0xAB, salt).encode())
            .collect();
        assert!(words.len() > 6, "expected diverse encodings, got {words:?}");
    }

    #[test]
    fn signature_symbol_round_trip() {
        let sig = 0xDEAD_BEEF;
        let symbols = signature_symbols(sig);
        assert_eq!(signature_from_symbols(&symbols), sig);
    }

    #[test]
    fn digest_distribution_smoke() {
        // Hashes of distinct windows should rarely collide.
        let mut digests = std::collections::BTreeSet::new();
        for i in 0..1000u32 {
            digests.insert(WindowHasher::hash_window(7, 0x400000, &[i, i ^ 0xFFFF]));
        }
        assert!(
            digests.len() >= 998,
            "too many collisions: {}",
            digests.len()
        );
    }
}

#[cfg(test)]
mod form_tests {
    use super::*;

    #[test]
    fn emitted_guards_pass_the_form_check() {
        for symbol in [0u8, 1, 0x7F, 0xAB, 0xFF] {
            for salt in 0..32u8 {
                let word = encode_guard_inst(symbol, salt).encode();
                assert!(is_guard_form(word), "symbol {symbol} salt {salt}");
            }
        }
    }

    #[test]
    fn rd_mutation_fails_the_form_check() {
        let word = encode_guard_inst(0x3C, 5).encode();
        for bit in 11..16 {
            assert!(!is_guard_form(word ^ (1 << bit)), "rd bit {bit}");
        }
    }

    #[test]
    fn non_guard_instructions_fail_the_form_check() {
        use flexprot_isa::{Inst, Reg};
        assert!(!is_guard_form(Inst::NOP.encode()));
        assert!(!is_guard_form(Inst::Syscall.encode()));
        assert!(!is_guard_form(
            Inst::Addi {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 1
            }
            .encode()
        ));
        // Same funct but writes a real register.
        assert!(!is_guard_form(
            Inst::Addu {
                rd: Reg::AT,
                rs: Reg::T0,
                rt: Reg::T1
            }
            .encode()
        ));
    }
}
