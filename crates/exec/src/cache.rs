//! The content-addressed in-memory artifact cache.
//!
//! Three artifact kinds are memoized: assembled kernel images, profiled
//! baseline runs, and protected binaries. Keys are canonical renderings of
//! every input that determines the artifact (image content fingerprint,
//! the full `Debug` form of the protection config, the simulator config
//! that provenance-determines a profile), so two cells asking for the same
//! thing always share one `Arc`.
//!
//! Hit/miss accounting is deterministic under any thread count: each slot
//! is claimed under the map lock (the claimer counts the miss, everyone
//! else a hit) and built exactly once behind a `OnceLock`, so for a fixed
//! job set `misses == distinct keys` and `hits == lookups − misses`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use flexprot_core::{protect, Profile, Protected, ProtectionConfig};
use flexprot_isa::Image;
use flexprot_sim::{Outcome, RunResult, SimConfig};
use flexprot_workloads::Workload;

/// FNV-1a 64-bit over a byte string — the content-addressing hash.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn image_fingerprint(image: &Image) -> u64 {
    let mut bytes = Vec::with_capacity(12 + image.text.len() * 4 + image.data.len());
    bytes.extend_from_slice(&image.entry.to_le_bytes());
    bytes.extend_from_slice(&image.text_base.to_le_bytes());
    for word in &image.text {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    bytes.extend_from_slice(&image.data_base.to_le_bytes());
    bytes.extend_from_slice(&image.data);
    fingerprint(&bytes)
}

/// A workload's baseline artifacts: the unprotected image, its clean
/// profiled run, and the execution profile — shared by every cell that
/// compares against or optimizes for the baseline.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// The unprotected image.
    pub image: Arc<Image>,
    /// Its content fingerprint (key material for derived artifacts).
    pub image_fp: u64,
    /// Its clean run under the keyed [`SimConfig`].
    pub run: RunResult,
    /// Its execution profile.
    pub profile: Profile,
}

/// Cache hit/miss totals, surfaced as `exec_cache_hits` /
/// `exec_cache_misses` trace counters by [`crate::Engine::metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an already-claimed slot.
    pub hits: u64,
    /// Lookups that claimed (and built) a new slot.
    pub misses: u64,
}

type Slot<V> = Arc<OnceLock<V>>;
type SlotMap<V> = Mutex<HashMap<String, Slot<V>>>;

/// The shared artifact store. Cloneable values live behind `Arc`s; build
/// errors are stored too, so a failing protect is reported (not retried)
/// for every cell that asks for it.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    images: SlotMap<(u64, Arc<Image>)>,
    baselines: SlotMap<Arc<Baseline>>,
    protecteds: SlotMap<Result<Arc<Protected>, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// Claims the slot for `key`, counting a miss for the claimer and a
    /// hit for everyone after.
    fn slot<V>(&self, map: &Mutex<HashMap<String, Slot<V>>>, key: &str) -> Slot<V> {
        let mut map = map.lock().expect("artifact cache map");
        if let Some(slot) = map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Arc::clone(slot)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let slot = Slot::default();
            map.insert(key.to_owned(), Arc::clone(&slot));
            slot
        }
    }

    fn image_entry(&self, workload: &Workload) -> (u64, Arc<Image>) {
        let slot = self.slot(&self.images, workload.name);
        slot.get_or_init(|| {
            let image = workload.image_cached();
            (image_fingerprint(&image), image)
        })
        .clone()
    }

    /// The workload's assembled image, compiled at most once.
    pub fn image(&self, workload: &Workload) -> Arc<Image> {
        self.image_entry(workload).1
    }

    /// The workload's baseline under `sim`: one profiled clean run, shared
    /// by every cell keyed on the same (workload, sim) pair.
    ///
    /// # Panics
    ///
    /// Panics when the workload does not exit cleanly with its reference
    /// output — the substrate would be broken.
    pub fn baseline(&self, workload: &Workload, sim: &SimConfig) -> Arc<Baseline> {
        let key = format!("{}|{sim:?}", workload.name);
        let slot = self.slot(&self.baselines, &key);
        Arc::clone(slot.get_or_init(|| {
            let (image_fp, image) = self.image_entry(workload);
            let (profile, run) = Profile::collect(&image, sim);
            assert_eq!(run.outcome, Outcome::Exit(0), "{} crashed", workload.name);
            assert_eq!(
                run.output,
                workload.expected_output(),
                "{} output mismatch",
                workload.name
            );
            Arc::new(Baseline {
                image,
                image_fp,
                run,
                profile,
            })
        }))
    }

    /// The workload protected under `config`, built at most once per
    /// (image content, config, profile provenance) triple.
    ///
    /// `profile_sim` selects profile-guided protection: the profile is the
    /// baseline profile collected under that simulator config (profiles
    /// are a deterministic function of image and sim, so the sim config is
    /// the profile's provenance key).
    ///
    /// # Errors
    ///
    /// Returns the stringified pipeline error; the same error is returned
    /// for every cell sharing the key, without re-running the pipeline.
    pub fn protected(
        &self,
        workload: &Workload,
        config: &ProtectionConfig,
        profile_sim: Option<&SimConfig>,
    ) -> Result<Arc<Protected>, String> {
        let (image_fp, image) = self.image_entry(workload);
        let provenance = match profile_sim {
            Some(sim) => format!("profile@{sim:?}"),
            None => "unprofiled".to_owned(),
        };
        let key = format!("{image_fp:016x}|{config:?}|{provenance}");
        let slot = self.slot(&self.protecteds, &key);
        slot.get_or_init(|| {
            let profile = profile_sim.map(|sim| self.baseline(workload, sim));
            protect(&image, config, profile.as_deref().map(|b| &b.profile))
                .map(Arc::new)
                .map_err(|e| e.to_string())
        })
        .clone()
    }

    /// Hit/miss totals so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_core::GuardConfig;

    fn rle() -> Workload {
        flexprot_workloads::by_name("rle").expect("rle kernel")
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
    }

    #[test]
    fn repeated_lookups_share_artifacts_and_count_hits() {
        let cache = ArtifactCache::new();
        let a = cache.image(&rle());
        let b = cache.image(&rle());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });

        let sim = SimConfig::default();
        let b1 = cache.baseline(&rle(), &sim);
        let b2 = cache.baseline(&rle(), &sim);
        assert!(Arc::ptr_eq(&b1, &b2));
        // baseline build did one nested image lookup (hit).
        assert_eq!(cache.stats(), CacheStats { hits: 3, misses: 2 });
    }

    #[test]
    fn protected_is_keyed_on_config_and_provenance() {
        let cache = ArtifactCache::new();
        let plain = ProtectionConfig::new();
        let guarded = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let p1 = cache.protected(&rle(), &plain, None).unwrap();
        let p2 = cache.protected(&rle(), &plain, None).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        let g = cache.protected(&rle(), &guarded, None).unwrap();
        assert!(!Arc::ptr_eq(&p1, &g));
        let sim = SimConfig::default();
        let g_prof = cache.protected(&rle(), &guarded, Some(&sim)).unwrap();
        assert!(
            !Arc::ptr_eq(&g, &g_prof),
            "profile provenance is part of the key"
        );
    }

    #[test]
    fn protect_errors_are_cached_and_reported() {
        let cache = ArtifactCache::new();
        // Watermark without guards is a config error the pipeline rejects.
        let bad = ProtectionConfig::new().with_watermark(*b"X");
        let e1 = cache.protected(&rle(), &bad, None).unwrap_err();
        let e2 = cache.protected(&rle(), &bad, None).unwrap_err();
        assert_eq!(e1, e2);
        let misses_before = cache.stats().misses;
        cache.protected(&rle(), &bad, None).unwrap_err();
        assert_eq!(cache.stats().misses, misses_before, "error came from cache");
    }
}
