//! The scoped-thread worker pool and per-job context.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use flexprot_core::Protected;
use flexprot_sim::SimConfig;
use flexprot_trace::Metrics;
use flexprot_workloads::Workload;

use crate::cache::{ArtifactCache, Baseline};
use crate::sweep::Job;

/// Worker count from the environment: `FLEXPROT_JOBS` when set (values
/// below 1 are ignored), else the available parallelism capped at 8.
pub fn default_jobs() -> usize {
    if let Ok(value) = std::env::var("FLEXPROT_JOBS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(8)
}

/// The batched execution engine: a worker pool plus the shared
/// [`ArtifactCache`] and the aggregate metrics document.
///
/// Results come back in *job order* regardless of the worker count, and
/// the aggregate metrics are built from commutative merges — so a sweep's
/// tables and metrics JSON are byte-identical under `--jobs 1` and
/// `--jobs N`.
#[derive(Debug, Default)]
pub struct Engine {
    workers: usize,
    cache: ArtifactCache,
    aggregate: Mutex<Metrics>,
    jobs_completed: AtomicUsize,
}

impl Engine {
    /// An engine with a fixed worker count (minimum 1).
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            cache: ArtifactCache::new(),
            aggregate: Mutex::new(Metrics::new()),
            jobs_completed: AtomicUsize::new(0),
        }
    }

    /// An engine sized by [`default_jobs`].
    pub fn with_default_jobs() -> Engine {
        Engine::new(default_jobs())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Runs every job through `run`, fanning out over the worker pool, and
    /// returns the results in job order.
    ///
    /// Jobs are claimed from a shared counter, so workers stay busy while
    /// any remain; each runs with its own [`JobCtx`] whose metrics are
    /// merged into the engine aggregate when the job finishes. A panicking
    /// job propagates its payload to the caller.
    pub fn run_jobs<J, T, F>(&self, jobs: &[J], run: F) -> Vec<T>
    where
        J: Sync,
        T: Send,
        F: Fn(&mut JobCtx<'_>, &J) -> T + Sync,
    {
        let total = jobs.len();
        let workers = self.workers.min(total.max(1));
        if workers <= 1 {
            return jobs.iter().map(|job| self.run_one(&run, job)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<T>> = Vec::with_capacity(total);
        results.resize_with(total, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= total {
                                break;
                            }
                            mine.push((index, self.run_one(&run, &jobs[index])));
                        }
                        mine
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(mine) => {
                        for (index, value) in mine {
                            results[index] = Some(value);
                        }
                    }
                    Err(payload) => panic::resume_unwind(payload),
                }
            }
        });
        results
            .into_iter()
            .map(|value| value.expect("every claimed job produced a result"))
            .collect()
    }

    fn run_one<J, T>(&self, run: &(impl Fn(&mut JobCtx<'_>, &J) -> T + Sync), job: &J) -> T {
        let mut ctx = JobCtx {
            cache: &self.cache,
            metrics: Metrics::new(),
        };
        let value = run(&mut ctx, job);
        self.aggregate
            .lock()
            .expect("engine aggregate metrics")
            .merge(&ctx.metrics);
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// A snapshot of the aggregate metrics: every per-job registry merged,
    /// plus the engine's own counters (`exec_jobs_completed`,
    /// `exec_cache_hits`, `exec_cache_misses`).
    ///
    /// Deliberately excludes anything scheduling-dependent (worker count,
    /// wall time), so the document is identical across thread counts.
    pub fn metrics(&self) -> Metrics {
        let mut snapshot = self
            .aggregate
            .lock()
            .expect("engine aggregate metrics")
            .clone();
        snapshot.set(
            "exec_jobs_completed",
            self.jobs_completed.load(Ordering::Relaxed) as u64,
        );
        let stats = self.cache.stats();
        snapshot.set("exec_cache_hits", stats.hits);
        snapshot.set("exec_cache_misses", stats.misses);
        snapshot
    }
}

/// What one running job sees: the shared cache plus its private metrics
/// registry (merged into the engine aggregate when the job returns).
#[derive(Debug)]
pub struct JobCtx<'a> {
    pub(crate) cache: &'a ArtifactCache,
    pub(crate) metrics: Metrics,
}

impl JobCtx<'_> {
    /// The shared artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        self.cache
    }

    /// This job's metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Merges an already-aggregated registry (e.g. a run recorder's) into
    /// this job's metrics.
    pub fn merge_metrics(&mut self, metrics: &Metrics) {
        self.metrics.merge(metrics);
    }

    /// Cached baseline lookup (see [`ArtifactCache::baseline`]).
    pub fn baseline(&self, workload: &Workload, sim: &SimConfig) -> Arc<Baseline> {
        self.cache.baseline(workload, sim)
    }

    /// The job's protected binary from the cache (see
    /// [`ArtifactCache::protected`]).
    ///
    /// # Errors
    ///
    /// Returns the stringified pipeline error.
    pub fn protected(&self, job: &Job) -> Result<Arc<Protected>, String> {
        self.cache.protected(
            &job.workload,
            &job.config,
            job.use_profile.then_some(&job.sim),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let engine = Engine::new(4);
        let jobs: Vec<usize> = (0..64).collect();
        let results = engine.run_jobs(&jobs, |_, &n| n * 2);
        assert_eq!(results, (0..64).map(|n| n * 2).collect::<Vec<_>>());
        assert_eq!(engine.metrics().counter("exec_jobs_completed"), 64);
    }

    #[test]
    fn single_worker_engine_matches_parallel_engine() {
        let jobs: Vec<u64> = (1..=40).collect();
        let run = |ctx: &mut JobCtx<'_>, &n: &u64| {
            ctx.metrics_mut().add("total", n);
            ctx.metrics_mut().observe("sample", n);
            n
        };
        let serial = Engine::new(1);
        let parallel = Engine::new(4);
        assert_eq!(serial.run_jobs(&jobs, run), parallel.run_jobs(&jobs, run));
        assert_eq!(
            serial.metrics().to_json(),
            parallel.metrics().to_json(),
            "aggregate metrics must be scheduling-independent"
        );
        assert_eq!(serial.metrics().counter("total"), (1..=40).sum::<u64>());
    }

    #[test]
    fn empty_job_list_is_fine() {
        let engine = Engine::new(4);
        let results: Vec<u32> = engine.run_jobs(&Vec::<u32>::new(), |_, &n| n);
        assert!(results.is_empty());
    }

    #[test]
    fn job_panics_propagate() {
        let engine = Engine::new(2);
        let jobs = vec![0u32, 1, 2, 3];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_jobs(&jobs, |_, &n| {
                assert_ne!(n, 2, "boom");
                n
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn env_override_parses() {
        // Can't mutate the environment safely in-process across parallel
        // tests; just sanity-check the default is at least one worker.
        assert!(default_jobs() >= 1);
        assert!(Engine::new(0).workers() == 1);
    }
}
