//! Job descriptions, the sweep-grid builder, and the standard cell
//! evaluators.

use std::sync::Arc;

use flexprot_attack::{evaluate, Attack, AttackSummary};
use flexprot_core::{Protected, ProtectionConfig};
use flexprot_sim::{Outcome, RunResult, SimConfig};
use flexprot_trace::Recorder;
use flexprot_workloads::Workload;

use crate::cache::Baseline;
use crate::engine::JobCtx;

/// One attack family to evaluate against a cell's protected binary.
#[derive(Debug, Clone)]
pub struct AttackSpec {
    /// The mutation family.
    pub attack: Attack,
    /// Randomized trials to run.
    pub trials: u32,
    /// RNG seed (each cell re-seeds, so cells are order-independent).
    pub seed: u64,
}

/// One cell of the evaluation grid: a workload under one protection
/// configuration and one simulator configuration, optionally attacked.
#[derive(Debug, Clone)]
pub struct Job {
    /// The kernel to run.
    pub workload: Workload,
    /// Display tag for the protection config axis value.
    pub config_tag: String,
    /// The protection layers to apply.
    pub config: ProtectionConfig,
    /// Display tag for the simulator config axis value.
    pub sim_tag: String,
    /// The simulated hardware.
    pub sim: SimConfig,
    /// Protect with the baseline profile collected under `sim`
    /// (profile-guided placement).
    pub use_profile: bool,
    /// Attack evaluation for this cell, if any.
    pub attack: Option<AttackSpec>,
}

impl Job {
    /// A cell with default simulator config, unprofiled, unattacked.
    pub fn new(workload: Workload, config: ProtectionConfig) -> Job {
        Job {
            workload,
            config_tag: String::new(),
            config,
            sim_tag: String::new(),
            sim: SimConfig::default(),
            use_profile: false,
            attack: None,
        }
    }

    /// Replaces the simulator config.
    pub fn with_sim(mut self, sim: SimConfig) -> Job {
        self.sim = sim;
        self
    }

    /// Enables profile-guided protection.
    pub fn profiled(mut self) -> Job {
        self.use_profile = true;
        self
    }

    /// Attaches an attack evaluation.
    pub fn with_attack(mut self, attack: AttackSpec) -> Job {
        self.attack = Some(attack);
        self
    }
}

/// Builder that expands axes into a job grid.
///
/// Expansion order is fixed — workload-major, then config, then sim, then
/// attack — so a grid's job list (and therefore the engine's result order)
/// is deterministic. Empty axes default to a single identity value
/// (unprotected config, default sim, no attack).
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    workloads: Vec<Workload>,
    configs: Vec<(String, ProtectionConfig)>,
    sims: Vec<(String, SimConfig)>,
    attacks: Vec<AttackSpec>,
    use_profile: bool,
}

impl SweepSpec {
    /// An empty spec (expands to no jobs until workloads are added).
    pub fn new() -> SweepSpec {
        SweepSpec::default()
    }

    /// Adds workloads to the workload axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> SweepSpec {
        self.workloads.extend(workloads);
        self
    }

    /// Adds one tagged value to the protection-config axis.
    pub fn config(mut self, tag: impl Into<String>, config: ProtectionConfig) -> SweepSpec {
        self.configs.push((tag.into(), config));
        self
    }

    /// Adds tagged values to the protection-config axis.
    pub fn configs(
        mut self,
        configs: impl IntoIterator<Item = (String, ProtectionConfig)>,
    ) -> SweepSpec {
        self.configs.extend(configs);
        self
    }

    /// Adds one tagged value to the simulator-config axis.
    pub fn sim(mut self, tag: impl Into<String>, sim: SimConfig) -> SweepSpec {
        self.sims.push((tag.into(), sim));
        self
    }

    /// Adds one attack to the attack axis.
    pub fn attack(mut self, spec: AttackSpec) -> SweepSpec {
        self.attacks.push(spec);
        self
    }

    /// Protect every cell with its baseline profile (collected under the
    /// cell's sim config).
    pub fn profiled(mut self) -> SweepSpec {
        self.use_profile = true;
        self
    }

    /// Expands the axes into the job grid, workload-major.
    pub fn jobs(&self) -> Vec<Job> {
        let default_configs = [("none".to_owned(), ProtectionConfig::new())];
        let default_sims = [("default".to_owned(), SimConfig::default())];
        let configs: &[(String, ProtectionConfig)] = if self.configs.is_empty() {
            &default_configs
        } else {
            &self.configs
        };
        let sims: &[(String, SimConfig)] = if self.sims.is_empty() {
            &default_sims
        } else {
            &self.sims
        };
        let mut jobs = Vec::new();
        for workload in &self.workloads {
            for (config_tag, config) in configs {
                for (sim_tag, sim) in sims {
                    let base = Job {
                        workload: *workload,
                        config_tag: config_tag.clone(),
                        config: config.clone(),
                        sim_tag: sim_tag.clone(),
                        sim: sim.clone(),
                        use_profile: self.use_profile,
                        attack: None,
                    };
                    if self.attacks.is_empty() {
                        jobs.push(base);
                    } else {
                        for spec in &self.attacks {
                            jobs.push(Job {
                                attack: Some(spec.clone()),
                                ..base.clone()
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

/// Cycle components of one run, read from the trace histograms: the pure
/// memory miss path versus the stall attributable to the decrypt unit.
#[derive(Debug, Clone, Copy)]
pub struct CycleBreakdown {
    /// Cycles spent on I-cache line fills (memory latency + burst), before
    /// any monitor penalty.
    pub miss_fill_cycles: u64,
    /// Extra fill cycles charged by the secure monitor's decrypt unit.
    pub decrypt_stall_cycles: u64,
}

/// Everything a standard protected-run cell produced.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The shared baseline artifacts for (workload, sim).
    pub baseline: Arc<Baseline>,
    /// The shared protected binary.
    pub protected: Arc<Protected>,
    /// The protected run.
    pub run: RunResult,
    /// Trace-derived cycle split of the protected run.
    pub breakdown: CycleBreakdown,
}

impl CellResult {
    /// Runtime overhead over the baseline, in percent.
    pub fn overhead_pct(&self) -> f64 {
        let base = self.baseline.run.stats.cycles as f64;
        (self.run.stats.cycles as f64 - base) / base * 100.0
    }
}

impl JobCtx<'_> {
    /// Runs a protected binary under `sim` with a recorder attached,
    /// asserting semantic preservation, and merges the run's metrics into
    /// this job's registry.
    ///
    /// # Panics
    ///
    /// Panics when the run does not exit cleanly with the workload's
    /// reference output — protection broke the program.
    pub fn run_protected(
        &mut self,
        workload: &Workload,
        protected: &Protected,
        sim: &SimConfig,
    ) -> (RunResult, CycleBreakdown) {
        let (sink, recorder) = Recorder::new().shared();
        let run = protected.run_traced(sim.clone(), &sink);
        assert_eq!(
            run.outcome,
            Outcome::Exit(0),
            "{} failed under protection",
            workload.name
        );
        assert_eq!(
            run.output,
            workload.expected_output(),
            "{} output corrupted by protection",
            workload.name
        );
        let recorder = recorder.borrow();
        let metrics = recorder.metrics();
        let breakdown = CycleBreakdown {
            miss_fill_cycles: metrics
                .histogram("icache_fill_cycles")
                .map_or(0, |h| h.sum()),
            decrypt_stall_cycles: metrics
                .histogram("decrypt_stall_cycles")
                .map_or(0, |h| h.sum()),
        };
        self.merge_metrics(metrics);
        (run, breakdown)
    }

    /// Evaluates one standard cell: cached baseline, cached protected
    /// build, one traced protected run with semantic assertions.
    ///
    /// # Panics
    ///
    /// Panics when protection fails to build or breaks the program.
    pub fn run_cell(&mut self, job: &Job) -> CellResult {
        let baseline = self.baseline(&job.workload, &job.sim);
        let protected = self
            .protected(job)
            .unwrap_or_else(|e| panic!("{}: protect failed: {e}", job.workload.name));
        let (run, breakdown) = self.run_protected(&job.workload, &protected, &job.sim);
        CellResult {
            baseline,
            protected,
            run,
            breakdown,
        }
    }

    /// Evaluates one attack cell: the job's attack family against its
    /// cached protected binary, with a fuel limit derived from the cached
    /// baseline (a few times the clean instruction count). Attack outcome
    /// counters land in this job's metrics.
    ///
    /// # Panics
    ///
    /// Panics when the job carries no [`AttackSpec`] or protection fails.
    pub fn attack_cell(&mut self, job: &Job) -> AttackSummary {
        let spec = job.attack.as_ref().expect("attack job needs an AttackSpec");
        let baseline = self.baseline(&job.workload, &job.sim);
        let protected = self
            .protected(job)
            .unwrap_or_else(|e| panic!("{}: protect failed: {e}", job.workload.name));
        let fueled = SimConfig {
            max_instructions: baseline.run.stats.instructions * 4 + 10_000,
            ..job.sim.clone()
        };
        let summary = evaluate(
            &protected,
            &job.workload.expected_output(),
            spec.attack,
            spec.trials,
            spec.seed,
            &fueled,
        );
        summary.export_metrics(self.metrics_mut());
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use flexprot_core::GuardConfig;

    fn kernels(names: &[&str]) -> Vec<Workload> {
        names
            .iter()
            .map(|n| flexprot_workloads::by_name(n).expect("kernel"))
            .collect()
    }

    #[test]
    fn grid_expands_workload_major_with_defaults() {
        let spec = SweepSpec::new()
            .workloads(kernels(&["rle", "qsort"]))
            .config("a", ProtectionConfig::new())
            .config(
                "b",
                ProtectionConfig::new().with_guards(GuardConfig::with_density(0.5)),
            );
        let jobs = spec.jobs();
        let tags: Vec<(&str, &str)> = jobs
            .iter()
            .map(|j| (j.workload.name, j.config_tag.as_str()))
            .collect();
        assert_eq!(
            tags,
            vec![("rle", "a"), ("rle", "b"), ("qsort", "a"), ("qsort", "b")]
        );
        assert!(jobs
            .iter()
            .all(|j| j.sim_tag == "default" && j.attack.is_none()));
    }

    #[test]
    fn empty_config_axis_defaults_to_unprotected() {
        let jobs = SweepSpec::new().workloads(kernels(&["rle"])).jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].config_tag, "none");
        assert_eq!(jobs[0].config, ProtectionConfig::new());
    }

    #[test]
    fn attack_axis_multiplies_cells() {
        let spec = SweepSpec::new()
            .workloads(kernels(&["rle"]))
            .attack(AttackSpec {
                attack: Attack::BitFlip,
                trials: 2,
                seed: 1,
            })
            .attack(AttackSpec {
                attack: Attack::NopOut,
                trials: 2,
                seed: 1,
            });
        assert_eq!(spec.jobs().len(), 2);
    }

    #[test]
    fn run_cell_shares_artifacts_across_cells() {
        let engine = Engine::new(2);
        let spec = SweepSpec::new()
            .workloads(kernels(&["rle"]))
            .config(
                "d=0.25",
                ProtectionConfig::new().with_guards(GuardConfig::with_density(0.25)),
            )
            .config(
                "d=1.0",
                ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
            );
        let cells = engine.run_jobs(&spec.jobs(), |ctx, job| ctx.run_cell(job));
        assert_eq!(cells.len(), 2);
        assert!(Arc::ptr_eq(&cells[0].baseline, &cells[1].baseline));
        assert!(cells[0].overhead_pct() >= 0.0);
        assert!(cells[1].run.stats.cycles >= cells[0].run.stats.cycles);
        let m = engine.metrics();
        assert!(m.counter("exec_cache_hits") > 0, "baseline must be shared");
        assert!(
            m.counter("instructions_committed") > 0,
            "run metrics merged"
        );
    }

    #[test]
    fn attack_cell_exports_outcome_counters() {
        let engine = Engine::new(1);
        let spec = SweepSpec::new()
            .workloads(kernels(&["rle"]))
            .config(
                "guards",
                ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
            )
            .attack(AttackSpec {
                attack: Attack::BitFlip,
                trials: 4,
                seed: 7,
            });
        let summaries = engine.run_jobs(&spec.jobs(), |ctx, job| ctx.attack_cell(job));
        assert_eq!(summaries.len(), 1);
        let m = engine.metrics();
        assert_eq!(
            m.counter("attack_trials_applied"),
            u64::from(summaries[0].applied)
        );
    }
}
