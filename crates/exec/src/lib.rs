//! Batched parallel execution of protection-evaluation grids.
//!
//! The evaluation is a grid of simulations — guard density × decrypt
//! latency × I-cache geometry × workload × attack — and every sweep used
//! to re-compile and re-protect identical (workload, config) pairs
//! serially. This crate turns the evaluate-many-configurations loop into
//! an engineered subsystem:
//!
//! * a [`Job`] describes one (workload, [`ProtectionConfig`],
//!   [`SimConfig`], attack) cell, and a [`SweepSpec`] expands axes into a
//!   job grid in a fixed workload-major order;
//! * an [`Engine`] runs jobs on a scoped-thread worker pool (std-only;
//!   `--jobs N` or `FLEXPROT_JOBS`), collecting results in *job order* so
//!   output is deterministic whatever the thread count;
//! * an [`ArtifactCache`] memoizes compiled images, profiled baselines and
//!   protected binaries behind content-addressed keys, shared via `Arc`
//!   across every cell that needs them;
//! * per-job [`flexprot_trace`] recorders merge into one aggregate
//!   [`Metrics`] document (commutative counter/histogram merges), so the
//!   aggregate too is independent of scheduling.
//!
//! # Example
//!
//! ```
//! use flexprot_exec::{Engine, SweepSpec};
//!
//! let engine = Engine::new(2);
//! let spec = SweepSpec::new()
//!     .workloads(flexprot_workloads::by_name("rle"));
//! let cells = engine.run_jobs(&spec.jobs(), |ctx, job| ctx.run_cell(job).run.stats.cycles);
//! assert_eq!(cells.len(), 1);
//! assert!(engine.metrics().counter("exec_jobs_completed") >= 1);
//! ```

mod cache;
mod engine;
mod sweep;

pub use cache::{fingerprint, ArtifactCache, Baseline, CacheStats};
pub use engine::{default_jobs, Engine, JobCtx};
pub use sweep::{AttackSpec, CellResult, CycleBreakdown, Job, SweepSpec};

// Re-exported so engine users can build jobs without extra imports.
pub use flexprot_core::ProtectionConfig;
pub use flexprot_sim::SimConfig;
pub use flexprot_trace::Metrics;
