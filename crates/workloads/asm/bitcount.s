# bitcount — Kernighan popcount over 1024 LCG words, printed as an integer.
# Workload class: data-dependent inner-loop trip counts (the classic
# MiBench bitcount kernel).
        .data
words:  .space 4096             # 1024 words
        .text
main:   jal  fill
        jal  count
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall

fill:   li   $t9, 808017        # LCG state
        la   $t0, words
        li   $t1, 0
        li   $t2, 1024
floop:  li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        sw   $t9, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        blt  $t1, $t2, floop
        jr   $ra

# count() -> $v0: total set bits.
count:  la   $s0, words
        li   $s1, 0             # i
        li   $s2, 1024
        li   $v0, 0
wloop:  lw   $t0, 0($s0)
bloop:  beqz $t0, bdone
        addi $t1, $t0, -1
        and  $t0, $t0, $t1      # clear lowest set bit
        addi $v0, $v0, 1
        b    bloop
bdone:  addi $s0, $s0, 4
        addi $s1, $s1, 1
        blt  $s1, $s2, wloop
        jr   $ra
