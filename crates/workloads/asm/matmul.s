# matmul — 12x12 integer matrix multiply, xor-checksum of the product.
# Workload class: dense loop nest (DSP/linear algebra codes).
        .data
mata:   .space 576              # 12*12 words
matb:   .space 576
matc:   .space 576
        .text
main:   jal  fill
        jal  mult
        jal  check
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall

# fill(): a[i] and b[i] get small LCG values.
fill:   li   $t9, 54321         # LCG state
        la   $s0, mata
        la   $s1, matb
        li   $t0, 0             # i
        li   $t1, 144
floop:  li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        andi $t2, $t9, 0xFF
        sw   $t2, 0($s0)
        li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        andi $t2, $t9, 0xFF
        sw   $t2, 0($s1)
        addi $s0, $s0, 4
        addi $s1, $s1, 4
        addi $t0, $t0, 1
        blt  $t0, $t1, floop
        jr   $ra

# mult(): c = a * b, wrapping arithmetic.
mult:   li   $s0, 0             # i
        li   $s7, 12            # N
iloop:  li   $s1, 0             # j
jloop:  li   $s2, 0             # k
        li   $s3, 0             # acc
kloop:  mul  $t0, $s0, $s7      # a[i*N+k]
        addu $t0, $t0, $s2
        sll  $t0, $t0, 2
        la   $t1, mata
        addu $t1, $t1, $t0
        lw   $t2, 0($t1)
        mul  $t0, $s2, $s7      # b[k*N+j]
        addu $t0, $t0, $s1
        sll  $t0, $t0, 2
        la   $t1, matb
        addu $t1, $t1, $t0
        lw   $t3, 0($t1)
        mul  $t4, $t2, $t3
        addu $s3, $s3, $t4
        addi $s2, $s2, 1
        blt  $s2, $s7, kloop
        mul  $t0, $s0, $s7      # c[i*N+j] = acc
        addu $t0, $t0, $s1
        sll  $t0, $t0, 2
        la   $t1, matc
        addu $t1, $t1, $t0
        sw   $s3, 0($t1)
        addi $s1, $s1, 1
        blt  $s1, $s7, jloop
        addi $s0, $s0, 1
        blt  $s0, $s7, iloop
        jr   $ra

# check() -> $v0: xor of all product words, rotated by index parity.
check:  la   $s0, matc
        li   $t0, 0
        li   $t1, 144
        li   $v0, 0
cloop:  lw   $t2, 0($s0)
        xor  $v0, $v0, $t2
        sll  $t3, $v0, 1
        srl  $t4, $v0, 31
        or   $v0, $t3, $t4      # rotate left 1
        addi $s0, $s0, 4
        addi $t0, $t0, 1
        blt  $t0, $t1, cloop
        jr   $ra
