# rle — run-length encode 512 bytes, decode, self-verify, report.
# Workload class: byte-granular codec with verification pass
# (compression codes). Prints "<enclen> <ok> <checksum-hex>".
        .data
src:    .space 512
enc:    .space 1088             # worst case 2*512 + slack
dec:    .space 512
        .text
main:   jal  fill
        jal  encode
        move $s6, $v0           # encoded length
        jal  decode
        jal  verify
        move $s7, $v0           # ok flag
        move $a0, $s6
        li   $v0, 1
        syscall
        li   $a0, ' '
        li   $v0, 11
        syscall
        move $a0, $s7
        li   $v0, 1
        syscall
        li   $a0, ' '
        li   $v0, 11
        syscall
        jal  checksum
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall

# fill(): small alphabet so real runs appear.
fill:   li   $t9, 2024          # LCG state
        la   $t0, src
        li   $t1, 0
        li   $t2, 512
filp:   li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        srl  $t3, $t9, 13
        andi $t3, $t3, 3
        sb   $t3, 0($t0)
        addi $t0, $t0, 1
        addi $t1, $t1, 1
        blt  $t1, $t2, filp
        jr   $ra

# encode() -> $v0: bytes written to enc as (count, value) pairs.
encode: la   $s0, src
        la   $s1, enc
        li   $s2, 0             # i
        li   $s3, 512
        li   $v0, 0             # out length
eloop:  bge  $s2, $s3, edone
        lbu  $t0, 0($s0)        # value
        li   $t1, 1             # run length
erun:   addu $t2, $s2, $t1
        bge  $t2, $s3, estop
        li   $t4, 255
        bge  $t1, $t4, estop
        addu $t3, $s0, $t1
        lbu  $t3, 0($t3)
        bne  $t3, $t0, estop
        addi $t1, $t1, 1
        b    erun
estop:  sb   $t1, 0($s1)
        sb   $t0, 1($s1)
        addi $s1, $s1, 2
        addi $v0, $v0, 2
        addu $s0, $s0, $t1
        addu $s2, $s2, $t1
        b    eloop
edone:  jr   $ra

# decode(): expand enc (s6 bytes) back into dec.
decode: la   $s0, enc
        la   $s1, dec
        li   $s2, 0             # consumed
dloop:  bge  $s2, $s6, ddone
        lbu  $t0, 0($s0)        # count
        lbu  $t1, 1($s0)        # value
        addi $s0, $s0, 2
        addi $s2, $s2, 2
drep:   beqz $t0, dloop
        sb   $t1, 0($s1)
        addi $s1, $s1, 1
        addi $t0, $t0, -1
        b    drep
ddone:  jr   $ra

# verify() -> $v0: 1 when dec == src byte-for-byte.
verify: la   $t0, src
        la   $t1, dec
        li   $t2, 0
        li   $t3, 512
vloop:  lbu  $t4, 0($t0)
        lbu  $t5, 0($t1)
        bne  $t4, $t5, vfail
        addi $t0, $t0, 1
        addi $t1, $t1, 1
        addi $t2, $t2, 1
        blt  $t2, $t3, vloop
        li   $v0, 1
        jr   $ra
vfail:  li   $v0, 0
        jr   $ra

# checksum() -> $v0: djb2 over the encoded stream.
checksum:
        la   $t0, enc
        li   $t1, 0
        li   $v0, 5381
ckloop: bge  $t1, $s6, ckdone
        lbu  $t2, 0($t0)
        sll  $t3, $v0, 5
        addu $v0, $v0, $t3      # h *= 33
        addu $v0, $v0, $t2
        addi $t0, $t0, 1
        addi $t1, $t1, 1
        b    ckloop
ckdone: jr   $ra
