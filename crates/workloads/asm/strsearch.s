# strsearch — naive substring search over 2048 bytes of 4-letter text.
# Workload class: nested byte-compare loops (parsing/scanning codes).
# Prints the number of occurrences of the pattern.
        .data
text:   .space 2048
pat:    .asciiz "abca"
        .text
main:   jal  fill
        jal  search
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall

fill:   li   $t9, 424242        # LCG state
        la   $t0, text
        li   $t1, 0
        li   $t2, 2048
floop:  li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        srl  $t3, $t9, 10
        andi $t3, $t3, 3
        addi $t3, $t3, 'a'
        sb   $t3, 0($t0)
        addi $t0, $t0, 1
        addi $t1, $t1, 1
        blt  $t1, $t2, floop
        jr   $ra

# search() -> $v0: occurrence count of pat (length 4) in text.
search: li   $v0, 0
        li   $s0, 0             # i
        li   $s1, 2045          # 2048 - 4 + 1
siloop: li   $s2, 0             # j
sjloop: la   $t0, pat
        addu $t0, $t0, $s2
        lbu  $t1, 0($t0)
        beqz $t1, smatch        # hit NUL: full match
        la   $t0, text
        addu $t0, $t0, $s0
        addu $t0, $t0, $s2
        lbu  $t2, 0($t0)
        bne  $t1, $t2, snext
        addi $s2, $s2, 1
        b    sjloop
smatch: addi $v0, $v0, 1
snext:  addi $s0, $s0, 1
        blt  $s0, $s1, siloop
        jr   $ra
