# qsort — recursive quicksort (Lomuto) of 128 words, order-weighted checksum.
# Workload class: control-heavy recursion with data-dependent branches.
        .data
arr:    .space 512              # 128 words
        .text
main:   jal  fill
        la   $a0, arr
        li   $a1, 0             # lo
        li   $a2, 127           # hi
        jal  qsort
        jal  check
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall

fill:   li   $t9, 99991         # LCG state
        la   $t0, arr
        li   $t1, 0
        li   $t2, 128
floop:  li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        srl  $t3, $t9, 8
        andi $t3, $t3, 0xFFFF
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        blt  $t1, $t2, floop
        jr   $ra

# qsort(a0=base, a1=lo, a2=hi), recursive.
qsort:  bge  $a1, $a2, qdone
        addi $sp, $sp, -16
        sw   $ra, 12($sp)
        sw   $a1, 8($sp)
        sw   $a2, 4($sp)
        # partition: pivot = a[hi]
        sll  $t0, $a2, 2
        addu $t0, $t0, $a0
        lw   $t1, 0($t0)        # pivot
        addi $t2, $a1, -1       # i = lo-1
        move $t3, $a1           # j = lo
ploop:  bge  $t3, $a2, pdone
        sll  $t4, $t3, 2
        addu $t4, $t4, $a0
        lw   $t5, 0($t4)        # a[j]
        bgt  $t5, $t1, pskip
        addi $t2, $t2, 1        # i++
        sll  $t6, $t2, 2
        addu $t6, $t6, $a0
        lw   $t7, 0($t6)        # swap a[i], a[j]
        sw   $t5, 0($t6)
        sw   $t7, 0($t4)
pskip:  addi $t3, $t3, 1
        b    ploop
pdone:  addi $t2, $t2, 1        # p = i+1
        sll  $t4, $t2, 2
        addu $t4, $t4, $a0
        lw   $t5, 0($t4)        # swap a[p], a[hi]
        sll  $t6, $a2, 2
        addu $t6, $t6, $a0
        lw   $t7, 0($t6)
        sw   $t7, 0($t4)
        sw   $t5, 0($t6)
        sw   $t2, 0($sp)        # save p
        # qsort(lo, p-1)
        addi $a2, $t2, -1
        jal  qsort
        # qsort(p+1, hi)
        lw   $t2, 0($sp)
        lw   $a1, 8($sp)        # (unused: lo) keep frame symmetric
        addi $a1, $t2, 1
        lw   $a2, 4($sp)
        jal  qsort
        lw   $ra, 12($sp)
        addi $sp, $sp, 16
qdone:  jr   $ra

# check() -> $v0: sum of a[i] * (i+1), wrapping.
check:  la   $t0, arr
        li   $t1, 0
        li   $t2, 128
        li   $v0, 0
closs:  lw   $t3, 0($t0)
        addi $t4, $t1, 1
        mul  $t5, $t3, $t4
        addu $v0, $v0, $t5
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        blt  $t1, $t2, closs
        jr   $ra
