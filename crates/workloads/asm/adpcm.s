# adpcm — delta encoder/reconstructor over 512 samples; prints the
# accumulated squared reconstruction error and an output checksum.
# Workload class: feedback-loop signal codec (the MediaBench adpcm kernel).
# Prints "<err-hex> <sum-hex>".
        .data
samp:   .space 2048             # 512 sample words
        .text
main:   jal  fill
        jal  codec
        move $s6, $v0           # err acc
        move $s7, $v1           # checksum
        move $a0, $s6
        li   $v0, 34
        syscall
        li   $a0, ' '
        li   $v0, 11
        syscall
        move $a0, $s7
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall

fill:   li   $t9, 161803        # LCG state
        la   $t0, samp
        li   $t1, 0
        li   $t2, 512
floop:  li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        srl  $t3, $t9, 12
        andi $t3, $t3, 0x3FF    # 10-bit samples
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        blt  $t1, $t2, floop
        jr   $ra

# codec() -> $v0 = sum of squared errors, $v1 = xor of quantized codes.
codec:  la   $s0, samp
        li   $s1, 0             # i
        li   $s2, 512
        li   $s3, 0             # predictor
        li   $v0, 0             # err acc
        li   $v1, 0             # code checksum
cloop:  lw   $t0, 0($s0)        # s
        sub  $t1, $t0, $s3      # delta
        sra  $t2, $t1, 3        # quantize: q = delta >> 3
        li   $t3, 127           # clamp q to [-128, 127]
        ble  $t2, $t3, cl1
        move $t2, $t3
cl1:    li   $t3, -128
        bge  $t2, $t3, cl2
        move $t2, $t3
cl2:    xor  $v1, $v1, $t2
        sll  $t4, $t2, 3        # reconstruct: p += q << 3
        addu $s3, $s3, $t4
        sub  $t5, $t0, $s3      # err = s - p
        mul  $t6, $t5, $t5
        addu $v0, $v0, $t6
        addi $s0, $s0, 4
        addi $s1, $s1, 1
        blt  $s1, $s2, cloop
        jr   $ra
