# dijkstra — single-source shortest paths on a 16-node dense graph (O(n^2)).
# Workload class: pointer/array chasing with data-dependent control
# (network/route codes).
        .data
adj:    .space 1024             # 16*16 words
dist:   .space 64               # 16 words
vis:    .space 64               # 16 words
        .text
main:   jal  build
        jal  solve
        jal  check
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall

# build(): edge weights 1..256 from the LCG; diagonal zero.
build:  li   $t9, 7777          # LCG state
        la   $t0, adj
        li   $t1, 0             # i
        li   $t7, 16
biloop: li   $t2, 0             # j
bjloop: li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        srl  $t3, $t9, 4
        andi $t3, $t3, 0xFF
        addi $t3, $t3, 1
        bne  $t1, $t2, bstore
        li   $t3, 0             # self-loop weight 0
bstore: sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t2, $t2, 1
        blt  $t2, $t7, bjloop
        addi $t1, $t1, 1
        blt  $t1, $t7, biloop
        jr   $ra

# solve(): classic O(n^2) Dijkstra from node 0.
solve:  la   $t0, dist          # init dist = INF, vis = 0
        la   $t1, vis
        li   $t2, 0
        li   $t7, 16
        li   $t3, 0x7FFFFFFF
siloop: sw   $t3, 0($t0)
        sw   $zero, 0($t1)
        addi $t0, $t0, 4
        addi $t1, $t1, 4
        addi $t2, $t2, 1
        blt  $t2, $t7, siloop
        la   $t0, dist
        sw   $zero, 0($t0)      # dist[0] = 0
        li   $s0, 0             # round
round:  # find unvisited min
        li   $s1, -1            # best index
        li   $s2, 0x7FFFFFFF    # best dist
        li   $t2, 0
scan:   sll  $t3, $t2, 2
        la   $t4, vis
        addu $t4, $t4, $t3
        lw   $t5, 0($t4)
        bnez $t5, snext
        la   $t4, dist
        addu $t4, $t4, $t3
        lw   $t5, 0($t4)
        bge  $t5, $s2, snext
        move $s2, $t5
        move $s1, $t2
snext:  addi $t2, $t2, 1
        blt  $t2, $t7, scan
        bltz $s1, sdone         # no reachable node left
        # mark visited
        sll  $t3, $s1, 2
        la   $t4, vis
        addu $t4, $t4, $t3
        li   $t5, 1
        sw   $t5, 0($t4)
        # relax neighbours
        li   $t2, 0             # j
relax:  beq  $t2, $s1, rnext
        sll  $t3, $s1, 2
        li   $t4, 16
        mul  $t3, $s1, $t4      # adj[best*16 + j]
        addu $t3, $t3, $t2
        sll  $t3, $t3, 2
        la   $t4, adj
        addu $t4, $t4, $t3
        lw   $t5, 0($t4)        # w
        addu $t6, $s2, $t5      # cand = dist[best] + w
        sll  $t3, $t2, 2
        la   $t4, dist
        addu $t4, $t4, $t3
        lw   $t5, 0($t4)
        bge  $t6, $t5, rnext
        sw   $t6, 0($t4)
rnext:  addi $t2, $t2, 1
        blt  $t2, $t7, relax
        addi $s0, $s0, 1
        blt  $s0, $t7, round
sdone:  jr   $ra

# check() -> $v0: xor of all final distances.
check:  la   $t0, dist
        li   $t1, 0
        li   $t2, 16
        li   $v0, 0
cxloop: lw   $t3, 0($t0)
        xor  $v0, $v0, $t3
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        blt  $t1, $t2, cxloop
        jr   $ra
