# hash — FNV-1a over 4096 LCG bytes, printed in hex.
# Workload class: long dependent-chain arithmetic (hashing/indexing codes).
        .text
main:   jal  fnv
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall

# fnv() -> $v0: FNV-1a 32-bit digest.
fnv:    li   $v0, 0x811C9DC5    # offset basis
        li   $s3, 65537         # LCG state
        li   $s1, 0
        li   $s2, 4096
hloop:  li   $t8, 1664525
        mul  $s3, $s3, $t8
        li   $t8, 0x3C6EF35F
        addu $s3, $s3, $t8
        srl  $t0, $s3, 24       # byte
        xor  $v0, $v0, $t0
        li   $t8, 0x01000193    # FNV prime
        mul  $v0, $v0, $t8
        addi $s1, $s1, 1
        blt  $s1, $s2, hloop
        jr   $ra
