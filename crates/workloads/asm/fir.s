# fir — 8-tap FIR filter over 256 samples, xor checksum of outputs.
# Workload class: streaming multiply-accumulate (audio/DSP codes).
        .data
xs:     .space 1024             # 256 input words
taps:   .word 3, -1, 4, 1, -5, 9, -2, 6
        .text
main:   jal  fill
        jal  fir
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall

fill:   li   $t9, 31337         # LCG state
        la   $t0, xs
        li   $t1, 0
        li   $t2, 256
floop:  li   $t8, 1664525
        mul  $t9, $t9, $t8
        li   $t8, 0x3C6EF35F
        addu $t9, $t9, $t8
        srl  $t3, $t9, 16
        andi $t3, $t3, 0x3FF
        sw   $t3, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, 1
        blt  $t1, $t2, floop
        jr   $ra

# fir() -> $v0: xor over y[n] = sum_k taps[k] * x[n-k] for n in 8..256.
fir:    li   $v0, 0
        li   $s0, 8             # n
        li   $s1, 256
nloop:  li   $s2, 0             # k
        li   $s3, 0             # acc
        li   $s4, 8
tloop:  sub  $t0, $s0, $s2      # x[n-k]
        sll  $t0, $t0, 2
        la   $t1, xs
        addu $t1, $t1, $t0
        lw   $t2, 0($t1)
        sll  $t0, $s2, 2        # taps[k]
        la   $t1, taps
        addu $t1, $t1, $t0
        lw   $t3, 0($t1)
        mul  $t4, $t2, $t3
        addu $s3, $s3, $t4
        addi $s2, $s2, 1
        blt  $s2, $s4, tloop
        xor  $v0, $v0, $s3
        addi $s0, $s0, 1
        blt  $s0, $s1, nloop
        jr   $ra
