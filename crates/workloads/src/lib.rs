//! Embedded-benchmark kernels for the protection evaluation.
//!
//! Ten kernels written in SP32 assembly, spanning the workload classes the
//! original evaluation drew from MediaBench/MiBench-style suites: checksum
//! and hashing loops, dense linear algebra, sorting, graph search, DSP
//! filtering, codecs and byte scanning. Each kernel generates its input
//! deterministically with an in-kernel LCG, and each has a Rust *reference
//! implementation* that computes the exact console output the simulated
//! kernel must print — the correctness oracle for every protection
//! configuration.
//!
//! # Example
//!
//! ```
//! use flexprot_sim::{Machine, Outcome, SimConfig};
//!
//! let workload = flexprot_workloads::by_name("crc32").expect("known kernel");
//! let image = workload.image();
//! let result = Machine::new(&image, SimConfig::default()).run();
//! assert_eq!(result.outcome, Outcome::Exit(0));
//! assert_eq!(result.output, workload.expected_output());
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use flexprot_isa::Image;

/// How a kernel's assembly source is obtained.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// Embedded `.s` file.
    Static(&'static str),
    /// Source synthesized at run time (e.g. the `callgrid` code-footprint
    /// stressor).
    Generated(fn() -> String),
}

/// One benchmark kernel.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name, e.g. `"crc32"`.
    pub name: &'static str,
    /// One-line description of the workload class.
    pub description: &'static str,
    source: Source,
    expected: fn() -> String,
}

impl Workload {
    /// The SP32 assembly source.
    pub fn source(&self) -> String {
        match self.source {
            Source::Static(text) => text.to_owned(),
            Source::Generated(make) => make(),
        }
    }

    /// Assembles the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a build bug).
    pub fn image(&self) -> Image {
        flexprot_asm::assemble_or_panic(&self.source())
    }

    /// The exact console output a correct run must produce, computed by the
    /// Rust reference implementation.
    pub fn expected_output(&self) -> String {
        (self.expected)()
    }

    /// The assembled kernel from a process-wide cache, compiled at most
    /// once and shared via `Arc` — the cache-friendly entry point the batch
    /// execution engine builds on. Kernel sources are fixed per name (the
    /// generated ones are deterministic), so the cache key is the name.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to assemble (a build bug).
    pub fn image_cached(&self) -> Arc<Image> {
        static CACHE: OnceLock<Mutex<HashMap<&'static str, Arc<Image>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(image) = cache.lock().expect("workload image cache").get(self.name) {
            return Arc::clone(image);
        }
        // Assemble outside the lock; a racing double-compile is harmless
        // (deterministic result) and the first insertion wins.
        let image = Arc::new(self.image());
        Arc::clone(
            cache
                .lock()
                .expect("workload image cache")
                .entry(self.name)
                .or_insert(image),
        )
    }
}

/// All kernels, in canonical order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "crc32",
            description: "bitwise CRC-32 over 4 KiB (checksum loop)",
            source: Source::Static(include_str!("../asm/crc32.s")),
            expected: reference::crc32,
        },
        Workload {
            name: "matmul",
            description: "12x12 integer matrix multiply (dense loop nest)",
            source: Source::Static(include_str!("../asm/matmul.s")),
            expected: reference::matmul,
        },
        Workload {
            name: "qsort",
            description: "recursive quicksort of 128 words (control-heavy)",
            source: Source::Static(include_str!("../asm/qsort.s")),
            expected: reference::qsort,
        },
        Workload {
            name: "dijkstra",
            description: "O(n^2) shortest paths, 16 nodes (graph search)",
            source: Source::Static(include_str!("../asm/dijkstra.s")),
            expected: reference::dijkstra,
        },
        Workload {
            name: "fir",
            description: "8-tap FIR filter over 256 samples (DSP MAC loop)",
            source: Source::Static(include_str!("../asm/fir.s")),
            expected: reference::fir,
        },
        Workload {
            name: "rle",
            description: "run-length codec with self-verification",
            source: Source::Static(include_str!("../asm/rle.s")),
            expected: reference::rle,
        },
        Workload {
            name: "strsearch",
            description: "naive substring search over 2 KiB (byte scanning)",
            source: Source::Static(include_str!("../asm/strsearch.s")),
            expected: reference::strsearch,
        },
        Workload {
            name: "bitcount",
            description: "Kernighan popcount over 1024 words",
            source: Source::Static(include_str!("../asm/bitcount.s")),
            expected: reference::bitcount,
        },
        Workload {
            name: "hash",
            description: "FNV-1a over 4 KiB (dependent-chain arithmetic)",
            source: Source::Static(include_str!("../asm/hash.s")),
            expected: reference::hash,
        },
        Workload {
            name: "adpcm",
            description: "delta codec with reconstruction feedback",
            source: Source::Static(include_str!("../asm/adpcm.s")),
            expected: reference::adpcm,
        },
        Workload {
            name: "callgrid",
            description: "64-way dispatch over generated functions (I-cache stressor)",
            source: Source::Generated(callgrid::source),
            expected: callgrid::expected,
        },
        Workload {
            name: "queens",
            description: "8-queens backtracking (MiniC-compiled, deep recursion)",
            source: Source::Generated(minic::queens_source),
            expected: minic::queens_expected,
        },
        Workload {
            name: "sieve",
            description: "sieve of Eratosthenes to 2048 (MiniC-compiled)",
            source: Source::Generated(minic::sieve_source),
            expected: minic::sieve_expected,
        },
        Workload {
            name: "collatz",
            description: "longest Collatz chain below 1000 (MiniC-compiled)",
            source: Source::Generated(minic::collatz_source),
            expected: minic::collatz_expected,
        },
    ]
}

/// Workloads authored in MiniC and compiled through `flexprot-cc` — they
/// exercise compiler-shaped code (frame traffic, call-heavy control flow)
/// rather than hand-scheduled assembly, and they prove the full
/// source → assembly → image → protection chain.
mod minic {
    const QUEENS: &str = r#"
        int cols[16];
        int diag1[32];
        int diag2[32];
        int count;
        int n;

        int solve(int row) {
            if (row == n) {
                count = count + 1;
                return 0;
            }
            for (int c = 0; c < n; c = c + 1) {
                if (!cols[c] && !diag1[row + c] && !diag2[row - c + 15]) {
                    cols[c] = 1; diag1[row + c] = 1; diag2[row - c + 15] = 1;
                    solve(row + 1);
                    cols[c] = 0; diag1[row + c] = 0; diag2[row - c + 15] = 0;
                }
            }
            return 0;
        }

        int main() {
            n = 8;
            count = 0;
            solve(0);
            print(count);
            return 0;
        }
    "#;

    const SIEVE: &str = r#"
        int flags[2048];

        int main() {
            int count = 0;
            int sum = 0;
            for (int i = 2; i < 2048; i = i + 1) { flags[i] = 1; }
            for (int p = 2; p < 2048; p = p + 1) {
                if (flags[p]) {
                    count = count + 1;
                    sum = sum + p;
                    for (int m = p + p; m < 2048; m = m + p) { flags[m] = 0; }
                }
            }
            print(count);
            printc(' ');
            printh(sum);
            return 0;
        }
    "#;

    pub(crate) fn queens_source() -> String {
        flexprot_cc::compile(QUEENS).expect("queens kernel compiles")
    }

    pub(crate) fn queens_expected() -> String {
        // Reference backtracking solver mirroring the MiniC program.
        fn solve(row: u32, n: u32, cols: &mut [bool], d1: &mut [bool], d2: &mut [bool]) -> u32 {
            if row == n {
                return 1;
            }
            let mut total = 0;
            for c in 0..n as usize {
                let (i1, i2) = ((row as usize + c), (row as usize + 15 - c));
                if !cols[c] && !d1[i1] && !d2[i2] {
                    cols[c] = true;
                    d1[i1] = true;
                    d2[i2] = true;
                    total += solve(row + 1, n, cols, d1, d2);
                    cols[c] = false;
                    d1[i1] = false;
                    d2[i2] = false;
                }
            }
            total
        }
        let count = solve(0, 8, &mut [false; 16], &mut [false; 32], &mut [false; 32]);
        count.to_string()
    }

    const COLLATZ: &str = r#"
        int chain_length(int n) {
            int steps = 0;
            while (1) {
                if (n == 1) { break; }
                if (n % 2 == 0) { n /= 2; } else { n = 3 * n + 1; }
                steps += 1;
            }
            return steps;
        }

        int main() {
            int best = 0;
            int best_n = 0;
            for (int n = 1; n < 1000; n += 1) {
                int len = chain_length(n);
                if (len > best) { best = len; best_n = n; }
            }
            print(best_n);
            printc(' ');
            print(best);
            return 0;
        }
    "#;

    pub(crate) fn collatz_source() -> String {
        flexprot_cc::compile(COLLATZ).expect("collatz kernel compiles")
    }

    pub(crate) fn collatz_expected() -> String {
        let mut best = 0u32;
        let mut best_n = 0u32;
        for n in 1u32..1000 {
            let mut x = n;
            let mut steps = 0u32;
            while x != 1 {
                x = if x % 2 == 0 { x / 2 } else { 3 * x + 1 };
                steps += 1;
            }
            if steps > best {
                best = steps;
                best_n = n;
            }
        }
        format!("{best_n} {best}")
    }

    pub(crate) fn sieve_source() -> String {
        flexprot_cc::compile(SIEVE).expect("sieve kernel compiles")
    }

    pub(crate) fn sieve_expected() -> String {
        let mut flags = [true; 2048];
        let mut count = 0u32;
        let mut sum = 0u32;
        for p in 2..2048usize {
            if flags[p] {
                count += 1;
                sum += p as u32;
                let mut m = p + p;
                while m < 2048 {
                    flags[m] = false;
                    m += p;
                }
            }
        }
        format!("{count} {sum:08x}")
    }
}

/// The generated `callgrid` kernel: a large-code-footprint stressor.
///
/// 64 distinct leaf functions (each mixing a per-function constant and
/// rotation into an accumulator) are invoked through a linear
/// compare-and-call dispatch chain driven by the LCG. Static code size is a
/// few KiB — larger than the small I-cache configurations — so this kernel
/// actually exercises the fetch/decrypt miss path that the tiny loop
/// kernels never leave.
mod callgrid {
    pub(crate) const FUNCS: u32 = 64;
    pub(crate) const ITERS: u32 = 1500;
    pub(crate) const SEED: u32 = 90210;

    pub(crate) fn constant(k: u32) -> u32 {
        k.wrapping_mul(0x9E37_79B1) & 0xFFFF
    }

    pub(crate) fn rotation(k: u32) -> u32 {
        (k % 31) + 1
    }

    pub(crate) fn source() -> String {
        use std::fmt::Write;
        let mut s = String::new();
        s.push_str("        .text\n");
        s.push_str("main:   jal  grid\n");
        s.push_str("        move $a0, $v0\n");
        s.push_str("        li   $v0, 34\n");
        s.push_str("        syscall\n");
        s.push_str("        li   $v0, 10\n");
        s.push_str("        syscall\n");
        // grid(): s2 = accumulator, s3 = LCG, s0 = remaining iterations.
        writeln!(s, "grid:   addi $sp, $sp, -4").unwrap();
        writeln!(s, "        sw   $ra, 0($sp)").unwrap();
        writeln!(s, "        li   $s2, 0").unwrap();
        writeln!(s, "        li   $s3, {SEED}").unwrap();
        writeln!(s, "        li   $s0, {ITERS}").unwrap();
        writeln!(s, "gloop:  li   $t8, 1664525").unwrap();
        writeln!(s, "        mul  $s3, $s3, $t8").unwrap();
        writeln!(s, "        li   $t8, 0x3C6EF35F").unwrap();
        writeln!(s, "        addu $s3, $s3, $t8").unwrap();
        writeln!(s, "        srl  $t0, $s3, 8").unwrap();
        writeln!(s, "        andi $t0, $t0, {}", FUNCS - 1).unwrap();
        for k in 0..FUNCS {
            writeln!(s, "        li   $t1, {k}").unwrap();
            writeln!(s, "        beq  $t0, $t1, call{k}").unwrap();
        }
        writeln!(s, "        b    gnext").unwrap();
        for k in 0..FUNCS {
            writeln!(s, "call{k}: jal  f{k}").unwrap();
            writeln!(s, "        b    gnext").unwrap();
        }
        writeln!(s, "gnext:  addi $s0, $s0, -1").unwrap();
        writeln!(s, "        bgtz $s0, gloop").unwrap();
        writeln!(s, "        move $v0, $s2").unwrap();
        writeln!(s, "        lw   $ra, 0($sp)").unwrap();
        writeln!(s, "        addi $sp, $sp, 4").unwrap();
        writeln!(s, "        jr   $ra").unwrap();
        for k in 0..FUNCS {
            let c = constant(k);
            let r = rotation(k);
            writeln!(s, "f{k}:").unwrap();
            writeln!(s, "        li   $t9, {c}").unwrap();
            writeln!(s, "        xor  $s2, $s2, $t9").unwrap();
            writeln!(s, "        sll  $t2, $s2, {r}").unwrap();
            writeln!(s, "        srl  $t3, $s2, {}", 32 - r).unwrap();
            writeln!(s, "        or   $s2, $t2, $t3").unwrap();
            writeln!(s, "        jr   $ra").unwrap();
        }
        s
    }

    pub(crate) fn expected() -> String {
        let mut x = SEED;
        let mut acc = 0u32;
        for _ in 0..ITERS {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let k = (x >> 8) & (FUNCS - 1);
            acc ^= constant(k);
            acc = acc.rotate_left(rotation(k));
        }
        format!("{acc:08x}")
    }
}

/// Looks a kernel up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Reference implementations mirroring each kernel instruction-for-
/// instruction where arithmetic order matters (all arithmetic wraps).
mod reference {
    fn lcg(x: &mut u32) -> u32 {
        *x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        *x
    }

    pub(crate) fn crc32() -> String {
        let mut x: u32 = 12345;
        let mut crc: u32 = 0xFFFF_FFFF;
        for _ in 0..4096 {
            let byte = lcg(&mut x) & 0xFF;
            crc ^= byte;
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb == 1 {
                    crc ^= 0xEDB8_8320;
                }
            }
        }
        format!("{:08x}", !crc)
    }

    pub(crate) fn matmul() -> String {
        const N: usize = 12;
        let mut x: u32 = 54321;
        let mut a = [0u32; N * N];
        let mut b = [0u32; N * N];
        for i in 0..N * N {
            a[i] = lcg(&mut x) & 0xFF;
            b[i] = lcg(&mut x) & 0xFF;
        }
        let mut c = [0u32; N * N];
        for i in 0..N {
            for j in 0..N {
                let mut acc = 0u32;
                for k in 0..N {
                    acc = acc.wrapping_add(a[i * N + k].wrapping_mul(b[k * N + j]));
                }
                c[i * N + j] = acc;
            }
        }
        let mut v = 0u32;
        for &w in &c {
            v ^= w;
            v = v.rotate_left(1);
        }
        format!("{v:08x}")
    }

    pub(crate) fn qsort() -> String {
        let mut x: u32 = 99991;
        let mut a: Vec<u32> = (0..128).map(|_| (lcg(&mut x) >> 8) & 0xFFFF).collect();
        a.sort_unstable();
        let mut sum = 0u32;
        for (i, &v) in a.iter().enumerate() {
            sum = sum.wrapping_add(v.wrapping_mul(i as u32 + 1));
        }
        format!("{sum:08x}")
    }

    pub(crate) fn dijkstra() -> String {
        const N: usize = 16;
        const INF: u32 = 0x7FFF_FFFF;
        let mut x: u32 = 7777;
        let mut adj = [[0u32; N]; N];
        for (i, row) in adj.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let w = ((lcg(&mut x) >> 4) & 0xFF) + 1;
                *cell = if i == j { 0 } else { w };
            }
        }
        let mut dist = [INF; N];
        let mut vis = [false; N];
        dist[0] = 0;
        for _ in 0..N {
            let mut best = usize::MAX;
            let mut best_d = INF;
            for j in 0..N {
                if !vis[j] && dist[j] < best_d {
                    best_d = dist[j];
                    best = j;
                }
            }
            if best == usize::MAX {
                break;
            }
            vis[best] = true;
            for j in 0..N {
                if j == best {
                    continue;
                }
                let cand = best_d.wrapping_add(adj[best][j]);
                if cand < dist[j] {
                    dist[j] = cand;
                }
            }
        }
        let mut v = 0u32;
        for &d in &dist {
            v ^= d;
        }
        format!("{v:08x}")
    }

    pub(crate) fn fir() -> String {
        const TAPS: [i32; 8] = [3, -1, 4, 1, -5, 9, -2, 6];
        let mut x: u32 = 31337;
        let xs: Vec<u32> = (0..256).map(|_| (lcg(&mut x) >> 16) & 0x3FF).collect();
        let mut v = 0u32;
        for n in 8..256 {
            let mut acc = 0u32;
            for (k, &tap) in TAPS.iter().enumerate() {
                acc = acc.wrapping_add(xs[n - k].wrapping_mul(tap as u32));
            }
            v ^= acc;
        }
        format!("{v:08x}")
    }

    pub(crate) fn rle() -> String {
        let mut x: u32 = 2024;
        let src: Vec<u8> = (0..512).map(|_| ((lcg(&mut x) >> 13) & 3) as u8).collect();
        let mut enc = Vec::new();
        let mut i = 0usize;
        while i < src.len() {
            let value = src[i];
            let mut run = 1usize;
            while i + run < src.len() && run < 255 && src[i + run] == value {
                run += 1;
            }
            enc.push(run as u8);
            enc.push(value);
            i += run;
        }
        let mut dec = Vec::new();
        let mut k = 0usize;
        while k < enc.len() {
            for _ in 0..enc[k] {
                dec.push(enc[k + 1]);
            }
            k += 2;
        }
        let ok = u32::from(dec == src);
        let mut h = 5381u32;
        for &b in &enc {
            h = h.wrapping_mul(33).wrapping_add(u32::from(b));
        }
        format!("{} {} {:08x}", enc.len(), ok, h)
    }

    pub(crate) fn strsearch() -> String {
        let mut x: u32 = 424242;
        let text: Vec<u8> = (0..2048)
            .map(|_| b'a' + ((lcg(&mut x) >> 10) & 3) as u8)
            .collect();
        let pat = b"abca";
        let count = (0..2045).filter(|&i| &text[i..i + 4] == pat).count();
        count.to_string()
    }

    pub(crate) fn bitcount() -> String {
        let mut x: u32 = 808017;
        let total: u32 = (0..1024).map(|_| lcg(&mut x).count_ones()).sum();
        total.to_string()
    }

    pub(crate) fn hash() -> String {
        let mut x: u32 = 65537;
        let mut h: u32 = 0x811C_9DC5;
        for _ in 0..4096 {
            let byte = lcg(&mut x) >> 24;
            h ^= byte;
            h = h.wrapping_mul(0x0100_0193);
        }
        format!("{h:08x}")
    }

    pub(crate) fn adpcm() -> String {
        let mut x: u32 = 161803;
        let samples: Vec<i32> = (0..512)
            .map(|_| ((lcg(&mut x) >> 12) & 0x3FF) as i32)
            .collect();
        let mut p: i32 = 0;
        let mut err = 0u32;
        let mut codes = 0u32;
        for &s in &samples {
            let delta = s.wrapping_sub(p);
            let q = (delta >> 3).clamp(-128, 127);
            codes ^= q as u32;
            p = p.wrapping_add(q << 3);
            let e = s.wrapping_sub(p);
            err = err.wrapping_add(e.wrapping_mul(e) as u32);
        }
        format!("{err:08x} {codes:08x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_sim::{Machine, Outcome, SimConfig};

    #[test]
    fn registry_has_unique_kernels() {
        let kernels = all();
        assert_eq!(kernels.len(), 14);
        let mut names: Vec<&str> = kernels.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("dijkstra").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    fn check(name: &str) {
        let w = by_name(name).unwrap();
        let image = w.image();
        let r = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(r.outcome, Outcome::Exit(0), "{name}: {:?}", r.outcome);
        assert_eq!(r.output, w.expected_output(), "{name} output mismatch");
    }

    #[test]
    fn crc32_matches_reference() {
        check("crc32");
    }

    #[test]
    fn matmul_matches_reference() {
        check("matmul");
    }

    #[test]
    fn qsort_matches_reference() {
        check("qsort");
    }

    #[test]
    fn dijkstra_matches_reference() {
        check("dijkstra");
    }

    #[test]
    fn fir_matches_reference() {
        check("fir");
    }

    #[test]
    fn rle_matches_reference() {
        check("rle");
    }

    #[test]
    fn strsearch_matches_reference() {
        check("strsearch");
    }

    #[test]
    fn bitcount_matches_reference() {
        check("bitcount");
    }

    #[test]
    fn hash_matches_reference() {
        check("hash");
    }

    #[test]
    fn adpcm_matches_reference() {
        check("adpcm");
    }

    #[test]
    fn callgrid_matches_reference() {
        check("callgrid");
    }

    #[test]
    fn queens_matches_reference() {
        check("queens");
    }

    #[test]
    fn sieve_matches_reference() {
        check("sieve");
    }

    #[test]
    fn collatz_matches_reference() {
        check("collatz");
    }

    #[test]
    fn image_cached_shares_one_compilation() {
        let w = by_name("rle").unwrap();
        let a = w.image_cached();
        let b = w.image_cached();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(*a, w.image(), "cached image matches a fresh assembly");
    }

    #[test]
    fn callgrid_has_large_code_footprint() {
        let image = by_name("callgrid").unwrap().image();
        assert!(
            image.text.len() * 4 > 2048,
            "stressor must exceed the small I-cache sizes, got {} bytes",
            image.text.len() * 4
        );
    }

    #[test]
    fn rle_round_trip_self_verifies() {
        // The kernel prints its own verification flag; assert it is 1.
        let w = by_name("rle").unwrap();
        let expected = w.expected_output();
        let fields: Vec<&str> = expected.split(' ').collect();
        assert_eq!(fields[1], "1", "reference says codec round-trip failed");
    }

    #[test]
    fn every_kernel_has_functions_for_scoped_protection() {
        for w in all() {
            let image = w.image();
            assert!(
                image.symbols.len() >= 2,
                "{}: needs named functions for per-function experiments",
                w.name
            );
        }
    }
}
