//! Property tests: the worklist dataflow analyses against brute-force
//! oracles.
//!
//! The liveness and dominator solvers are clever (chaotic iteration,
//! Cooper-Harvey-Kennedy intersection); the oracles here are dumb
//! (per-register path search, dominance by vertex deletion). Agreement on
//! randomly generated MiniC kernels and random digraphs is the evidence
//! that the clever versions compute the textbook relations.

use flexprot_isa::Rng64;
use flexprot_verify::flow::Flow;
use flexprot_verify::{domtree, liveness};

// ------------------------------------------------------------- liveness

/// Brute-force `live_in`: register bit `bit` is live entering `start`
/// iff some path from `start` reaches a use before any definition.
///
/// A visited set is sound because the continue/stop decision at a node
/// depends only on the node, never on the path that reached it.
fn brute_live_in(flow: &Flow, start: usize, bit: u32) -> bool {
    let mut stack = vec![start];
    let mut visited = vec![false; flow.decoded.len()];
    while let Some(n) = stack.pop() {
        if visited[n] {
            continue;
        }
        visited[n] = true;
        if liveness::uses_mask(flow.decoded[n]) & bit != 0 {
            return true;
        }
        if liveness::def_mask(flow.decoded[n]) & bit != 0 {
            continue;
        }
        for edge in &flow.succs[n] {
            stack.push(edge.to);
        }
    }
    false
}

/// Checks the solver against the oracle for every (word, register) pair.
fn assert_liveness_matches(name: &str, flow: &Flow) {
    let live = liveness::analyze(flow);
    for i in 0..flow.decoded.len() {
        for reg in 0..32u32 {
            let bit = 1 << reg;
            assert_eq!(
                live.live_in[i] & bit != 0,
                brute_live_in(flow, i, bit),
                "{name}: live_in mismatch at word {i}, register {reg}"
            );
            let brute_out = flow.succs[i]
                .iter()
                .any(|edge| brute_live_in(flow, edge.to, bit));
            assert_eq!(
                live.live_out[i] & bit != 0,
                brute_out,
                "{name}: live_out mismatch at word {i}, register {reg}"
            );
        }
    }
}

fn flow_of_source(name: &str, source: &str) -> Flow {
    let image = flexprot_cc::compile_to_image(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    Flow::recover(&image, &image.text)
}

#[test]
fn liveness_matches_brute_force_on_reference_kernels() {
    for (name, source) in flexprot_cc::kernels::all() {
        let flow = flow_of_source(name, source);
        assert_liveness_matches(name, &flow);
    }
}

/// A random well-formed MiniC program. Never executed — only compiled and
/// analyzed — so loops need not terminate and arithmetic need not avoid
/// overflow; the grammar only has to keep the compiler happy.
fn random_minic(rng: &mut Rng64) -> String {
    const VARS: [&str; 4] = ["a", "b", "c", "d"];
    fn var(rng: &mut Rng64) -> &'static str {
        VARS[rng.index(VARS.len())]
    }
    fn expr(rng: &mut Rng64) -> String {
        match rng.index(4) {
            0 => var(rng).to_owned(),
            1 => rng.index(50).to_string(),
            2 => format!(
                "{} {} {}",
                var(rng),
                ["+", "-", "*"][rng.index(3)],
                var(rng)
            ),
            _ => format!("{} + {}", var(rng), 1 + rng.index(9)),
        }
    }
    fn stmt(rng: &mut Rng64, depth: usize, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match rng.index(if depth > 0 { 5 } else { 2 }) {
            0 | 1 => {
                let (v, e) = (var(rng), expr(rng));
                out.push_str(&format!("{pad}{v} = {e};\n"));
            }
            2 => {
                out.push_str(&format!("{pad}if ({} < {}) {{\n", var(rng), rng.index(40)));
                block(rng, depth - 1, out, indent + 1);
                if rng.chance(0.5) {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    block(rng, depth - 1, out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            3 => {
                let v = var(rng);
                out.push_str(&format!("{pad}while ({v} > 0) {{\n"));
                block(rng, depth - 1, out, indent + 1);
                out.push_str(&format!("{}{v} = {v} - 1;\n", "    ".repeat(indent + 1)));
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                let v = var(rng);
                out.push_str(&format!("{pad}{v} = helper({});\n", expr(rng)));
            }
        }
    }
    fn block(rng: &mut Rng64, depth: usize, out: &mut String, indent: usize) {
        for _ in 0..1 + rng.index(3) {
            stmt(rng, depth, out, indent);
        }
    }

    let mut body = String::new();
    for v in VARS {
        body.push_str(&format!("    int {v} = {};\n", rng.index(20)));
    }
    block(rng, 2, &mut body, 1);
    body.push_str("    print(a + b + c + d);\n    return 0;\n");
    format!("int helper(int x) {{ return x * 2 + 1; }}\n\nint main() {{\n{body}}}\n")
}

#[test]
fn liveness_matches_brute_force_on_random_kernels() {
    let mut rng = Rng64::new(0xC0FF_EE00_D00D_0001);
    for case in 0..12 {
        let source = random_minic(&mut rng);
        let name = format!("random-{case}");
        let flow = flow_of_source(&name, &source);
        assert_liveness_matches(&name, &flow);
    }
}

// ------------------------------------------------------------ dominators

/// Random digraph on `n` nodes rooted at 0, out-degree ≤ 3.
fn random_digraph(rng: &mut Rng64, n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|_| {
            let degree = rng.index(4);
            let mut targets: Vec<usize> = (0..degree).map(|_| rng.index(n)).collect();
            targets.sort_unstable();
            targets.dedup();
            targets
        })
        .collect()
}

/// Which nodes `from` reaches, optionally with one vertex deleted.
fn reachable_avoiding(succs: &[Vec<usize>], from: usize, avoid: Option<usize>) -> Vec<bool> {
    let mut seen = vec![false; succs.len()];
    if Some(from) == avoid {
        return seen;
    }
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(n) = stack.pop() {
        for &m in &succs[n] {
            if Some(m) != avoid && !seen[m] {
                seen[m] = true;
                stack.push(m);
            }
        }
    }
    seen
}

#[test]
fn dominators_match_vertex_deletion_on_random_digraphs() {
    let mut rng = Rng64::new(0x0D01_1A12_5EED);
    for _ in 0..40 {
        let n = 2 + rng.index(30);
        let succs = random_digraph(&mut rng, n);
        let doms = domtree::dominators(0, &succs);
        let from_root = reachable_avoiding(&succs, 0, None);
        for d in 0..n {
            let cut = reachable_avoiding(&succs, 0, Some(d));
            for (target, &rooted) in from_root.iter().enumerate() {
                // d dominates target iff target is reachable, and deleting
                // d cuts every path from the root to target (with
                // d == target dominating itself trivially).
                let expected = rooted && (d == target || !cut[target]);
                assert_eq!(
                    doms.dominates(d, target),
                    expected,
                    "dominates({d}, {target}) on {succs:?}"
                );
            }
        }
        for (target, &rooted) in from_root.iter().enumerate() {
            assert_eq!(doms.reachable(target), rooted, "{succs:?}");
        }
    }
}

/// Whether `from` can reach any natural exit (empty successor list),
/// optionally with one vertex deleted.
fn reaches_exit_avoiding(succs: &[Vec<usize>], from: usize, avoid: Option<usize>) -> bool {
    reachable_avoiding(succs, from, avoid)
        .iter()
        .enumerate()
        .any(|(n, &seen)| seen && succs[n].is_empty())
}

#[test]
fn post_dominators_match_vertex_deletion_on_random_digraphs() {
    let mut rng = Rng64::new(0x9057_D0D0_1337_0002);
    for _ in 0..40 {
        let n = 2 + rng.index(30);
        let succs = random_digraph(&mut rng, n);
        let (pdoms, _exit) = domtree::post_dominators(&succs);
        for d in 0..n {
            for target in 0..n {
                // d post-dominates target iff target can terminate, and
                // deleting d leaves it no path to any exit.
                let expected = reaches_exit_avoiding(&succs, target, None)
                    && (d == target || !reaches_exit_avoiding(&succs, target, Some(d)));
                assert_eq!(
                    pdoms.dominates(d, target),
                    expected,
                    "post-dominates({d}, {target}) on {succs:?}"
                );
            }
        }
    }
}
