//! Property tests for the guard-network graph algorithms.
//!
//! Random digraphs (small enough to enumerate) are analysed twice: once
//! by the production algorithms in `flexprot_verify::guardnet` (iterative
//! Tarjan, lowlink articulation points, node-split max-flow min cut) and
//! once by brute force straight from the definitions (pairwise
//! reachability, component counting after vertex removal, subset
//! enumeration). Any disagreement is a bug in one of the two — the same
//! N-version argument the verifier itself applies to the toolchain.

use flexprot_isa::Rng64;
use flexprot_verify::guardnet::{articulation_points, min_vertex_cut, sccs};

/// A random digraph on `n` vertices with edge probability ~`density`/8.
fn random_digraph(rng: &mut Rng64, n: usize, density: u64) -> Vec<Vec<usize>> {
    let mut succs = vec![Vec::new(); n];
    for (u, out) in succs.iter_mut().enumerate() {
        for v in 0..n {
            if u != v && rng.below(8) < density {
                out.push(v);
            }
        }
    }
    succs
}

/// The undirected counterpart (what the connectivity analyses consume).
fn undirect(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    let mut adj = vec![Vec::new(); n];
    for (u, out) in succs.iter().enumerate() {
        for &v in out {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    adj
}

/// Transitive reachability by saturation.
fn reachability(succs: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let n = succs.len();
    let mut reach = vec![vec![false; n]; n];
    for (u, row) in reach.iter_mut().enumerate() {
        row[u] = true;
    }
    for (u, out) in succs.iter().enumerate() {
        for &v in out {
            reach[u][v] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    reach
}

/// Number of connected components of the undirected graph induced on the
/// vertices where `alive` is true.
fn component_count(adj: &[Vec<usize>], alive: &[bool]) -> usize {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut components = 0;
    for s in 0..n {
        if !alive[s] || seen[s] {
            continue;
        }
        components += 1;
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if alive[w] && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
    }
    components
}

/// Whether removing `cut` leaves ≥ 2 vertices in ≥ 2 components.
fn disconnects(adj: &[Vec<usize>], cut: &[usize]) -> bool {
    let n = adj.len();
    let mut alive = vec![true; n];
    for &v in cut {
        alive[v] = false;
    }
    let remaining = alive.iter().filter(|&&a| a).count();
    remaining >= 2 && component_count(adj, &alive) >= 2
}

/// The minimum cut size by subset enumeration, or `None` when no subset
/// disconnects the graph.
fn brute_min_cut(adj: &[Vec<usize>]) -> Option<usize> {
    let n = adj.len();
    (0u32..(1 << n))
        .filter_map(|mask| {
            let cut: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
            disconnects(adj, &cut).then_some(cut.len())
        })
        .min()
}

#[test]
fn sccs_agree_with_mutual_reachability() {
    let mut rng = Rng64::new(0x5CC5_CC01);
    for case in 0..400 {
        let n = 1 + (rng.below(7) as usize);
        let density = 1 + rng.below(4);
        let succs = random_digraph(&mut rng, n, density);
        let comps = sccs(&succs);
        // Partition sanity: every vertex in exactly one component.
        let mut owner = vec![usize::MAX; n];
        for (c, comp) in comps.iter().enumerate() {
            for &v in comp {
                assert_eq!(owner[v], usize::MAX, "case {case}: vertex {v} repeated");
                owner[v] = c;
            }
        }
        assert!(owner.iter().all(|&c| c != usize::MAX), "case {case}");
        // Same component iff mutually reachable.
        let reach = reachability(&succs);
        for u in 0..n {
            for v in 0..n {
                let mutual = reach[u][v] && reach[v][u];
                assert_eq!(
                    owner[u] == owner[v],
                    mutual,
                    "case {case}: vertices {u},{v} in {succs:?}"
                );
            }
        }
        // Reverse-topological order: no edge from a later component to an
        // earlier one.
        for (u, out) in succs.iter().enumerate() {
            for &v in out {
                assert!(
                    owner[u] >= owner[v],
                    "case {case}: edge {u}->{v} breaks the component order of {succs:?}"
                );
            }
        }
    }
}

#[test]
fn articulation_points_agree_with_removal_counting() {
    let mut rng = Rng64::new(0xA211_CC1A);
    for case in 0..400 {
        let n = 1 + (rng.below(7) as usize);
        let density = 1 + rng.below(4);
        let adj = undirect(&random_digraph(&mut rng, n, density));
        let fast: Vec<usize> = articulation_points(&adj);
        let base = component_count(&adj, &vec![true; n]);
        for v in 0..n {
            let mut alive = vec![true; n];
            alive[v] = false;
            // Removing an isolated vertex drops the count by one; an
            // articulation point strictly raises it.
            let without = component_count(&adj, &alive);
            let expected = without > base - usize::from(adj[v].is_empty());
            assert_eq!(
                fast.contains(&v),
                expected && !adj[v].is_empty(),
                "case {case}: vertex {v} of {adj:?}"
            );
        }
    }
}

#[test]
fn min_vertex_cut_agrees_with_subset_enumeration() {
    let mut rng = Rng64::new(0x0C07_0C07);
    for case in 0..300 {
        let n = 2 + (rng.below(6) as usize);
        let density = 1 + rng.below(5);
        let adj = undirect(&random_digraph(&mut rng, n, density));
        let fast = min_vertex_cut(&adj);
        let brute = brute_min_cut(&adj);
        match (&fast, brute) {
            (None, None) => {}
            (Some(cut), Some(k)) => {
                assert_eq!(cut.len(), k, "case {case}: {adj:?} cut {cut:?}");
                assert!(
                    cut.is_empty() || disconnects(&adj, cut),
                    "case {case}: returned cut does not disconnect {adj:?}"
                );
                if cut.is_empty() {
                    let alive = vec![true; n];
                    assert!(
                        component_count(&adj, &alive) >= 2,
                        "case {case}: empty cut on a connected graph {adj:?}"
                    );
                }
            }
            (fast, brute) => {
                panic!("case {case}: fast {fast:?} vs brute {brute:?} on {adj:?}")
            }
        }
    }
}
