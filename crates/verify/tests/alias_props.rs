//! Property tests: the points-to store partition against brute-force
//! store-target enumeration on concretely executed programs.
//!
//! [`flexprot_verify::memdom`] claims every concrete execution's store
//! targets are covered by its abstract targets, and
//! [`flexprot_verify::alias`] turns those targets into must/may/no-alias
//! verdicts against byte intervals. The oracle here is an independent
//! mini-interpreter (written against the ISA reference semantics in
//! `sim/src/exec.rs`, not calling into the simulator or the analysis)
//! that records the concrete effective address of every executed store.
//! On random MiniC programs and hand-written pointer kernels:
//!
//! * every recorded address must lie in the concretisation of the
//!   abstract target (value-set membership for `Abs`, region membership
//!   for `Stack` — assumption A1);
//! * a `NoAlias` verdict must have no recorded hit on the interval;
//! * a `MustAlias` verdict must have *only* hits, and its witness must
//!   itself hit.

use std::collections::{BTreeMap, HashMap};

use flexprot_isa::{Image, Inst, Reg, Rng64, STACK_TOP};
use flexprot_verify::alias::{self, StoreClass};
use flexprot_verify::flow::Flow;
use flexprot_verify::memdom::{self, Base, MemFact, STACK_REGION_MAX, STACK_REGION_MIN};

// ------------------------------------------------------ concrete oracle

/// Recorded store targets, keyed by text-word index.
type Observed = BTreeMap<usize, Vec<(u32, u32)>>;

/// A minimal interpreter over the decoded text: byte-addressed sparse
/// memory, registers reset per the hardware contract
/// (`$sp = $fp = STACK_TOP`), console syscalls swallowed. Records every
/// executed store's `(address, size)` and stops on exit, fault, fuel
/// exhaustion or a walk off the text segment — all fine for an oracle,
/// which only needs the stores that *did* execute.
fn run_oracle(image: &Image, flow: &Flow, fuel: usize) -> Observed {
    let mut regs = [0u32; 32];
    regs[Reg::SP.index() as usize] = STACK_TOP;
    regs[Reg::FP.index() as usize] = STACK_TOP;
    let mut mem: HashMap<u32, u8> = HashMap::new();
    for (i, &b) in image.data.iter().enumerate() {
        mem.insert(image.data_base.wrapping_add(i as u32), b);
    }
    let read = |mem: &HashMap<u32, u8>, addr: u32, size: u32| -> u32 {
        (0..size).fold(0u32, |acc, i| {
            acc | u32::from(*mem.get(&addr.wrapping_add(i)).unwrap_or(&0)) << (8 * i)
        })
    };
    let write = |mem: &mut HashMap<u32, u8>, addr: u32, size: u32, value: u32| {
        for i in 0..size {
            mem.insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    };

    macro_rules! r {
        ($reg:expr) => {
            regs[$reg.index() as usize]
        };
    }
    macro_rules! set {
        ($rd:expr, $value:expr) => {{
            let v = $value;
            if $rd != Reg::ZERO {
                regs[$rd.index() as usize] = v;
            }
        }};
    }
    macro_rules! ea {
        ($base:expr, $off:expr) => {
            r!($base).wrapping_add($off as i32 as u32)
        };
    }

    let mut observed = Observed::new();
    let mut pc = image.entry;
    for _ in 0..fuel {
        if pc < image.text_base || !pc.is_multiple_of(4) {
            break;
        }
        let index = ((pc - image.text_base) / 4) as usize;
        let Some(Some(inst)) = flow.decoded.get(index).copied() else {
            break;
        };
        let mut next = pc.wrapping_add(4);
        use Inst::*;
        match inst {
            Sll { rd, rt, sh } => set!(rd, r!(rt) << sh),
            Srl { rd, rt, sh } => set!(rd, r!(rt) >> sh),
            Sra { rd, rt, sh } => set!(rd, ((r!(rt) as i32) >> sh) as u32),
            Sllv { rd, rt, rs } => set!(rd, r!(rt) << (r!(rs) & 31)),
            Srlv { rd, rt, rs } => set!(rd, r!(rt) >> (r!(rs) & 31)),
            Srav { rd, rt, rs } => set!(rd, ((r!(rt) as i32) >> (r!(rs) & 31)) as u32),
            Jr { rs } => next = r!(rs),
            Jalr { rd, rs } => {
                next = r!(rs);
                set!(rd, pc.wrapping_add(4));
            }
            Syscall => match r!(Reg::V0) {
                // Console output is irrelevant to the oracle; keep going.
                1 | 4 | 11 | 34 => {}
                _ => break,
            },
            Break => break,
            Mul { rd, rs, rt } => set!(rd, r!(rs).wrapping_mul(r!(rt))),
            Div { rd, rs, rt } => {
                let (a, b) = (r!(rs) as i32, r!(rt) as i32);
                set!(rd, if b == 0 { 0 } else { a.wrapping_div(b) as u32 });
            }
            Rem { rd, rs, rt } => {
                let (a, b) = (r!(rs) as i32, r!(rt) as i32);
                set!(rd, if b == 0 { 0 } else { a.wrapping_rem(b) as u32 });
            }
            Add { rd, rs, rt } | Addu { rd, rs, rt } => set!(rd, r!(rs).wrapping_add(r!(rt))),
            Sub { rd, rs, rt } | Subu { rd, rs, rt } => set!(rd, r!(rs).wrapping_sub(r!(rt))),
            And { rd, rs, rt } => set!(rd, r!(rs) & r!(rt)),
            Or { rd, rs, rt } => set!(rd, r!(rs) | r!(rt)),
            Xor { rd, rs, rt } => set!(rd, r!(rs) ^ r!(rt)),
            Nor { rd, rs, rt } => set!(rd, !(r!(rs) | r!(rt))),
            Slt { rd, rs, rt } => set!(rd, u32::from((r!(rs) as i32) < (r!(rt) as i32))),
            Sltu { rd, rs, rt } => set!(rd, u32::from(r!(rs) < r!(rt))),
            Addi { rt, rs, imm } => set!(rt, r!(rs).wrapping_add(imm as i32 as u32)),
            Slti { rt, rs, imm } => set!(rt, u32::from((r!(rs) as i32) < i32::from(imm))),
            Sltiu { rt, rs, imm } => set!(rt, u32::from(r!(rs) < (imm as i32 as u32))),
            Andi { rt, rs, imm } => set!(rt, r!(rs) & u32::from(imm)),
            Ori { rt, rs, imm } => set!(rt, r!(rs) | u32::from(imm)),
            Xori { rt, rs, imm } => set!(rt, r!(rs) ^ u32::from(imm)),
            Lui { rt, imm } => set!(rt, u32::from(imm) << 16),
            Lb { rt, off, base } => set!(rt, read(&mem, ea!(base, off), 1) as i8 as i32 as u32),
            Lbu { rt, off, base } => set!(rt, read(&mem, ea!(base, off), 1)),
            Lh { rt, off, base } => {
                let addr = ea!(base, off);
                if !addr.is_multiple_of(2) {
                    break;
                }
                set!(rt, read(&mem, addr, 2) as i16 as i32 as u32);
            }
            Lhu { rt, off, base } => {
                let addr = ea!(base, off);
                if !addr.is_multiple_of(2) {
                    break;
                }
                set!(rt, read(&mem, addr, 2));
            }
            Lw { rt, off, base } => {
                let addr = ea!(base, off);
                if !addr.is_multiple_of(4) {
                    break;
                }
                set!(rt, read(&mem, addr, 4));
            }
            Sb { rt, off, base } => {
                let addr = ea!(base, off);
                write(&mut mem, addr, 1, r!(rt));
                observed.entry(index).or_default().push((addr, 1));
            }
            Sh { rt, off, base } => {
                let addr = ea!(base, off);
                if !addr.is_multiple_of(2) {
                    break;
                }
                write(&mut mem, addr, 2, r!(rt));
                observed.entry(index).or_default().push((addr, 2));
            }
            Sw { rt, off, base } => {
                let addr = ea!(base, off);
                if !addr.is_multiple_of(4) {
                    break;
                }
                write(&mut mem, addr, 4, r!(rt));
                observed.entry(index).or_default().push((addr, 4));
            }
            Beq { rs, rt, off } if r!(rs) == r!(rt) => next = branch_target(pc, off),
            Bne { rs, rt, off } if r!(rs) != r!(rt) => next = branch_target(pc, off),
            Blez { rs, off } if r!(rs) as i32 <= 0 => next = branch_target(pc, off),
            Bgtz { rs, off } if r!(rs) as i32 > 0 => next = branch_target(pc, off),
            Bltz { rs, off } if (r!(rs) as i32) < 0 => next = branch_target(pc, off),
            Bgez { rs, off } if r!(rs) as i32 >= 0 => next = branch_target(pc, off),
            Beq { .. } | Bne { .. } | Blez { .. } | Bgtz { .. } | Bltz { .. } | Bgez { .. } => {}
            J { target } => next = target << 2,
            Jal { target } => {
                set!(Reg::RA, pc.wrapping_add(4));
                next = target << 2;
            }
        }
        pc = next;
    }
    observed
}

fn branch_target(pc: u32, off: i16) -> u32 {
    pc.wrapping_add(4).wrapping_add(((off as i32) << 2) as u32)
}

// -------------------------------------------------- soundness assertions

/// The interval-hit spec the partition is judged against: a store
/// `[a, a+size)` touches `[lo, hi)` iff it writes at least one byte of it.
fn hits(a: u32, size: u32, lo: u32, hi: u32) -> bool {
    a.wrapping_add(size) > lo && a < hi
}

/// The intervals each store is classified against: the program's own text
/// segment (the window the provers care about), the data segment, and
/// tight synthetic windows around every recorded target — the adversarial
/// cases where an unsound `NoAlias` is most likely to slip through.
fn intervals(image: &Image, targets: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let text_end = image.text_base + 4 * image.text.len() as u32;
    let mut out = vec![
        (image.text_base, text_end),
        (image.data_base, image.data_base + 256),
    ];
    for &(a, size) in targets {
        out.push((a, a.wrapping_add(size)));
        out.push((a.wrapping_sub(4), a.wrapping_add(1)));
        out.push((a.wrapping_add(size), a.wrapping_add(size + 64)));
    }
    out
}

/// Checks every executed store of one program against the analysis.
/// Returns the number of (store, interval) verdicts checked.
fn assert_partition_sound(name: &str, image: &Image, flow: &Flow) -> usize {
    let mem: Vec<MemFact> = memdom::analyze_memory(image, flow);
    let observed = run_oracle(image, flow, 50_000);
    let mut checked = 0;
    for (&index, targets) in &observed {
        let inst = flow.decoded[index].expect("executed word decodes");
        let state = mem[index].as_ref().unwrap_or_else(|| {
            panic!("{name}: store at word {index} executed but analyzed unreachable")
        });
        let site = alias::store_site(index, inst, state).expect("store resolves");
        // Value-set membership: the concrete target is a concretisation
        // of the abstract one.
        for &(a, size) in targets {
            assert_eq!(size, site.size, "{name}: word {index} size");
            match site.target.base {
                Base::Abs => {
                    if let Some(vs) = site.target.off.values() {
                        assert!(
                            vs.contains(&a),
                            "{name}: word {index} stored to {a:#010x}, \
                             abstract target {vs:x?} excludes it"
                        );
                    }
                }
                Base::Stack => assert!(
                    (STACK_REGION_MIN..STACK_REGION_MAX).contains(&a),
                    "{name}: word {index} stored to {a:#010x} under \
                     stack provenance, outside the stack region (A1)"
                ),
            }
        }
        // Partition soundness against every interval.
        for (lo, hi) in intervals(image, targets) {
            if lo >= hi {
                continue;
            }
            match alias::classify(&site.target, site.size, lo, hi) {
                StoreClass::NoAlias => {
                    for &(a, size) in targets {
                        assert!(
                            !hits(a, size, lo, hi),
                            "{name}: word {index} classified NoAlias against \
                             [{lo:#010x}, {hi:#010x}) but stored to {a:#010x}"
                        );
                    }
                }
                StoreClass::MustAlias { addr } => {
                    assert!(
                        hits(addr, site.size, lo, hi),
                        "{name}: word {index} MustAlias witness {addr:#010x} \
                         misses [{lo:#010x}, {hi:#010x})"
                    );
                    for &(a, size) in targets {
                        assert!(
                            hits(a, size, lo, hi),
                            "{name}: word {index} classified MustAlias against \
                             [{lo:#010x}, {hi:#010x}) but stored to {a:#010x}"
                        );
                    }
                }
                StoreClass::MayAlias => {}
            }
            checked += 1;
        }
    }
    checked
}

// -------------------------------------------------- random MiniC corpus

/// A random well-formed MiniC program (same grammar as
/// `analysis_props.rs`, biased toward executable shapes: the while loops
/// here terminate so the oracle observes epilogue stores too).
fn random_minic(rng: &mut Rng64) -> String {
    const VARS: [&str; 4] = ["a", "b", "c", "d"];
    fn var(rng: &mut Rng64) -> &'static str {
        VARS[rng.index(VARS.len())]
    }
    fn expr(rng: &mut Rng64) -> String {
        match rng.index(4) {
            0 => var(rng).to_owned(),
            1 => rng.index(50).to_string(),
            2 => format!(
                "{} {} {}",
                var(rng),
                ["+", "-", "*"][rng.index(3)],
                var(rng)
            ),
            _ => format!("{} + {}", var(rng), 1 + rng.index(9)),
        }
    }
    fn stmt(rng: &mut Rng64, depth: usize, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match rng.index(if depth > 0 { 5 } else { 2 }) {
            0 | 1 => {
                let (v, e) = (var(rng), expr(rng));
                out.push_str(&format!("{pad}{v} = {e};\n"));
            }
            2 => {
                out.push_str(&format!("{pad}if ({} < {}) {{\n", var(rng), rng.index(40)));
                block(rng, depth - 1, out, indent + 1);
                if rng.chance(0.5) {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    block(rng, depth - 1, out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            3 => {
                let v = var(rng);
                out.push_str(&format!("{pad}while ({v} > 0) {{\n"));
                block(rng, depth - 1, out, indent + 1);
                out.push_str(&format!("{}{v} = {v} - 1;\n", "    ".repeat(indent + 1)));
                out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                let v = var(rng);
                out.push_str(&format!("{pad}{v} = helper({});\n", expr(rng)));
            }
        }
    }
    fn block(rng: &mut Rng64, depth: usize, out: &mut String, indent: usize) {
        for _ in 0..1 + rng.index(3) {
            stmt(rng, depth, out, indent);
        }
    }

    let mut body = String::new();
    for v in VARS {
        body.push_str(&format!("    int {v} = {};\n", rng.index(20)));
    }
    block(rng, 2, &mut body, 1);
    body.push_str("    print(a + b + c + d);\n    return 0;\n");
    format!("int helper(int x) {{ return x * 2 + 1; }}\n\nint main() {{\n{body}}}\n")
}

#[test]
fn store_partition_matches_concrete_execution_on_random_minic() {
    let mut rng = Rng64::new(0xA11A_50FA_CE00_0001);
    let mut stores_seen = 0usize;
    for case in 0..64 {
        let source = random_minic(&mut rng);
        let name = format!("random-{case}");
        let image =
            flexprot_cc::compile_to_image(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let flow = Flow::recover(&image, &image.text);
        stores_seen += assert_partition_sound(&name, &image, &flow);
    }
    // The corpus must actually exercise the partition: every program has
    // at least a prologue spill, so silence would mean a broken oracle.
    assert!(stores_seen > 1000, "only {stores_seen} verdicts checked");
}

#[test]
fn store_partition_matches_concrete_execution_on_reference_kernels() {
    for (name, source) in flexprot_cc::kernels::all() {
        let image = flexprot_cc::compile_to_image(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let flow = Flow::recover(&image, &image.text);
        assert_partition_sound(name, &image, &flow);
    }
}

/// Hand-written pointer kernel: scalar-addressed data stores resolve to
/// `MustAlias` with exact witnesses, while the frame store stays provably
/// off the text segment — the discharge the provers rely on.
#[test]
fn scalar_and_stack_stores_partition_as_designed() {
    let image = flexprot_asm::assemble_or_panic(
        "main: addi $sp, $sp, -16\n \
         li $t0, 0x10010000\n \
         li $t1, 0xABCD\n \
         sw $t1, 0($t0)\n \
         sh $t1, 8($t0)\n \
         sb $t1, 13($t0)\n \
         sw $t1, 4($sp)\n \
         li $v0, 10\n \
         syscall\n",
    );
    let flow = Flow::recover(&image, &image.text);
    assert_partition_sound("pointer-kernel", &image, &flow);

    let mem = memdom::analyze_memory(&image, &flow);
    let text_end = image.text_base + 4 * image.text.len() as u32;
    let mut saw = (false, false);
    for (index, decoded) in flow.decoded.iter().enumerate() {
        let Some(inst) = *decoded else { continue };
        let Some(state) = mem[index].as_ref() else {
            continue;
        };
        let Some(site) = alias::store_site(index, inst, state) else {
            continue;
        };
        // Every store in this kernel is provably off the text segment…
        assert_eq!(
            alias::classify(&site.target, site.size, image.text_base, text_end),
            StoreClass::NoAlias,
            "word {index}"
        );
        // …and the scalar-addressed word store must-aliases its own cell.
        match site.target.base {
            Base::Abs if site.size == 4 => {
                assert_eq!(
                    alias::classify(&site.target, 4, 0x1001_0000, 0x1001_0004),
                    StoreClass::MustAlias { addr: 0x1001_0000 }
                );
                saw.0 = true;
            }
            Base::Stack => saw.1 = true,
            _ => {}
        }
    }
    assert!(saw.0 && saw.1, "kernel must exercise both provenances");
}
