//! End-to-end properties of the verifier against the real pipeline.
//!
//! Two families: every image the protection pipeline produces must verify
//! clean across a randomized configuration matrix, and every static
//! mutation of a fully guarded image must produce at least one
//! error-severity finding with a stable lint ID.

use flexprot_core::{protect, EncryptConfig, GuardConfig, Placement, ProtectionConfig, Selection};
use flexprot_isa::{Inst, Rng64};
use flexprot_secmon::SecMonConfig;
use flexprot_sim::{Outcome, SimConfig};
use flexprot_verify::{verify, verify_with_policy, LintPolicy, Severity};

const LOOP_CALL: &str = r#"
        .data
tab:    .word 3, 1, 4, 1, 5, 9, 2, 6
        .text
main:   la   $s0, tab
        li   $s1, 8
        li   $s2, 0
loop:   lw   $t0, 0($s0)
        jal  fold
        addi $s0, $s0, 4
        addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $s2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
fold:   mul  $t1, $t0, $t0
        addu $s2, $s2, $t1
        jr   $ra
"#;

const BRANCHY: &str = r#"
main:   li   $t0, 12
        li   $s0, 0
outer:  andi $t1, $t0, 1
        beq  $t1, $zero, even
        addi $s0, $s0, 3
        b    next
even:   addi $s0, $s0, 1
next:   addi $t0, $t0, -1
        bgtz $t0, outer
        move $a0, $s0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#;

fn guard_config(rng: &mut Rng64) -> GuardConfig {
    let placement = match rng.below(3) {
        0 => Placement::Uniform,
        1 => Placement::Random,
        _ => Placement::LoopHeaders,
    };
    GuardConfig {
        key: rng.next_u64(),
        seed: rng.next_u64(),
        placement,
        selection: Selection::Density(0.2 + 0.8 * rng.next_f64()),
        enforce_spacing: true,
    }
}

#[test]
fn pipeline_output_is_clean_across_random_configs() {
    let mut rng = Rng64::new(0xF1E2_D3C4);
    for src in [LOOP_CALL, BRANCHY] {
        let image = flexprot_asm::assemble_or_panic(src);
        for trial in 0..10 {
            let mut config = ProtectionConfig::new().with_guards(guard_config(&mut rng));
            if rng.chance(0.5) {
                config = config.with_encryption(EncryptConfig::whole_program(rng.next_u64()));
            }
            let protected = protect(&image, &config, None)
                .unwrap_or_else(|e| panic!("trial {trial}: protect failed: {e}"));
            let report = verify(&protected.image, &protected.secmon);
            assert!(
                report.is_clean(),
                "trial {trial}: verifier errors on pipeline output:\n{}",
                report.render_human()
            );
            assert_eq!(
                report.stats.sites_checked, protected.report.guards_inserted,
                "trial {trial}: every inserted guard must be rechecked"
            );
            if let (Some(max), Some(bound)) =
                (report.stats.max_spacing, protected.secmon.spacing_bound)
            {
                assert!(
                    max <= bound,
                    "trial {trial}: static max {max} > bound {bound}"
                );
            }
            // The image the verifier accepts must also run clean.
            let run = protected.run(SimConfig::default());
            assert_eq!(run.outcome, Outcome::Exit(0), "trial {trial}");
        }
    }
}

/// A fully guarded plaintext image plus its monitor configuration.
fn guarded() -> (flexprot_isa::Image, SecMonConfig) {
    let image = flexprot_asm::assemble_or_panic(LOOP_CALL);
    let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
    let p = protect(&image, &config, None).unwrap();
    (p.image, p.secmon)
}

#[test]
fn guard_strip_yields_malformed_guard_errors() {
    let (mut image, secmon) = guarded();
    for &site in secmon.sites.keys() {
        let idx = image.text_index_of(site).unwrap();
        for k in 0..4 {
            image.text[idx + k] = Inst::NOP.encode();
        }
    }
    let report = verify(&image, &secmon);
    assert!(!report.is_clean());
    assert!(
        report.with_id("FP101").count() > 0,
        "stripping guards must raise FP101:\n{}",
        report.render_human()
    );
}

#[test]
fn every_single_word_nop_out_is_detected() {
    let (image, secmon) = guarded();
    let nop = Inst::NOP.encode();
    for index in 0..image.text.len() {
        if image.text[index] == nop {
            continue;
        }
        let mut mutated = image.clone();
        mutated.text[index] = nop;
        let report = verify(&mutated, &secmon);
        assert!(
            !report.is_clean(),
            "NOP at index {index} ({:#010x}) went undetected",
            image.addr_of_index(index)
        );
        assert!(
            report.count(Severity::Error) >= 1
                && (report.with_id("FP101").count() > 0
                    || report.with_id("FP102").count() > 0
                    || report.with_id("FP301").count() > 0),
            "NOP at index {index}: no stable guard/reloc lint fired:\n{}",
            report.render_human()
        );
    }
}

#[test]
fn random_instruction_substitution_is_detected() {
    let (image, secmon) = guarded();
    let mut rng = Rng64::new(77);
    let mut detected = 0;
    let mut applied = 0;
    for _ in 0..40 {
        let index = rng.index(image.text.len());
        let replacement = Inst::Addi {
            rt: flexprot_isa::Reg::T0,
            rs: flexprot_isa::Reg::T0,
            imm: rng.next_i16(),
        }
        .encode();
        if image.text[index] == replacement {
            continue;
        }
        let mut mutated = image.clone();
        mutated.text[index] = replacement;
        applied += 1;
        if !verify(&mutated, &secmon).is_clean() {
            detected += 1;
        }
    }
    assert!(applied > 0);
    assert_eq!(
        detected, applied,
        "all substitutions in a fully guarded image must be detected"
    );
}

#[test]
fn ciphertext_tamper_is_detected_exactly_when_the_contract_signs_the_bit() {
    use flexprot_secmon::guard::{decode_guard_symbol, is_guard_form};

    let image = flexprot_asm::assemble_or_panic(LOOP_CALL);
    let config = ProtectionConfig::new()
        .with_guards(GuardConfig::with_density(1.0))
        .with_encryption(EncryptConfig::whole_program(0xFACE));
    let p = protect(&image, &config, None).unwrap();
    let plain = flexprot_verify::decrypt_text(&p.image, &p.secmon);

    // Guard-word indices: their salt channel (rt high bits, pool funct
    // choice) is deliberately unsigned — the watermark travels there — so a
    // flip that keeps the shape and the symbol is inert to the hardware and
    // must be inert to the verifier too.
    let guard_words: std::collections::BTreeSet<usize> = p
        .secmon
        .sites
        .iter()
        .flat_map(|(&site, s)| {
            let si = p.image.text_index_of(site).unwrap();
            si..si + s.symbols as usize
        })
        .collect();

    let mut rng = Rng64::new(9);
    let (mut signed_flips, mut inert_flips) = (0, 0);
    for _ in 0..60 {
        let index = rng.index(p.image.text.len());
        let bit = 1u32 << rng.below(32);
        let mut mutated = p.image.clone();
        mutated.text[index] ^= bit;
        // XOR keystream: a ciphertext bit flip is the same plaintext bit flip.
        let flipped = plain[index] ^ bit;
        let inert = guard_words.contains(&index)
            && is_guard_form(flipped)
            && decode_guard_symbol(flipped) == decode_guard_symbol(plain[index]);
        let report = verify(&mutated, &p.secmon);
        if inert {
            inert_flips += 1;
            assert!(
                report.is_clean(),
                "salt-channel flip at index {index} must stay clean:\n{}",
                report.render_human()
            );
        } else {
            signed_flips += 1;
            assert!(
                !report.is_clean(),
                "ciphertext bit flip at index {index} (bit {bit:#010x}) went undetected:\n{}",
                report.render_human()
            );
        }
    }
    assert!(
        signed_flips > 0 && inert_flips > 0,
        "both classes must be exercised"
    );
}

#[test]
fn stripping_the_schedule_trips_the_spacing_dataflow() {
    // Attack model: the guard schedule is lost/cleared but the spacing
    // bound survives — the dataflow must find the now guard-free loop.
    // BRANCHY's loop contains no call, so no reset point can break the
    // cycle (LOOP_CALL's loop legitimately resets at its call return).
    let image = flexprot_asm::assemble_or_panic(BRANCHY);
    let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
    let p = protect(&image, &config, None).unwrap();
    let (image, mut secmon) = (p.image, p.secmon);
    assert!(secmon.spacing_bound.is_some());
    secmon.sites.clear();
    secmon.window_starts.clear();
    let report = verify(&image, &secmon);
    assert!(
        report.with_id("FP202").count() > 0,
        "guard-free protected loop must exceed the bound:\n{}",
        report.render_human()
    );
}

#[test]
fn missing_bound_is_a_warning_not_an_error() {
    let image = flexprot_asm::assemble_or_panic(BRANCHY);
    let config = ProtectionConfig::new().with_guards(GuardConfig {
        enforce_spacing: false,
        ..GuardConfig::with_density(0.4)
    });
    let p = protect(&image, &config, None).unwrap();
    assert!(p.secmon.spacing_bound.is_none());
    let report = verify(&p.image, &p.secmon);
    assert!(report.is_clean());
    assert!(
        report.with_id("FP203").count() == 1,
        "expected exactly one missing-bound warning:\n{}",
        report.render_human()
    );
}

#[test]
fn policy_overrides_change_the_verdict() {
    let (mut image, secmon) = guarded();
    // Break one signature.
    let &site = secmon.sites.keys().next().unwrap();
    let idx = image.text_index_of(site).unwrap();
    image.text[idx.checked_sub(1).unwrap()] ^= 1 << 5; // body word before the site
    let default_report = verify(&image, &secmon);
    assert!(!default_report.is_clean());

    // FP703 is the abstract-interpretation re-derivation of the same
    // tamper FP102 catches concretely; both must be demoted for a clean
    // verdict.
    let allow = LintPolicy::new::<&str>(&[], &["FP102", "FP301", "FP703"]).unwrap();
    let relaxed = verify_with_policy(&image, &secmon, &allow);
    assert!(
        relaxed.is_clean(),
        "allowing FP102/FP301/FP703 must demote the findings:\n{}",
        relaxed.render_human()
    );

    let deny = LintPolicy::new(&["FP501"], &[]).unwrap();
    let strict = verify_with_policy(&image, &secmon, &deny);
    assert!(strict.count(Severity::Error) >= default_report.count(Severity::Error));
}

#[test]
fn transparent_config_on_plain_image_is_clean() {
    let image = flexprot_asm::assemble_or_panic(BRANCHY);
    let report = verify(&image, &SecMonConfig::transparent());
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.stats.sites_checked, 0);
}
