//! Property tests: the value-set abstract domain against its lattice laws.
//!
//! `absint`'s `AbsVal` is a finite-height lattice only because the Set
//! variant caps at `MAX_SET` members — the cap *is* the widening. These
//! properties pin the algebra that the fixpoint solver and the
//! translation validator silently rely on: `join` is a commutative,
//! associative, idempotent least upper bound; `from_values` canonicalises
//! (sorted, distinct, auto-widened); ascending chains terminate within a
//! bounded number of strict increases; and `map`/`map2` are sound
//! abstractions of their concrete operations.

use flexprot_isa::Rng64;
use flexprot_verify::absint::MAX_SET;
use flexprot_verify::AbsVal;

/// A random lattice element, biased across all four variants. Values are
/// drawn from a small universe so joins collide often enough to exercise
/// dedup and the cap.
fn arb(rng: &mut Rng64) -> AbsVal {
    match rng.below(10) {
        0 => AbsVal::Bot,
        1 => AbsVal::Top,
        2..=4 => AbsVal::Const(rng.below(32) as u32),
        _ => {
            let n = rng.range_inclusive(0, (MAX_SET + 4) as u64);
            AbsVal::from_values((0..n).map(|_| rng.below(32) as u32))
        }
    }
}

/// Partial order via the lub: `a <= b` iff `a.join(b) == b`.
fn leq(a: &AbsVal, b: &AbsVal) -> bool {
    &a.join(b) == b
}

#[test]
fn join_is_commutative_associative_idempotent() {
    let mut rng = Rng64::new(0xAB51_1A77);
    for _ in 0..2000 {
        let (a, b, c) = (arb(&mut rng), arb(&mut rng), arb(&mut rng));
        assert_eq!(a.join(&b), b.join(&a), "commutativity: {a:?} {b:?}");
        assert_eq!(
            a.join(&b).join(&c),
            a.join(&b.join(&c)),
            "associativity: {a:?} {b:?} {c:?}"
        );
        assert_eq!(a.join(&a), a, "idempotence: {a:?}");
        // Bot and Top are the lattice bounds.
        assert_eq!(a.join(&AbsVal::Bot), a);
        assert_eq!(a.join(&AbsVal::Top), AbsVal::Top);
    }
}

#[test]
fn join_is_an_upper_bound_and_admits_both_concretisations() {
    let mut rng = Rng64::new(0x0B0D_B0D5);
    for _ in 0..2000 {
        let (a, b) = (arb(&mut rng), arb(&mut rng));
        let j = a.join(&b);
        assert!(leq(&a, &j), "{a:?} <= {a:?} join {b:?}");
        assert!(leq(&b, &j), "{b:?} <= {a:?} join {b:?}");
        // Soundness: everything either side admits, the join admits.
        for v in 0..32u32 {
            if a.admits(v) || b.admits(v) {
                assert!(j.admits(v), "{j:?} must admit {v} from {a:?}/{b:?}");
            }
        }
    }
}

#[test]
fn from_values_canonicalises_and_widens_at_the_cap() {
    let mut rng = Rng64::new(0xCA90_CA90);
    for _ in 0..2000 {
        let n = rng.range_inclusive(0, 2 * MAX_SET as u64);
        let vals: Vec<u32> = (0..n).map(|_| rng.below(64) as u32).collect();
        let av = AbsVal::from_values(vals.iter().copied());
        let mut distinct = vals.clone();
        distinct.sort_unstable();
        distinct.dedup();
        match &av {
            AbsVal::Bot => assert!(distinct.is_empty()),
            AbsVal::Const(w) => assert_eq!(distinct, vec![*w]),
            AbsVal::Set(ws) => {
                assert_eq!(*ws, distinct, "sets are sorted and distinct");
                assert!(
                    (2..=MAX_SET).contains(&ws.len()),
                    "set size {} out of range",
                    ws.len()
                );
            }
            AbsVal::Top => assert!(distinct.len() > MAX_SET, "premature widening"),
        }
        for &v in &distinct {
            assert!(av.admits(v));
        }
    }
}

#[test]
fn ascending_chains_terminate_within_the_lattice_height() {
    // Joining random one-value increments can strictly increase the
    // element at most MAX_SET + 1 times (Bot -> Const -> |Set| growing to
    // MAX_SET -> Top): the cap-as-widening argument for termination of
    // the fixpoint iteration, checked on random chains.
    let mut rng = Rng64::new(0x7E_2147A7E);
    for _ in 0..500 {
        let mut cur = AbsVal::Bot;
        let mut strict_increases = 0usize;
        for _ in 0..10 * MAX_SET {
            let next = cur.join(&AbsVal::Const(rng.next_u32()));
            assert!(leq(&cur, &next), "chain must ascend");
            if next != cur {
                strict_increases += 1;
                cur = next;
            }
        }
        assert!(
            strict_increases <= MAX_SET + 1,
            "chain rose {strict_increases} times"
        );
        // And once Top is reached, it is absorbing.
        if cur == AbsVal::Top {
            assert_eq!(cur.join(&arb(&mut rng)), AbsVal::Top);
        }
    }
}

#[test]
fn map_and_map2_are_sound_abstractions() {
    let mut rng = Rng64::new(0x50A9_50A9);
    for _ in 0..2000 {
        let (a, b) = (arb(&mut rng), arb(&mut rng));
        let f = |x: u32| x.wrapping_mul(3).wrapping_add(1);
        let fa = a.map(f);
        if let Some(vs) = a.values() {
            for &v in vs {
                assert!(fa.admits(f(v)), "{fa:?} must admit f({v})");
            }
        } else {
            assert_eq!(fa, AbsVal::Top);
        }
        let g = u32::wrapping_add;
        let gab = a.map2(&b, g);
        match (a.values(), b.values()) {
            (Some(xs), Some(ys)) => {
                for &x in xs {
                    for &y in ys {
                        assert!(gab.admits(g(x, y)), "{gab:?} must admit {x}+{y}");
                    }
                }
                // Bot is absorbing for binary ops (no feasible pair).
                if xs.is_empty() || ys.is_empty() {
                    assert_eq!(gab, AbsVal::Bot);
                }
            }
            // Bot absorbs even against Top — an empty side leaves no
            // feasible pair; otherwise Top wins.
            (Some(&[]), None) | (None, Some(&[])) => assert_eq!(gab, AbsVal::Bot),
            _ => assert_eq!(gab, AbsVal::Top),
        }
    }
}
