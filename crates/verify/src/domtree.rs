//! Dominator and post-dominator trees.
//!
//! Iterative dominators in the style of Cooper, Harvey and Kennedy ("A
//! Simple, Fast Dominance Algorithm"): walk the nodes in reverse
//! post-order intersecting the immediate dominators of processed
//! predecessors until a fixpoint.  Post-dominators reuse the same solver
//! on the reversed graph with a virtual exit node fanned in from every
//! natural exit.
//!
//! The functions are generic over a plain successor-list graph so the
//! same code serves the block-level [`crate::cfg::Cfg`] in production and
//! the synthetic random digraphs the property tests enumerate paths on.

/// An immediate-dominator tree over graph nodes `0..n`.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per node; `None` for the root itself and for
    /// nodes unreachable from it.
    pub idom: Vec<Option<usize>>,
    /// The root the tree was computed from.
    pub root: usize,
}

impl DomTree {
    /// Whether `n` is reachable from the root.
    pub fn reachable(&self, n: usize) -> bool {
        n == self.root || self.idom[n].is_some()
    }

    /// Whether `a` dominates `b` (reflexively: every node dominates
    /// itself).  Unreachable nodes dominate nothing and are dominated by
    /// nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.reachable(a) || !self.reachable(b) {
            return false;
        }
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            match self.idom[x] {
                Some(p) => x = p,
                None => return false,
            }
        }
    }

    /// Whether `a` dominates `b` and `a != b`.
    pub fn strictly_dominates(&self, a: usize, b: usize) -> bool {
        a != b && self.dominates(a, b)
    }
}

/// Reverse post-order from `root`; returns the order and per-node RPO
/// numbers (`None` = unreachable).
fn reverse_postorder(root: usize, succs: &[Vec<usize>]) -> (Vec<usize>, Vec<Option<usize>>) {
    let n = succs.len();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut postorder = Vec::new();
    // Iterative DFS keeping an explicit edge cursor per frame.
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    state[root] = 1;
    while let Some(&(node, cursor)) = stack.last() {
        if let Some(&next) = succs[node].get(cursor) {
            stack.last_mut().expect("frame").1 += 1;
            if state[next] == 0 {
                state[next] = 1;
                stack.push((next, 0));
            }
        } else {
            state[node] = 2;
            postorder.push(node);
            stack.pop();
        }
    }
    postorder.reverse();
    let mut rpo_num = vec![None; n];
    for (k, &node) in postorder.iter().enumerate() {
        rpo_num[node] = Some(k);
    }
    (postorder, rpo_num)
}

/// Computes the dominator tree of the graph `succs` rooted at `root`.
pub fn dominators(root: usize, succs: &[Vec<usize>]) -> DomTree {
    let n = succs.len();
    let (order, rpo_num) = reverse_postorder(root, succs);
    let preds = crate::dataflow::invert(succs);

    // During iteration idom[root] = root so `intersect` can walk chains;
    // published as `None` at the end.
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);
    let intersect = |mut a: usize, mut b: usize, idom: &[Option<usize>]| -> usize {
        while a != b {
            let (ra, rb) = (rpo_num[a].unwrap(), rpo_num[b].unwrap());
            if ra > rb {
                a = idom[a].unwrap();
            } else {
                b = idom[b].unwrap();
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            if b == root {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(p, cur, &idom),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom[root] = None;
    DomTree { idom, root }
}

/// Computes the post-dominator tree of `succs`.
///
/// Returns the tree over `n + 1` nodes — the extra node is a virtual exit
/// every natural exit (node with no successors) flows into — and the
/// virtual exit's index.  `tree.dominates(a, b)` then reads "`a`
/// post-dominates `b`".  Nodes that reach no exit (infinite loops) are
/// unreachable in the reversed graph and post-dominate nothing.
pub fn post_dominators(succs: &[Vec<usize>]) -> (DomTree, usize) {
    let n = succs.len();
    let exit = n;
    let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (i, ss) in succs.iter().enumerate() {
        for &s in ss {
            rsuccs[s].push(i);
        }
        if ss.is_empty() {
            rsuccs[exit].push(i);
        }
    }
    (dominators(exit, &rsuccs), exit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_dominators() {
        // 0 -> {1, 2} -> 3
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let t = dominators(0, &succs);
        assert_eq!(t.idom, vec![None, Some(0), Some(0), Some(0)]);
        assert!(t.dominates(0, 3));
        assert!(!t.dominates(1, 3), "join is not dominated by either arm");
        assert!(t.dominates(3, 3), "domination is reflexive");
    }

    #[test]
    fn loop_back_edge_keeps_header_dominating_body() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let succs = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let t = dominators(0, &succs);
        assert!(t.strictly_dominates(1, 2));
        assert!(t.strictly_dominates(1, 3));
    }

    #[test]
    fn unreachable_nodes_are_outside_the_tree() {
        let succs = vec![vec![1], vec![], vec![1]]; // node 2 unreachable
        let t = dominators(0, &succs);
        assert!(!t.reachable(2));
        assert!(!t.dominates(2, 1));
        assert!(!t.dominates(0, 2));
    }

    #[test]
    fn post_dominators_of_a_diamond() {
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let (pdt, exit) = post_dominators(&succs);
        assert!(pdt.dominates(3, 0), "join post-dominates the fork");
        assert!(!pdt.dominates(1, 0));
        assert!(pdt.dominates(exit, 0));
    }

    #[test]
    fn infinite_loop_post_dominates_nothing() {
        // 0 -> 1 <-> 2 (no exit reachable from anywhere)
        let succs = vec![vec![1], vec![2], vec![1]];
        let (pdt, _) = post_dominators(&succs);
        assert!(!pdt.dominates(1, 0));
        assert!(!pdt.reachable(0));
    }
}
