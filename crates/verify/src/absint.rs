//! Abstract interpretation over the ISA: constant propagation with a
//! value-set domain, and the symbolic checksum proofs built on it.
//!
//! The concrete checks in [`crate::checks`] recompute each guard's window
//! hash once, over the shipped bytes. This module re-derives the same
//! conclusion through a different theory: a small abstract interpreter
//! symbolically executes the program over the lattice
//!
//! ```text
//!            Top                (any word)
//!         /   |   \
//!   {a,b}  {a,c}  ...           (value sets, ≤ MAX_SET members)
//!         \   |   /
//!      Const(a) Const(b) ...    (single known word)
//!         \   |   /
//!            Bot                (no feasible value)
//! ```
//!
//! capping every set at [`MAX_SET`] members — the cap *is* the widening:
//! a join that would exceed it goes straight to `Top`, so chains are
//! bounded and the worklist solver in [`crate::dataflow`] terminates.
//! The register analysis ([`analyze_registers`]) is a forward instance of
//! that solver whose facts are whole abstract register files; its
//! transfer function mirrors the simulator's semantics instruction by
//! instruction (wrapping arithmetic, division by zero yielding zero,
//! `$zero` pinned to `Const(0)`, loads unknown).
//!
//! [`prove_guards`] then replays each guard's checksum loop abstractly:
//! every window word is valued in the domain, an [`AbsHasher`] streams the
//! valuations through the *real* [`WindowHasher`] (one concrete hasher per
//! candidate valuation path), and the resulting digest value is compared
//! against the signature constant embedded in the guard's operand fields.
//! The verdict is a proof ([`Verdict::Proven`]), a refutation with a
//! concrete witness word ([`Verdict::Mismatch`]), or an honest
//! [`Verdict::Unproven`] with the reason precision ran out. The register
//! value-sets guard the proof's one soundness obligation: a store
//! executing inside the hashed window whose abstract address may land in
//! the text segment would invalidate the static-text assumption, so such
//! windows are reported unproven rather than proven.

use flexprot_isa::{Image, Inst, Reg};
use flexprot_secmon::guard::{decode_guard_symbol, signature_from_symbols, WindowHasher};
use flexprot_secmon::SecMonConfig;

use crate::coverage::GuardWindow;
use crate::dataflow::{self, Analysis, Direction};
use crate::flow::Flow;

/// Maximum members of a value set before widening to `Top`.
pub const MAX_SET: usize = 8;

/// One element of the value-set lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// No feasible value (unreachable or empty join).
    Bot,
    /// Exactly one feasible value.
    Const(u32),
    /// Between 2 and [`MAX_SET`] feasible values, sorted and distinct.
    Set(Vec<u32>),
    /// Any value (precision exhausted).
    Top,
}

impl AbsVal {
    /// Builds the smallest lattice element containing every value yielded
    /// by `values`, widening to `Top` past [`MAX_SET`] distinct members.
    pub fn from_values<I: IntoIterator<Item = u32>>(values: I) -> AbsVal {
        let mut vs: Vec<u32> = values.into_iter().collect();
        vs.sort_unstable();
        vs.dedup();
        match vs.len() {
            0 => AbsVal::Bot,
            1 => AbsVal::Const(vs[0]),
            n if n <= MAX_SET => AbsVal::Set(vs),
            _ => AbsVal::Top,
        }
    }

    /// The concretisation as a slice, or `None` for `Top`.
    pub fn values(&self) -> Option<&[u32]> {
        match self {
            AbsVal::Bot => Some(&[]),
            AbsVal::Const(w) => Some(std::slice::from_ref(w)),
            AbsVal::Set(ws) => Some(ws),
            AbsVal::Top => None,
        }
    }

    /// Whether `w` is a feasible concretisation.
    pub fn admits(&self, w: u32) -> bool {
        self.values().is_none_or(|vs| vs.contains(&w))
    }

    /// Least upper bound.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        match (self.values(), other.values()) {
            (Some(a), Some(b)) => AbsVal::from_values(a.iter().chain(b).copied()),
            _ => AbsVal::Top,
        }
    }

    /// Applies a unary concrete operation pointwise.
    pub fn map(&self, f: impl Fn(u32) -> u32) -> AbsVal {
        match self.values() {
            Some(vs) => AbsVal::from_values(vs.iter().map(|&v| f(v))),
            None => AbsVal::Top,
        }
    }

    /// Applies a binary concrete operation over the cartesian product of
    /// both concretisations (widening past the set cap as usual).
    pub fn map2(&self, other: &AbsVal, f: impl Fn(u32, u32) -> u32) -> AbsVal {
        match (self.values(), other.values()) {
            (Some(&[]), _) | (_, Some(&[])) => AbsVal::Bot,
            (Some(a), Some(b)) => {
                let mut out = Vec::with_capacity(a.len() * b.len());
                for &x in a {
                    for &y in b {
                        out.push(f(x, y));
                    }
                }
                AbsVal::from_values(out)
            }
            _ => AbsVal::Top,
        }
    }
}

/// Abstract register file at one program point; `None` means the point is
/// unreachable (the lattice bottom for whole states).
pub type RegState = Option<Vec<AbsVal>>;

/// Joins `from` into `into` pointwise, reporting change.
fn join_states(into: &mut RegState, from: &RegState) -> bool {
    let Some(from) = from else { return false };
    match into {
        None => {
            *into = Some(from.clone());
            true
        }
        Some(into) => {
            let mut changed = false;
            for (i, f) in into.iter_mut().zip(from) {
                let joined = i.join(f);
                if joined != *i {
                    *i = joined;
                    changed = true;
                }
            }
            changed
        }
    }
}

/// The forward constant-propagation / value-set analysis, one node per
/// text word over the recovered flow graph.
struct RegAbs<'a> {
    flow: &'a Flow,
    text_base: u32,
}

/// The register file every root starts with: nothing known except the
/// architectural zero.
fn entry_state() -> Vec<AbsVal> {
    let mut regs = vec![AbsVal::Top; 32];
    regs[Reg::ZERO.index() as usize] = AbsVal::Const(0);
    regs
}

/// The register (if any) `inst` writes, and its abstract value, mirroring
/// the simulator's concrete semantics over plain (pointer-blind) scalars.
/// Shared by the register analysis here and the memory-sensitive domain in
/// [`crate::memdom`], which layers pointer provenance on top.
pub(crate) fn scalar_eval(addr: u32, inst: Inst, regs: &[AbsVal]) -> Option<(Reg, AbsVal)> {
    use Inst::*;
    let r = |reg: Reg| &regs[reg.index() as usize];
    Some(match inst {
        Sll { rd, rt, sh } => (rd, r(rt).map(|x| x << sh)),
        Srl { rd, rt, sh } => (rd, r(rt).map(|x| x >> sh)),
        Sra { rd, rt, sh } => (rd, r(rt).map(|x| ((x as i32) >> sh) as u32)),
        Sllv { rd, rt, rs } => (rd, r(rt).map2(r(rs), |x, s| x << (s & 31))),
        Srlv { rd, rt, rs } => (rd, r(rt).map2(r(rs), |x, s| x >> (s & 31))),
        Srav { rd, rt, rs } => (
            rd,
            r(rt).map2(r(rs), |x, s| ((x as i32) >> (s & 31)) as u32),
        ),
        Jalr { rd, .. } => (rd, AbsVal::Const(addr.wrapping_add(4))),
        Jal { .. } => (Reg::RA, AbsVal::Const(addr.wrapping_add(4))),
        Mul { rd, rs, rt } => (rd, r(rs).map2(r(rt), u32::wrapping_mul)),
        Div { rd, rs, rt } => (
            rd,
            r(rs).map2(r(rt), |a, b| {
                if b == 0 {
                    0
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                }
            }),
        ),
        Rem { rd, rs, rt } => (
            rd,
            r(rs).map2(r(rt), |a, b| {
                if b == 0 {
                    0
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                }
            }),
        ),
        Add { rd, rs, rt } | Addu { rd, rs, rt } => (rd, r(rs).map2(r(rt), u32::wrapping_add)),
        Sub { rd, rs, rt } | Subu { rd, rs, rt } => (rd, r(rs).map2(r(rt), u32::wrapping_sub)),
        And { rd, rs, rt } => (rd, r(rs).map2(r(rt), |a, b| a & b)),
        Or { rd, rs, rt } => (rd, r(rs).map2(r(rt), |a, b| a | b)),
        Xor { rd, rs, rt } => (rd, r(rs).map2(r(rt), |a, b| a ^ b)),
        Nor { rd, rs, rt } => (rd, r(rs).map2(r(rt), |a, b| !(a | b))),
        Slt { rd, rs, rt } => (
            rd,
            r(rs).map2(r(rt), |a, b| u32::from((a as i32) < (b as i32))),
        ),
        Sltu { rd, rs, rt } => (rd, r(rs).map2(r(rt), |a, b| u32::from(a < b))),
        Addi { rt, rs, imm } => (rt, r(rs).map(|x| x.wrapping_add(imm as i32 as u32))),
        Slti { rt, rs, imm } => (rt, r(rs).map(|x| u32::from((x as i32) < i32::from(imm)))),
        Sltiu { rt, rs, imm } => (rt, r(rs).map(|x| u32::from(x < (imm as i32 as u32)))),
        Andi { rt, rs, imm } => (rt, r(rs).map(|x| x & u32::from(imm))),
        Ori { rt, rs, imm } => (rt, r(rs).map(|x| x | u32::from(imm))),
        Xori { rt, rs, imm } => (rt, r(rs).map(|x| x ^ u32::from(imm))),
        Lui { rt, imm } => (rt, AbsVal::Const(u32::from(imm) << 16)),
        Lb { rt, .. } | Lh { rt, .. } | Lw { rt, .. } | Lbu { rt, .. } | Lhu { rt, .. } => {
            (rt, AbsVal::Top)
        }
        Jr { .. } | Syscall | Break | J { .. } => return None,
        Sb { .. } | Sh { .. } | Sw { .. } => return None,
        Beq { .. } | Bne { .. } | Blez { .. } | Bgtz { .. } | Bltz { .. } | Bgez { .. } => {
            return None
        }
    })
}

impl Analysis for RegAbs<'_> {
    type Fact = RegState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> RegState {
        None
    }

    fn join(&self, into: &mut RegState, from: &RegState) -> bool {
        join_states(into, from)
    }

    fn transfer(&self, node: usize, input: &RegState) -> RegState {
        let Some(regs) = input else { return None };
        let mut regs = regs.clone();
        if let Some(inst) = self.flow.decoded[node] {
            let addr = self.text_base.wrapping_add(4 * node as u32);
            if let Some((rd, val)) = scalar_eval(addr, inst, &regs) {
                if rd != Reg::ZERO {
                    regs[rd.index() as usize] = val;
                }
            }
        }
        Some(regs)
    }
}

/// Runs the value-set analysis, returning the abstract register file
/// *entering* each text word (`None` where no static path arrives).
pub fn analyze_registers(image: &Image, flow: &Flow) -> Vec<RegState> {
    let succs: Vec<Vec<usize>> = flow
        .succs
        .iter()
        .map(|es| es.iter().map(|e| e.to).collect())
        .collect();
    let index_of = |addr: u32| -> Option<usize> {
        if addr < image.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - image.text_base) / 4) as usize;
        (i < flow.decoded.len()).then_some(i)
    };
    let mut seeds: Vec<(usize, RegState)> = Vec::new();
    if let Some(e) = index_of(image.entry) {
        seeds.push((e, Some(entry_state())));
    }
    for &addr in image.symbols.values() {
        if let Some(i) = index_of(addr) {
            seeds.push((i, Some(entry_state())));
        }
    }
    let analysis = RegAbs {
        flow,
        text_base: image.text_base,
    };
    dataflow::solve(&analysis, &succs, &seeds).input
}

/// Abstract window hasher: one concrete [`WindowHasher`] per candidate
/// valuation path of the absorbed word stream.
///
/// Absorbing a value set forks every live path once per member; past
/// [`MAX_SET`] paths (or on absorbing `Top`) the digest widens to `Top`.
/// Because the underlying hasher is `Copy`, forking is just duplication —
/// the abstract transformer reuses the hardware contract verbatim instead
/// of re-stating the hash algebra.
#[derive(Debug, Clone)]
pub struct AbsHasher {
    /// Live candidate paths; `None` is `Top`.
    paths: Option<Vec<WindowHasher>>,
}

impl AbsHasher {
    /// A hasher in the start-of-window state.
    pub fn new(key: u64) -> AbsHasher {
        AbsHasher {
            paths: Some(vec![WindowHasher::new(key)]),
        }
    }

    /// Absorbs one abstract word at `addr`.
    pub fn absorb(&mut self, addr: u32, word: &AbsVal) {
        let Some(paths) = &mut self.paths else { return };
        match word.values() {
            None => self.paths = None,
            Some(ws) => {
                let mut forked = Vec::with_capacity(paths.len() * ws.len().max(1));
                for p in paths.iter() {
                    for &w in ws {
                        let mut q = *p;
                        q.absorb(addr, w);
                        forked.push(q);
                    }
                }
                if forked.len() > MAX_SET {
                    self.paths = None;
                } else {
                    *paths = forked;
                }
            }
        }
    }

    /// The abstract digest of everything absorbed.
    pub fn digest(&self) -> AbsVal {
        match &self.paths {
            None => AbsVal::Top,
            Some(paths) => AbsVal::from_values(paths.iter().map(WindowHasher::digest)),
        }
    }
}

/// Why a checksum proof could not conclude, as a stable typed code.
///
/// Baselines and CSV sweeps key on [`UnprovenReason::code`] (snake_case,
/// stable across releases); the `Display` impl carries the human prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnprovenReason {
    /// The window failed structural verification upstream.
    NotStructural,
    /// The window extends past the end of the text segment.
    OutOfBounds,
    /// An in-window store may overlap the hashed interval.
    StoreMayAliasWindow {
        /// Address of the store instruction.
        store_addr: u32,
    },
    /// An in-window store provably rewrites the hashed interval, so the
    /// static valuation cannot be ordered against the hash.
    StoreClobbersWindow {
        /// Address of the store instruction.
        store_addr: u32,
        /// A concrete target address inside the window.
        target_addr: u32,
    },
    /// No feasible valuation reaches the window (dead code).
    NoFeasibleValuation,
    /// The valuation forked past the value-set budget ([`MAX_SET`]).
    ValuationBudget,
    /// Several feasible digests exist and one matches the signature.
    AmbiguousDigest,
}

impl UnprovenReason {
    /// The stable snake_case code baselines diff on.
    pub fn code(&self) -> &'static str {
        match self {
            UnprovenReason::NotStructural => "not_structural",
            UnprovenReason::OutOfBounds => "window_out_of_bounds",
            UnprovenReason::StoreMayAliasWindow { .. } => "store_may_alias_window",
            UnprovenReason::StoreClobbersWindow { .. } => "store_clobbers_window",
            UnprovenReason::NoFeasibleValuation => "no_feasible_valuation",
            UnprovenReason::ValuationBudget => "valuation_budget_exceeded",
            UnprovenReason::AmbiguousDigest => "ambiguous_digest",
        }
    }
}

impl std::fmt::Display for UnprovenReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnprovenReason::NotStructural => write!(f, "window failed structural verification"),
            UnprovenReason::OutOfBounds => write!(f, "window extends past the end of text"),
            UnprovenReason::StoreMayAliasWindow { store_addr } => {
                write!(
                    f,
                    "store at {store_addr:#010x} may target the hashed window"
                )
            }
            UnprovenReason::StoreClobbersWindow {
                store_addr,
                target_addr,
            } => write!(
                f,
                "store at {store_addr:#010x} provably rewrites the hashed window \
                 at {target_addr:#010x}"
            ),
            UnprovenReason::NoFeasibleValuation => write!(f, "window has no feasible valuation"),
            UnprovenReason::ValuationBudget => {
                write!(
                    f,
                    "window valuation exceeds the value-set budget ({MAX_SET})"
                )
            }
            UnprovenReason::AmbiguousDigest => {
                write!(f, "digest is ambiguous over the value set")
            }
        }
    }
}

/// The outcome of one guard's checksum proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The embedded signature provably equals the window digest.
    Proven {
        /// The (unique) digest value.
        digest: u32,
    },
    /// No feasible valuation matches the embedded signature.
    Mismatch {
        /// Signature spelled by the guard operand fields.
        claimed: u32,
        /// A feasible digest it disagrees with.
        computed: u32,
        /// Address of a symbol word whose operand byte disagrees with the
        /// computed digest — the concrete witness.
        witness_addr: u32,
    },
    /// The proof ran out of precision or preconditions; not an error.
    Unproven {
        /// Why the proof could not conclude.
        reason: UnprovenReason,
    },
}

/// One guard site's proof outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardProof {
    /// Address of the first guard symbol word.
    pub site_addr: u32,
    /// Proof outcome.
    pub verdict: Verdict,
}

/// Symbolically executes each guard's checksum and judges its embedded
/// signature constant. `mem` is the result of
/// [`crate::memdom::analyze_memory`]; `windows` the structural windows
/// from the guard check.
pub fn prove_guards(
    image: &Image,
    config: &SecMonConfig,
    text: &[u32],
    flow: &Flow,
    mem: &[crate::memdom::MemFact],
    windows: &[GuardWindow],
) -> Vec<GuardProof> {
    windows
        .iter()
        .map(|w| {
            let verdict = prove_window(image, config, text, flow, mem, w);
            GuardProof {
                site_addr: w.site_addr,
                verdict,
            }
        })
        .collect()
}

fn prove_window(
    image: &Image,
    config: &SecMonConfig,
    text: &[u32],
    flow: &Flow,
    mem: &[crate::memdom::MemFact],
    w: &GuardWindow,
) -> Verdict {
    if !w.structural {
        return Verdict::Unproven {
            reason: UnprovenReason::NotStructural,
        };
    }
    if w.end() > text.len() {
        return Verdict::Unproven {
            reason: UnprovenReason::OutOfBounds,
        };
    }
    // Soundness obligation: the proof values window words from the static
    // text, so a reachable in-window store that may rewrite *this hashed
    // interval* would invalidate it. The memory-sensitive points-to
    // partition (see `crate::alias`) decides the overlap; a store that
    // provably lands elsewhere — the stack frame, the data segment, even
    // other text — cannot change what this window hashes and signs.
    let aliasing = crate::alias::partition_window(image, flow, mem, w);
    if let Some(&(b, target_addr)) = aliasing.must_alias.first() {
        return Verdict::Unproven {
            reason: UnprovenReason::StoreClobbersWindow {
                store_addr: image.text_base + 4 * b as u32,
                target_addr,
            },
        };
    }
    if let Some(&b) = aliasing.may_alias.first() {
        return Verdict::Unproven {
            reason: UnprovenReason::StoreMayAliasWindow {
                store_addr: image.text_base + 4 * b as u32,
            },
        };
    }

    // Abstract replay of the hardware's checksum loop: body words, then
    // the signed tail after the symbols, each valued from the static text.
    let mut hasher = AbsHasher::new(config.guard_key);
    let word_val = |i: usize| AbsVal::Const(text[i]);
    for b in w.start..w.site {
        hasher.absorb(image.text_base + 4 * b as u32, &word_val(b));
    }
    for t in 0..w.tail {
        let i = w.site + w.symbols + t;
        hasher.absorb(image.text_base + 4 * i as u32, &word_val(i));
    }
    let symbols: Vec<u8> = (0..w.symbols)
        .map(|k| decode_guard_symbol(text[w.site + k]))
        .collect();
    let claimed = signature_from_symbols(&symbols);

    match hasher.digest() {
        AbsVal::Bot => Verdict::Unproven {
            reason: UnprovenReason::NoFeasibleValuation,
        },
        AbsVal::Top => Verdict::Unproven {
            reason: UnprovenReason::ValuationBudget,
        },
        AbsVal::Const(computed) if computed == claimed => Verdict::Proven { digest: computed },
        AbsVal::Const(computed) => Verdict::Mismatch {
            claimed,
            computed,
            witness_addr: witness(w, &symbols, computed),
        },
        AbsVal::Set(ds) => {
            if ds.contains(&claimed) {
                Verdict::Unproven {
                    reason: UnprovenReason::AmbiguousDigest,
                }
            } else {
                let computed = ds[0];
                Verdict::Mismatch {
                    claimed,
                    computed,
                    witness_addr: witness(w, &symbols, computed),
                }
            }
        }
    }
}

/// The first symbol word whose decoded operand byte disagrees with the
/// computed digest — the concrete word an auditor should look at.
fn witness(w: &GuardWindow, symbols: &[u8], computed: u32) -> u32 {
    let expect = computed.to_le_bytes();
    for (k, &sym) in symbols.iter().enumerate().take(4) {
        if sym != expect[k] {
            return w.site_addr + 4 * k as u32;
        }
    }
    w.site_addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_secmon::guard::{encode_guard_inst, signature_symbols, SIG_SYMBOLS};

    fn consts(vals: &[u32]) -> AbsVal {
        AbsVal::from_values(vals.iter().copied())
    }

    #[test]
    fn lattice_normalisation_and_join() {
        assert_eq!(consts(&[]), AbsVal::Bot);
        assert_eq!(consts(&[7]), AbsVal::Const(7));
        assert_eq!(consts(&[3, 1, 3]), AbsVal::Set(vec![1, 3]));
        let nine: Vec<u32> = (0..=MAX_SET as u32).collect();
        assert_eq!(consts(&nine), AbsVal::Top);
        assert_eq!(AbsVal::Const(1).join(&AbsVal::Const(1)), AbsVal::Const(1));
        assert_eq!(
            AbsVal::Const(1).join(&AbsVal::Const(2)),
            AbsVal::Set(vec![1, 2])
        );
        assert_eq!(AbsVal::Bot.join(&AbsVal::Const(9)), AbsVal::Const(9));
        assert_eq!(AbsVal::Top.join(&AbsVal::Const(9)), AbsVal::Top);
        assert!(AbsVal::Top.admits(42));
        assert!(consts(&[1, 2]).admits(2));
        assert!(!consts(&[1, 2]).admits(3));
    }

    #[test]
    fn map2_takes_the_cartesian_product_and_widens() {
        let a = consts(&[1, 2]);
        let b = consts(&[10, 20]);
        assert_eq!(
            a.map2(&b, u32::wrapping_add),
            AbsVal::Set(vec![11, 12, 21, 22])
        );
        assert_eq!(AbsVal::Bot.map2(&b, u32::wrapping_add), AbsVal::Bot);
        assert_eq!(a.map2(&AbsVal::Top, u32::wrapping_add), AbsVal::Top);
        // 3 × 3 distinct sums exceed the cap.
        let wide = consts(&[0, 100, 200]).map2(&consts(&[1, 2, 3]), u32::wrapping_add);
        assert_eq!(wide, AbsVal::Top);
    }

    #[test]
    fn straight_line_constants_propagate() {
        let image = flexprot_asm::assemble_or_panic(
            "main: li $t0, 5\n addi $t1, $t0, 3\n li $v0, 10\n syscall\n",
        );
        let flow = Flow::recover(&image, &image.text.clone());
        let regs = analyze_registers(&image, &flow);
        // State entering the syscall: $t0 = 5, $t1 = 8, $zero = 0.
        let at_syscall = regs.last().unwrap().as_ref().expect("reachable");
        assert_eq!(at_syscall[Reg::T0.index() as usize], AbsVal::Const(5));
        assert_eq!(at_syscall[Reg::T1.index() as usize], AbsVal::Const(8));
        assert_eq!(at_syscall[Reg::ZERO.index() as usize], AbsVal::Const(0));
    }

    #[test]
    fn join_over_branches_builds_value_sets() {
        // Strip the branch-target symbols first: every label is exported
        // as a symbol, and symbols are analysis roots with a Top state.
        let mut image = flexprot_asm::assemble_or_panic(
            "main: beq $a0, $zero, other\n li $t0, 1\n j done\n\
             other: li $t0, 2\n done: li $v0, 10\n syscall\n",
        );
        image.symbols.retain(|name, _| name.as_str() == "main");
        let flow = Flow::recover(&image, &image.text.clone());
        let regs = analyze_registers(&image, &flow);
        let at_done = regs[regs.len() - 2].as_ref().expect("reachable");
        assert_eq!(
            at_done[Reg::T0.index() as usize],
            AbsVal::Set(vec![1, 2]),
            "both arms' constants survive the join"
        );
    }

    #[test]
    fn unreachable_words_have_no_state() {
        // The word after the backward jump is unreachable once its label
        // stops being a root symbol.
        let image = flexprot_asm::assemble_or_panic(
            "main: li $v0, 10\n syscall\n j main\n dead: li $t0, 1\n",
        );
        let flow = Flow::recover(&image, &image.text.clone());
        let regs = analyze_registers(&image, &flow);
        let mut stripped = image.clone();
        stripped.symbols.retain(|name, _| name.as_str() == "main");
        let flow2 = Flow::recover(&stripped, &stripped.text.clone());
        let regs2 = analyze_registers(&stripped, &flow2);
        assert!(regs[3].is_some(), "symbol-seeded word has a state");
        assert!(regs2[3].is_none(), "unreachable word has none");
    }

    #[test]
    fn abs_hasher_const_stream_matches_concrete_hash() {
        let words = [0x1234_5678u32, 0x9ABC_DEF0, 0x0BAD_F00D];
        let mut h = AbsHasher::new(0x55AA);
        for (i, &w) in words.iter().enumerate() {
            h.absorb(0x0040_0000 + 4 * i as u32, &AbsVal::Const(w));
        }
        let concrete = WindowHasher::hash_window(0x55AA, 0x0040_0000, &words);
        assert_eq!(h.digest(), AbsVal::Const(concrete));
    }

    #[test]
    fn abs_hasher_set_stream_contains_every_concretisation() {
        let mut h = AbsHasher::new(7);
        h.absorb(0x0040_0000, &AbsVal::Const(1));
        h.absorb(0x0040_0004, &consts(&[2, 3]));
        let digest = h.digest();
        for second in [2u32, 3] {
            let concrete = WindowHasher::hash_window(7, 0x0040_0000, &[1, second]);
            assert!(digest.admits(concrete), "missing path for {second}");
        }
        // Top in, Top out.
        h.absorb(0x0040_0008, &AbsVal::Top);
        assert_eq!(h.digest(), AbsVal::Top);
    }

    #[test]
    fn abs_hasher_widens_past_the_path_budget() {
        let mut h = AbsHasher::new(7);
        let set = consts(&[1, 2, 3]);
        h.absorb(0x0040_0000, &set);
        h.absorb(0x0040_0004, &set);
        assert_eq!(h.digest(), AbsVal::Top, "9 paths exceed MAX_SET");
    }

    /// Hand-builds an image with one signed guard window and the matching
    /// monitor configuration.
    fn synthetic_guarded() -> (Image, SecMonConfig) {
        let mut image = flexprot_asm::assemble_or_panic(
            "main: li $t0, 5\n li $t1, 6\n nop\n nop\n nop\n nop\n li $v0, 10\n syscall\n",
        );
        let key = 0x1EE7;
        let base = image.text_base;
        // Window body: words 0..2; guard symbols at words 2..6.
        let mut h = WindowHasher::new(key);
        h.absorb(base, image.text[0]);
        h.absorb(base + 4, image.text[1]);
        let sig = h.digest();
        for (k, sym) in signature_symbols(sig).iter().enumerate() {
            image.text[2 + k] = encode_guard_inst(*sym, k as u8).encode();
        }
        let mut config = SecMonConfig::transparent();
        config.guard_key = key;
        config.window_starts.insert(base);
        config.sites.insert(base + 8, Default::default());
        (image, config)
    }

    fn windows_of(
        image: &Image,
        _config: &SecMonConfig,
    ) -> (Flow, Vec<crate::memdom::MemFact>, Vec<GuardWindow>) {
        let text = image.text.clone();
        let flow = Flow::recover(image, &text);
        let mem = crate::memdom::analyze_memory(image, &flow);
        let windows = vec![GuardWindow {
            site_addr: image.text_base + 8,
            start: 0,
            site: 2,
            symbols: SIG_SYMBOLS as usize,
            tail: 0,
            structural: true,
            sound: true,
        }];
        (flow, mem, windows)
    }

    #[test]
    fn intact_guard_is_proven() {
        let (image, config) = synthetic_guarded();
        let (flow, mem, windows) = windows_of(&image, &config);
        let proofs = prove_guards(&image, &config, &image.text, &flow, &mem, &windows);
        assert_eq!(proofs.len(), 1);
        assert!(
            matches!(proofs[0].verdict, Verdict::Proven { .. }),
            "{:?}",
            proofs[0]
        );
    }

    #[test]
    fn corrupted_signature_yields_mismatch_with_witness() {
        let (mut image, config) = synthetic_guarded();
        // Re-encode symbol word 1 with a different symbol: still guard
        // form, but the spelled signature changes.
        let old = decode_guard_symbol(image.text[3]);
        image.text[3] = encode_guard_inst(old ^ 0x01, 1).encode();
        let (flow, mem, windows) = windows_of(&image, &config);
        let proofs = prove_guards(&image, &config, &image.text, &flow, &mem, &windows);
        match &proofs[0].verdict {
            Verdict::Mismatch {
                claimed,
                computed,
                witness_addr,
            } => {
                assert_ne!(claimed, computed);
                assert_eq!(*witness_addr, image.text_base + 12, "symbol word 1");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_body_yields_mismatch() {
        let (mut image, config) = synthetic_guarded();
        image.text[1] ^= 1 << 3;
        let (flow, mem, windows) = windows_of(&image, &config);
        let proofs = prove_guards(&image, &config, &image.text, &flow, &mem, &windows);
        assert!(
            matches!(proofs[0].verdict, Verdict::Mismatch { .. }),
            "{:?}",
            proofs[0]
        );
    }

    #[test]
    fn non_structural_window_is_unproven_not_an_error() {
        let (image, config) = synthetic_guarded();
        let (flow, mem, mut windows) = windows_of(&image, &config);
        windows[0].structural = false;
        windows[0].sound = false;
        let proofs = prove_guards(&image, &config, &image.text, &flow, &mem, &windows);
        assert!(
            matches!(proofs[0].verdict, Verdict::Unproven { .. }),
            "{:?}",
            proofs[0]
        );
    }

    #[test]
    fn store_that_may_hit_text_blocks_the_proof() {
        // A store with an unknown base register address inside the hashed
        // window: the static-text assumption is not provable.
        let mut image = flexprot_asm::assemble_or_panic(
            "main: lw $t2, 0($a0)\n sw $t0, 0($t2)\n nop\n nop\n nop\n nop\n li $v0, 10\n syscall\n",
        );
        let key = 0x1EE7;
        let base = image.text_base;
        let mut h = WindowHasher::new(key);
        h.absorb(base, image.text[0]);
        h.absorb(base + 4, image.text[1]);
        let sig = h.digest();
        for (k, sym) in signature_symbols(sig).iter().enumerate() {
            image.text[2 + k] = encode_guard_inst(*sym, k as u8).encode();
        }
        let mut config = SecMonConfig::transparent();
        config.guard_key = key;
        config.window_starts.insert(base);
        config.sites.insert(base + 8, Default::default());
        let (flow, mem, windows) = windows_of(&image, &config);
        let proofs = prove_guards(&image, &config, &image.text, &flow, &mem, &windows);
        match &proofs[0].verdict {
            Verdict::Unproven { reason } => {
                assert!(
                    matches!(reason, UnprovenReason::StoreMayAliasWindow { .. }),
                    "{reason}"
                );
            }
            other => panic!("expected unproven, got {other:?}"),
        }
    }

    #[test]
    fn store_with_provably_safe_address_does_not_block() {
        // The store base is a known constant pointing into data space.
        let mut image = flexprot_asm::assemble_or_panic(
            "main: li $t2, 0x10000000\n sw $zero, 0($t2)\n nop\n nop\n nop\n nop\n \
             li $v0, 10\n syscall\n",
        );
        let key = 0x1EE7;
        let base = image.text_base;
        let body_len = image.text.len() - 6;
        let mut h = WindowHasher::new(key);
        for i in 0..body_len {
            h.absorb(base + 4 * i as u32, image.text[i]);
        }
        let sig = h.digest();
        for (k, sym) in signature_symbols(sig).iter().enumerate() {
            image.text[body_len + k] = encode_guard_inst(*sym, k as u8).encode();
        }
        let site_addr = base + 4 * body_len as u32;
        let mut config = SecMonConfig::transparent();
        config.guard_key = key;
        config.window_starts.insert(base);
        config.sites.insert(site_addr, Default::default());
        let text = image.text.clone();
        let flow = Flow::recover(&image, &text);
        let mem = crate::memdom::analyze_memory(&image, &flow);
        let windows = vec![GuardWindow {
            site_addr,
            start: 0,
            site: body_len,
            symbols: SIG_SYMBOLS as usize,
            tail: 0,
            structural: true,
            sound: true,
        }];
        let proofs = prove_guards(&image, &config, &image.text, &flow, &mem, &windows);
        assert!(
            matches!(proofs[0].verdict, Verdict::Proven { .. }),
            "{:?}",
            proofs[0]
        );
    }

    /// Signs a window over the first `body_len` words of `image` and
    /// returns everything `prove_guards` needs for it.
    fn sign_prefix_window(
        image: &mut Image,
        key: u64,
        body_len: usize,
    ) -> (
        SecMonConfig,
        Flow,
        Vec<crate::memdom::MemFact>,
        Vec<GuardWindow>,
    ) {
        let base = image.text_base;
        let mut h = WindowHasher::new(key);
        for i in 0..body_len {
            h.absorb(base + 4 * i as u32, image.text[i]);
        }
        let sig = h.digest();
        for (k, sym) in signature_symbols(sig).iter().enumerate() {
            image.text[body_len + k] = encode_guard_inst(*sym, k as u8).encode();
        }
        let site_addr = base + 4 * body_len as u32;
        let mut config = SecMonConfig::transparent();
        config.guard_key = key;
        config.window_starts.insert(base);
        config.sites.insert(site_addr, Default::default());
        let text = image.text.clone();
        let flow = Flow::recover(image, &text);
        let mem = crate::memdom::analyze_memory(image, &flow);
        let windows = vec![GuardWindow {
            site_addr,
            start: 0,
            site: body_len,
            symbols: SIG_SYMBOLS as usize,
            tail: 0,
            structural: true,
            sound: true,
        }];
        (config, flow, mem, windows)
    }

    #[test]
    fn stack_relative_store_in_window_is_discharged() {
        // The historical refusal driver: a frame spill inside the hashed
        // window. Region separation proves it disjoint from the window.
        let mut image = flexprot_asm::assemble_or_panic(
            "main: addi $sp, $sp, -16\n sw $t0, 8($sp)\n nop\n nop\n nop\n nop\n \
             li $v0, 10\n syscall\n",
        );
        let body_len = image.text.len() - 6;
        let (config, flow, mem, windows) = sign_prefix_window(&mut image, 0x1EE7, body_len);
        let proofs = prove_guards(&image, &config, &image.text, &flow, &mem, &windows);
        assert!(
            matches!(proofs[0].verdict, Verdict::Proven { .. }),
            "sp-relative store must not block the proof: {:?}",
            proofs[0]
        );
    }

    #[test]
    fn store_that_provably_rewrites_the_window_refuses_with_clobber() {
        // `la main` is the window's own first word: a must-alias rewrite.
        let mut image = flexprot_asm::assemble_or_panic(
            "main: la $t2, main\n sw $zero, 0($t2)\n nop\n nop\n nop\n nop\n \
             li $v0, 10\n syscall\n",
        );
        let body_len = image.text.len() - 6;
        let (config, flow, mem, windows) = sign_prefix_window(&mut image, 0x1EE7, body_len);
        let proofs = prove_guards(&image, &config, &image.text, &flow, &mem, &windows);
        match &proofs[0].verdict {
            Verdict::Unproven {
                reason:
                    UnprovenReason::StoreClobbersWindow {
                        store_addr,
                        target_addr,
                    },
            } => {
                assert_eq!(*target_addr, image.text_base, "rewrites word 0");
                assert!(*store_addr > image.text_base);
            }
            other => panic!("expected a clobber refusal, got {other:?}"),
        }
    }
}
