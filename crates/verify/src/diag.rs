//! The diagnostics engine: stable lint IDs, severities, findings, policy
//! overrides and rendering.
//!
//! Every check in this crate reports through a [`Finding`] carrying one of
//! the registered [`LintId`]s. IDs are stable across releases — scripts and
//! CI gates may match on them — so new checks take new IDs and retired
//! checks leave their ID reserved.

use std::collections::BTreeSet;
use std::fmt;

/// How serious a finding is.
///
/// Only [`Severity::Error`] findings make a verification fail (non-zero
/// `fplint` exit); warnings and notes are informational unless promoted via
/// [`LintPolicy::deny`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails a verification.
    Note,
    /// Suspicious but possibly intentional; does not fail a verification.
    Warning,
    /// A protection-contract violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One registered lint: stable ID, short name, default severity and a
/// one-line description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable identifier, e.g. `"FP102"`.
    pub id: &'static str,
    /// Short kebab-case name, e.g. `"signature-mismatch"`.
    pub name: &'static str,
    /// Severity applied unless a policy overrides it.
    pub default_severity: Severity,
    /// One-line description for `fplint --lints`.
    pub description: &'static str,
}

macro_rules! lints {
    ($($konst:ident = ($id:literal, $name:literal, $sev:ident, $desc:literal);)*) => {
        $(pub(crate) const $konst: Lint = Lint {
            id: $id,
            name: $name,
            default_severity: Severity::$sev,
            description: $desc,
        };)*
        /// Every registered lint, in ID order.
        pub const LINTS: &[Lint] = &[$($konst),*];
    };
}

lints! {
    UNDECODABLE_TEXT = ("FP001", "undecodable-reachable-text", Error,
        "a reachable text word does not decode as a valid SP32 instruction");
    WILD_CONTROL_TARGET = ("FP002", "wild-control-target", Error,
        "a reachable branch or jump targets an address outside the text segment");
    BAD_ENTRY = ("FP003", "bad-entry-point", Error,
        "the image entry point is not a valid text address");
    MALFORMED_GUARD = ("FP101", "malformed-guard-word", Error,
        "a word at a configured guard site is not a well-formed guard instruction");
    SIGNATURE_MISMATCH = ("FP102", "signature-mismatch", Error,
        "the signature embedded at a guard site disagrees with the recomputed window hash");
    GUARD_OUT_OF_BOUNDS = ("FP103", "guard-sequence-out-of-bounds", Error,
        "a configured guard sequence extends past the end of the text segment");
    MALFORMED_WINDOW = ("FP104", "malformed-guard-window", Error,
        "a guard site has no usable window start or its window is not straight-line");
    UNGUARDED_CYCLE = ("FP201", "unguarded-cycle", Error,
        "a cycle in a protected range contains no guard check, so the spacing counter is unbounded");
    SPACING_EXCEEDED = ("FP202", "spacing-bound-exceeded", Error,
        "some guard-free path exceeds the provisioned spacing bound");
    MISSING_SPACING_BOUND = ("FP203", "missing-spacing-bound", Warning,
        "guards are configured but no spacing bound is provisioned, so guard stripping is not bounded");
    UNRESET_CALL_RETURN = ("FP204", "unreset-call-return", Warning,
        "a call continuation inside a protected range is not a spacing reset point");
    RELOC_FIELD_MISMATCH = ("FP301", "reloc-field-mismatch", Error,
        "an instruction field disagrees with its relocation entry");
    RELOC_TARGET_OOB = ("FP302", "reloc-target-out-of-bounds", Error,
        "a control-flow relocation targets an address outside the text segment");
    UNRELOCATED_CONTROL = ("FP303", "unrelocated-control-transfer", Warning,
        "a reachable direct branch or jump carries no relocation entry");
    RELOC_INDEX_OOB = ("FP304", "reloc-index-out-of-bounds", Error,
        "a relocation entry points past the end of the text segment");
    ADDRESS_RELOC_OOB = ("FP305", "address-reloc-outside-image", Warning,
        "a hi16/lo16 relocation targets an address outside the text and data segments");
    MALFORMED_REGION = ("FP401", "malformed-region", Error,
        "an encrypted region is empty, inverted or not word-aligned");
    OVERLAPPING_REGIONS = ("FP402", "overlapping-regions", Error,
        "two encrypted regions overlap");
    REGION_OUTSIDE_TEXT = ("FP403", "region-outside-text", Error,
        "an encrypted region lies outside the text segment");
    UNENCRYPTED_PROTECTED = ("FP404", "protected-range-not-encrypted", Note,
        "encryption is configured but a guarded range is not fully covered by it");
    UNREACHABLE_TEXT = ("FP501", "unreachable-text", Note,
        "a text word is unreachable from the entry point and every symbol");
    GUARD_CLOBBERS_LIVE = ("FP601", "guard-clobbers-live-register", Error,
        "a guard-site word overwrites a register that is live after the site");
    DEAD_GUARD = ("FP602", "dead-guard", Warning,
        "a guard sequence is unreachable, so its window never streams past the monitor");
    COVERAGE_GAP = ("FP603", "coverage-gap", Warning,
        "a reachable protected word is covered by no guard window and no dominating check");
    POST_CHECK_WINDOW = ("FP604", "post-check-edit-window", Note,
        "a reachable protected word is uncovered but dominated by a completed guard check");
    UNGUARDED_GUARD = ("FP701", "unguarded-guard", Note,
        "a sound guard's window is covered by no other guard, so defeating it defeats nothing else");
    ACYCLIC_GUARD_CHAIN = ("FP702", "acyclic-guard-chain", Note,
        "a guard is checked but sits in no checking cycle, so the chain unravels from its root");
    CHECKSUM_CONSTANT_MISMATCH = ("FP703", "checksum-constant-mismatch", Error,
        "abstract interpretation proves a guard's embedded signature never matches its window");
    MIN_CUT_WEAK_LINK = ("FP704", "min-cut-weak-link", Note,
        "the guard belongs to a minimum cut of the guard network (or the network is disconnected)");
    EQUIV_GUARD_CLOBBER = ("FP801", "guard-clobbers-live-reg", Error,
        "translation validation: a guard-window instruction writes live architectural state");
    EQUIV_UNALIGNED = ("FP802", "unaligned-block", Error,
        "translation validation: a protected block cannot be aligned with its baseline block");
    EQUIV_CIPHER_MISMATCH = ("FP803", "cipher-roundtrip-mismatch", Error,
        "translation validation: decrypting an encrypted word does not restore the baseline instruction");
    EQUIV_REFUSED = ("FP804", "refused-window", Warning,
        "translation validation refused to judge a guard window; the refusal reason is logged");
    TAINT_KEY_STORE = ("FP901", "key-material-store", Error,
        "key-derived data (a ciphertext read) flows to a store outside every encrypted region");
    TAINT_KEY_SYSCALL = ("FP902", "key-material-syscall", Error,
        "key-derived data reaches a syscall operand register and escapes through the environment");
    TAINT_KEY_DEPENDENT = ("FP903", "key-dependent-control", Warning,
        "a branch condition or memory address depends on key-derived data (a side channel)");
    TAINT_UNRESOLVED_READ = ("FP904", "unresolved-ciphertext-read", Warning,
        "a load may read an encrypted region but its address is unresolved; taint tracking is approximate");
}

/// Looks up a lint by its stable ID or short name.
pub fn lint_by_id(key: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.id == key || l.name == key)
}

/// One diagnostic produced by a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint ID (see [`LINTS`]).
    pub id: &'static str,
    /// Short lint name.
    pub name: &'static str,
    /// Effective severity (default, possibly overridden by a policy).
    pub severity: Severity,
    /// Text address the finding anchors to, when one exists.
    pub addr: Option<u32>,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(addr) => write!(
                f,
                "{}: [{}] {addr:#010x}: {} ({})",
                self.severity, self.id, self.message, self.name
            ),
            None => write!(
                f,
                "{}: [{}] {} ({})",
                self.severity, self.id, self.message, self.name
            ),
        }
    }
}

/// Promotion/demotion overrides applied after the checks run.
///
/// `deny` promotes a lint to [`Severity::Error`]; `allow` demotes it to
/// [`Severity::Note`]. `deny` wins when both name the same lint. Entries
/// may use either the stable ID (`FP203`) or the short name
/// (`missing-spacing-bound`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintPolicy {
    deny: BTreeSet<String>,
    allow: BTreeSet<String>,
}

impl LintPolicy {
    /// Builds a policy from deny/allow lists.
    ///
    /// # Errors
    ///
    /// Reports the first entry that names no registered lint.
    pub fn new<S: AsRef<str>>(deny: &[S], allow: &[S]) -> Result<LintPolicy, String> {
        let mut policy = LintPolicy::default();
        for key in deny {
            let lint = lint_by_id(key.as_ref())
                .ok_or_else(|| format!("unknown lint `{}`", key.as_ref()))?;
            policy.deny.insert(lint.id.to_owned());
        }
        for key in allow {
            let lint = lint_by_id(key.as_ref())
                .ok_or_else(|| format!("unknown lint `{}`", key.as_ref()))?;
            policy.allow.insert(lint.id.to_owned());
        }
        Ok(policy)
    }

    /// The severity of `lint` under this policy, given the severity the
    /// check itself chose.
    pub fn effective(&self, lint: &Lint, chosen: Severity) -> Severity {
        if self.deny.contains(lint.id) {
            Severity::Error
        } else if self.allow.contains(lint.id) {
            Severity::Note
        } else {
            chosen
        }
    }
}

/// Summary statistics of one verification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Words in the (decrypted) text segment.
    pub text_words: usize,
    /// Words reachable from the entry point and the symbol table.
    pub reachable_words: usize,
    /// Guard sites whose signature was recomputed.
    pub sites_checked: usize,
    /// Relocation entries checked.
    pub relocs_checked: usize,
    /// Maximum statically possible spacing-counter value, when the
    /// spacing analysis ran and found the counter bounded.
    pub max_spacing: Option<u64>,
    /// Guard windows that passed every structural and cryptographic check.
    pub sound_windows: usize,
    /// Text words covered by at least one sound guard window.
    pub covered_words: usize,
    /// Text words covered by no sound window and no cipher region — the
    /// static tamper surface.
    pub surface_words: usize,
    /// Check edges between distinct sound guards in the guard network.
    pub guard_edges: usize,
    /// Guards whose embedded signature the abstract interpreter proved
    /// consistent with the text it covers.
    pub proven_constants: usize,
    /// Key-flow counters, when the taint analysis ran (`fplint --taint`).
    pub taint: Option<crate::taint::TaintStats>,
}

/// The product of a verification run: findings plus statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings, in check order.
    pub findings: Vec<Finding>,
    /// Run statistics.
    pub stats: VerifyStats,
}

impl Report {
    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether the image passed (no error-severity findings).
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Findings carrying the given lint ID.
    pub fn with_id<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(move |f| f.id == id)
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s); \
             {} text words ({} reachable), {} guard site(s), {} relocation(s); \
             {} sound window(s) covering {} word(s), {} on the tamper surface; \
             {} guard-network edge(s), {} proven constant(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.stats.text_words,
            self.stats.reachable_words,
            self.stats.sites_checked,
            self.stats.relocs_checked,
            self.stats.sound_windows,
            self.stats.covered_words,
            self.stats.surface_words,
            self.stats.guard_edges,
            self.stats.proven_constants,
        ));
        if let Some(max) = self.stats.max_spacing {
            out.push_str(&format!("; max guard-free path {max}"));
        }
        if let Some(t) = &self.stats.taint {
            out.push_str(&format!(
                "; key flow: {} source(s), {} tainted store(s), {} tainted syscall(s), \
                 {} key-dependent, {} unresolved read(s)",
                t.sources,
                t.tainted_stores,
                t.tainted_syscalls,
                t.key_dependent,
                t.unresolved_reads,
            ));
        }
        out.push('\n');
        out
    }

    /// Renders the report as a stable JSON document (`flexprot-lint-v1`).
    ///
    /// Schema: `{"schema","clean","stats":{...},"findings":[{"id","name",
    /// "severity","addr","message"}]}` with `addr` a `"0x…"` string or
    /// `null`.  Field order is fixed; consumers may rely on it. When the
    /// key-flow analysis ran, `stats` additionally carries
    /// `"taint":{"sources","tainted_stores","tainted_syscalls",
    /// "key_dependent","unresolved_reads"}` (`"taint":null` otherwise).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"flexprot-lint-v1\"");
        out.push_str(&format!(",\"clean\":{}", self.is_clean()));
        let s = &self.stats;
        let taint = s.taint.map_or_else(
            || "null".to_owned(),
            |t| {
                format!(
                    "{{\"sources\":{},\"tainted_stores\":{},\"tainted_syscalls\":{},\
                     \"key_dependent\":{},\"unresolved_reads\":{}}}",
                    t.sources,
                    t.tainted_stores,
                    t.tainted_syscalls,
                    t.key_dependent,
                    t.unresolved_reads,
                )
            },
        );
        out.push_str(&format!(
            ",\"stats\":{{\"text_words\":{},\"reachable_words\":{},\"sites_checked\":{},\
             \"relocs_checked\":{},\"max_spacing\":{},\"sound_windows\":{},\
             \"covered_words\":{},\"surface_words\":{},\"guard_edges\":{},\
             \"proven_constants\":{},\"taint\":{taint}}}",
            s.text_words,
            s.reachable_words,
            s.sites_checked,
            s.relocs_checked,
            s.max_spacing
                .map_or_else(|| "null".to_owned(), |m| m.to_string()),
            s.sound_windows,
            s.covered_words,
            s.surface_words,
            s.guard_edges,
            s.proven_constants,
        ));
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let addr = f
                .addr
                .map_or_else(|| "null".to_owned(), |a| format!("\"{a:#010x}\""));
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"addr\":{addr},\
                 \"message\":\"{}\"}}",
                f.id,
                f.name,
                f.severity,
                json_escape(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the findings as CSV (`id,name,severity,addr,message`).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("id,name,severity,addr,message\n");
        for f in &self.findings {
            let addr = f.addr.map(|a| format!("{a:#010x}")).unwrap_or_default();
            let message = f.message.replace('"', "\"\"");
            out.push_str(&format!(
                "{},{},{},{addr},\"{message}\"\n",
                f.id, f.name, f.severity
            ));
        }
        out
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_sorted() {
        for pair in LINTS.windows(2) {
            assert!(pair[0].id < pair[1].id, "{} vs {}", pair[0].id, pair[1].id);
        }
    }

    #[test]
    fn lookup_by_id_and_name() {
        assert_eq!(lint_by_id("FP102").unwrap().name, "signature-mismatch");
        assert_eq!(lint_by_id("signature-mismatch").unwrap().id, "FP102");
        assert!(lint_by_id("FP999").is_none());
    }

    #[test]
    fn policy_promotes_and_demotes() {
        let policy = LintPolicy::new(&["FP203"], &["unreachable-text"]).unwrap();
        assert_eq!(
            policy.effective(&MISSING_SPACING_BOUND, Severity::Warning),
            Severity::Error
        );
        assert_eq!(
            policy.effective(&UNREACHABLE_TEXT, Severity::Note),
            Severity::Note
        );
        assert_eq!(
            policy.effective(&SIGNATURE_MISMATCH, Severity::Error),
            Severity::Error
        );
        assert!(LintPolicy::new(&["FP999"], &[]).is_err());
    }

    #[test]
    fn deny_beats_allow() {
        let policy = LintPolicy::new(&["FP501"], &["FP501"]).unwrap();
        assert_eq!(
            policy.effective(&UNREACHABLE_TEXT, Severity::Note),
            Severity::Error
        );
    }

    #[test]
    fn every_registered_lint_resolves_by_id_and_name_in_policies() {
        for lint in LINTS {
            assert_eq!(lint_by_id(lint.id).unwrap().id, lint.id);
            assert_eq!(lint_by_id(lint.name).unwrap().id, lint.id, "{}", lint.name);
            // `--deny <id>` and `--deny <name>` must build identical
            // policies with identical effect, for every lint.
            let by_id = LintPolicy::new(&[lint.id], &[]).unwrap();
            let by_name = LintPolicy::new(&[lint.name], &[]).unwrap();
            assert_eq!(by_id, by_name, "{}", lint.id);
            assert_eq!(
                by_id.effective(lint, lint.default_severity),
                Severity::Error
            );
            let allow = LintPolicy::new::<&str>(&[], &[lint.name]).unwrap();
            assert_eq!(allow.effective(lint, lint.default_severity), Severity::Note);
        }
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let report = Report {
            findings: vec![Finding {
                id: "FP102",
                name: "signature-mismatch",
                severity: Severity::Error,
                addr: Some(0x0040_0010),
                message: "claimed \"1\"\ncomputed 2".to_owned(),
            }],
            stats: VerifyStats::default(),
        };
        let json = report.render_json();
        assert!(
            json.starts_with("{\"schema\":\"flexprot-lint-v1\""),
            "{json}"
        );
        assert!(json.contains("\"clean\":false"), "{json}");
        assert!(json.contains("\"addr\":\"0x00400010\""), "{json}");
        assert!(json.contains("claimed \\\"1\\\"\\ncomputed 2"), "{json}");
        assert!(json.contains("\"max_spacing\":null"), "{json}");
    }

    #[test]
    fn report_rendering() {
        let report = Report {
            findings: vec![Finding {
                id: "FP102",
                name: "signature-mismatch",
                severity: Severity::Error,
                addr: Some(0x0040_0010),
                message: "claimed 1 computed 2".to_owned(),
            }],
            stats: VerifyStats::default(),
        };
        assert!(!report.is_clean());
        let human = report.render_human();
        assert!(human.contains("FP102"), "{human}");
        assert!(human.contains("0x00400010"), "{human}");
        let csv = report.render_csv();
        assert!(csv.starts_with("id,name,"), "{csv}");
        assert!(
            csv.contains("FP102,signature-mismatch,error,0x00400010"),
            "{csv}"
        );
    }
}
