//! Basic-block partitioning of the word-level flow graph.
//!
//! The [`crate::flow`] recovery yields one node per text word; dominator
//! queries and the coverage lints want the coarser basic-block view.  A
//! block is a maximal straight-line run: every word except the last has
//! exactly one plain fall-through successor, and no word except the first
//! is the target of a non-fall-through edge, the entry point, or a
//! symbol.  Call continuations are kept as ordinary block edges — the
//! standard intraprocedural approximation (control *does* reach the
//! continuation whenever the callee returns).

use flexprot_isa::Image;

use crate::dataflow;
use crate::flow::{EdgeKind, Flow};

/// One basic block: the half-open word-index range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first word.
    pub start: usize,
    /// One past the index of the last word.
    pub end: usize,
}

/// The block-level control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in address order.
    pub blocks: Vec<BasicBlock>,
    /// Word index → index of the containing block.
    pub block_of: Vec<usize>,
    /// Successor blocks per block (deduplicated).
    pub succs: Vec<Vec<usize>>,
    /// Predecessor blocks per block.
    pub preds: Vec<Vec<usize>>,
    /// Block containing the entry point, when the entry lands in text.
    pub entry: Option<usize>,
}

impl Cfg {
    /// Partitions `flow` (recovered from `image`) into basic blocks.
    pub fn build(image: &Image, flow: &Flow) -> Cfg {
        let len = flow.decoded.len();
        if len == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                succs: Vec::new(),
                preds: Vec::new(),
                entry: None,
            };
        }
        let index_of = |addr: u32| -> Option<usize> {
            if addr < image.text_base || !addr.is_multiple_of(4) {
                return None;
            }
            let i = ((addr - image.text_base) / 4) as usize;
            (i < len).then_some(i)
        };

        // Leaders: the shared anchor set (first word, entry, in-text
        // symbols), every target of a non-plain edge, and the word after
        // any block-ending word.
        let mut leader = vec![false; len];
        for i in image.anchor_indices() {
            if i < len {
                leader[i] = true;
            }
        }
        // A word continues its block only when it decodes to a plain
        // (non-control-transfer) instruction whose sole successor is the
        // next word via a fall-through edge.
        let plain_fall = |i: usize| -> bool {
            matches!(flow.decoded[i], Some(inst) if !inst.is_control_transfer())
                && flow.succs[i].len() == 1
                && flow.succs[i][0].to == i + 1
                && flow.succs[i][0].kind == EdgeKind::Flow
        };
        for i in 0..len {
            if plain_fall(i) {
                continue;
            }
            if i + 1 < len {
                leader[i + 1] = true;
            }
            for e in &flow.succs[i] {
                leader[e.to] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; len];
        let mut start = 0usize;
        for (i, is_leader) in leader
            .iter()
            .copied()
            .chain(std::iter::once(true))
            .enumerate()
            .skip(1)
        {
            if is_leader {
                let b = blocks.len();
                blocks.push(BasicBlock { start, end: i });
                for slot in &mut block_of[start..i] {
                    *slot = b;
                }
                start = i;
            }
        }

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); blocks.len()];
        for (b, block) in blocks.iter().enumerate() {
            let last = block.end - 1;
            let mut outs: Vec<usize> = flow.succs[last].iter().map(|e| block_of[e.to]).collect();
            outs.sort_unstable();
            outs.dedup();
            succs[b] = outs;
        }
        let preds = dataflow::invert(&succs);
        let entry = index_of(image.entry).map(|e| block_of[e]);
        Cfg {
            blocks,
            block_of,
            succs,
            preds,
            entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str) -> (Flow, Cfg) {
        let image = flexprot_asm::assemble_or_panic(src);
        let flow = Flow::recover(&image, &image.text.clone());
        let cfg = Cfg::build(&image, &flow);
        (flow, cfg)
    }

    #[test]
    fn straight_line_is_one_block_until_the_syscall() {
        // Syscall is a control transfer for blocking purposes (it can
        // exit), so it terminates the block it ends.
        let (_, cfg) = cfg_of("main: li $t0, 1\n li $t1, 2\n li $v0, 10\n syscall\n");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0], BasicBlock { start: 0, end: 4 });
        assert_eq!(cfg.entry, Some(0));
    }

    #[test]
    fn diamond_splits_into_four_blocks() {
        let (_, cfg) = cfg_of(
            r#"
main:   beq  $t0, $t1, right
left:   li   $t2, 1
        b    join
right:  li   $t2, 2
join:   li   $v0, 10
        syscall
"#,
        );
        assert_eq!(cfg.blocks.len(), 4);
        let entry = cfg.entry.unwrap();
        assert_eq!(cfg.succs[entry].len(), 2);
        // Both arms converge on the join block.
        let join = cfg.block_of[4];
        assert_eq!(cfg.preds[join].len(), 2);
    }

    #[test]
    fn call_continuation_is_a_block_edge() {
        let (_, cfg) = cfg_of(
            r#"
main:   jal  f
        li   $v0, 10
        syscall
f:      jr   $ra
"#,
        );
        let entry = cfg.entry.unwrap();
        // The call block flows to both the callee and the continuation.
        assert_eq!(cfg.succs[entry].len(), 2);
        // `jr` ends its block with no successors.
        let ret = cfg.block_of[3];
        assert!(cfg.succs[ret].is_empty());
    }

    #[test]
    fn every_word_maps_into_its_block_range() {
        let (_, cfg) = cfg_of(
            r#"
main:   beq  $t0, $t1, out
        li   $t2, 1
out:    syscall
"#,
        );
        for (w, &b) in cfg.block_of.iter().enumerate() {
            assert!(cfg.blocks[b].start <= w && w < cfg.blocks[b].end);
        }
    }
}
