//! Instruction-level flow recovery from a (decrypted) protected image.
//!
//! This is an *independent* reimplementation of control-flow recovery — it
//! shares no code with the `flexprot-core` CFG builder the protection
//! passes use. Where `core` recovers basic blocks to *rewrite* them, the
//! verifier recovers a word-granular successor graph to *analyse* the
//! shipped bytes exactly as the hardware will execute them: one node per
//! text word, edges for fall-through, branch, jump and call-continuation
//! flow. Divergence between the two recoveries is precisely what the
//! N-version check is designed to surface.

use flexprot_isa::{Image, Inst};

/// How control reaches a successor word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Fall-through or a taken transfer; the spacing counter propagates
    /// (resetting at reset points on non-sequential arrival).
    Flow,
    /// The continuation after a call: reached via the callee's return, a
    /// pc discontinuity.
    CallContinuation,
}

/// One successor edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Successor word index.
    pub to: usize,
    /// How the successor is reached.
    pub kind: EdgeKind,
}

/// The recovered instruction-level flow graph.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Strict decode of each text word (`None` = undecodable).
    pub decoded: Vec<Option<Inst>>,
    /// Successor edges per word.
    pub succs: Vec<Vec<Edge>>,
    /// Whether each word is reachable from the entry or a text symbol.
    pub reachable: Vec<bool>,
    /// Direct control-transfer targets (branch/jump/call) that leave the
    /// text segment, with the address of the offending instruction.
    pub wild_targets: Vec<(u32, u32)>,
}

impl Flow {
    /// Recovers the flow graph of `text` (already decrypted) laid out at
    /// `image`'s text base.
    pub fn recover(image: &Image, text: &[u32]) -> Flow {
        let len = text.len();
        let addr_of = |i: usize| image.text_base.wrapping_add(4 * i as u32);
        let index_of = |addr: u32| -> Option<usize> {
            if addr < image.text_base || !addr.is_multiple_of(4) {
                return None;
            }
            let i = ((addr - image.text_base) / 4) as usize;
            (i < len).then_some(i)
        };

        let decoded: Vec<Option<Inst>> = text.iter().map(|&w| Inst::decode(w).ok()).collect();
        let mut succs: Vec<Vec<Edge>> = vec![Vec::new(); len];
        let mut wild_targets = Vec::new();
        for (i, inst) in decoded.iter().enumerate() {
            let Some(inst) = inst else { continue };
            let addr = addr_of(i);
            let mut push =
                |edges: &mut Vec<Edge>, target: u32, kind: EdgeKind| match index_of(target) {
                    Some(t) => edges.push(Edge { to: t, kind }),
                    None => wild_targets.push((addr, target)),
                };
            let mut edges = Vec::new();
            match inst {
                // `beq r, r` is architecturally always taken — treating it
                // as conditional would fabricate an infeasible fall-through
                // path through the spacing analysis.
                Inst::Beq { rs, rt, .. } if rs == rt => {
                    let target = inst.branch_target(addr).expect("branch target");
                    push(&mut edges, target, EdgeKind::Flow);
                }
                _ if inst.is_branch() => {
                    let target = inst.branch_target(addr).expect("branch target");
                    push(&mut edges, target, EdgeKind::Flow);
                    if i + 1 < len {
                        edges.push(Edge {
                            to: i + 1,
                            kind: EdgeKind::Flow,
                        });
                    }
                }
                Inst::J { .. } => {
                    let target = inst.jump_target().expect("jump target");
                    push(&mut edges, target, EdgeKind::Flow);
                }
                Inst::Jal { .. } => {
                    let target = inst.jump_target().expect("call target");
                    push(&mut edges, target, EdgeKind::Flow);
                    if i + 1 < len {
                        edges.push(Edge {
                            to: i + 1,
                            kind: EdgeKind::CallContinuation,
                        });
                    }
                }
                Inst::Jalr { .. } => {
                    // Indirect call: the callee is unknown but the
                    // continuation is the architectural return point.
                    if i + 1 < len {
                        edges.push(Edge {
                            to: i + 1,
                            kind: EdgeKind::CallContinuation,
                        });
                    }
                }
                // Returns and computed jumps have no static successors.
                Inst::Jr { .. } => {}
                // Everything else (ALU, memory, syscall) falls through.
                _ => {
                    if i + 1 < len {
                        edges.push(Edge {
                            to: i + 1,
                            kind: EdgeKind::Flow,
                        });
                    }
                }
            }
            edges.dedup_by_key(|e| e.to);
            succs[i] = edges;
        }

        // Reachability from the entry point and every text symbol (symbols
        // are the potential indirect-jump landing pads).
        let mut reachable = vec![false; len];
        let mut work: Vec<usize> = Vec::new();
        let root = |i: usize, work: &mut Vec<usize>, reachable: &mut Vec<bool>| {
            if !reachable[i] {
                reachable[i] = true;
                work.push(i);
            }
        };
        if let Some(e) = index_of(image.entry) {
            root(e, &mut work, &mut reachable);
        }
        for &addr in image.symbols.values() {
            if let Some(i) = index_of(addr) {
                root(i, &mut work, &mut reachable);
            }
        }
        while let Some(i) = work.pop() {
            for edge in &succs[i] {
                if !reachable[edge.to] {
                    reachable[edge.to] = true;
                    work.push(edge.to);
                }
            }
        }

        Flow {
            decoded,
            succs,
            reachable,
            wild_targets,
        }
    }

    /// Number of reachable words.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_of(src: &str) -> (Image, Flow) {
        let image = flexprot_asm::assemble_or_panic(src);
        let flow = Flow::recover(&image, &image.text.clone());
        (image, flow)
    }

    #[test]
    fn straight_line_chains_fall_through() {
        let (_, flow) = flow_of("main: li $t0, 1\n li $t1, 2\n syscall\n");
        assert_eq!(
            flow.succs[0],
            vec![Edge {
                to: 1,
                kind: EdgeKind::Flow
            }]
        );
        assert_eq!(
            flow.succs[1],
            vec![Edge {
                to: 2,
                kind: EdgeKind::Flow
            }]
        );
        assert!(flow.reachable.iter().all(|&r| r));
        assert!(flow.wild_targets.is_empty());
    }

    #[test]
    fn branch_has_two_edges_unconditional_one() {
        let (_, flow) = flow_of(
            r#"
main:   beq  $t0, $t1, out
        li   $t2, 1
        b    out
out:    syscall
"#,
        );
        assert_eq!(flow.succs[0].len(), 2, "conditional: taken + fall-through");
        // `b` assembles to beq $zero,$zero: unconditional, one edge.
        assert_eq!(flow.succs[2].len(), 1);
        assert_eq!(flow.succs[2][0].to, 3);
    }

    #[test]
    fn call_edges_mark_continuation() {
        let (_, flow) = flow_of(
            r#"
main:   jal  f
        syscall
f:      jr   $ra
"#,
        );
        let kinds: Vec<EdgeKind> = flow.succs[0].iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Flow), "callee entry edge");
        assert!(kinds.contains(&EdgeKind::CallContinuation));
        assert!(flow.succs[2].is_empty(), "jr has no static successors");
    }

    #[test]
    fn unreachable_tail_is_found() {
        // The word after an unconditional jump with no label is unreachable.
        let (_, flow) = flow_of(
            r#"
main:   b    end
        li   $t0, 1
end:    syscall
"#,
        );
        assert!(!flow.reachable[1]);
        assert_eq!(flow.reachable_count(), 2);
    }

    #[test]
    fn undecodable_word_has_no_edges() {
        let image = flexprot_asm::assemble_or_panic("main: nop\n nop\n");
        let mut text = image.text.clone();
        text[0] = 0xFFFF_FFFF;
        let flow = Flow::recover(&image, &text);
        assert!(flow.decoded[0].is_none());
        assert!(flow.succs[0].is_empty());
    }
}
