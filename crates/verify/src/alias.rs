//! Value-set points-to classification: partitioning stores against a
//! byte interval (a checksum window, the text segment, a cipher region).
//!
//! [`crate::memdom`] gives every store target a provenance-carrying
//! abstract address; this module turns that address into a three-way
//! verdict against a concrete byte interval:
//!
//! * [`StoreClass::NoAlias`] — **no** concretisation of the target writes
//!   a byte of the interval. Stack-based targets are `NoAlias` with any
//!   interval below the stack region (memory-model assumption A1).
//! * [`StoreClass::MustAlias`] — **every** concretisation writes at least
//!   one byte of the interval, with a concrete witness address.
//! * [`StoreClass::MayAlias`] — the analysis cannot separate the two.
//!
//! The checksum prover ([`crate::absint`]) and the transparency prover
//! ([`crate::equiv`]) consume the partition to discharge their store
//! obligations: a `NoAlias` store inside a hashed window is harmless to
//! *that* window's proof, a `MustAlias` store is an honest refusal (the
//! static proof cannot order the rewrite against the hash), and only
//! `MayAlias` remains a precision refusal. `verify/tests/alias_props.rs`
//! checks the partition against brute-force store-target enumeration on
//! random MiniC programs.

use flexprot_isa::{Image, Inst, Reg};

use crate::coverage::GuardWindow;
use crate::memdom::{Base, MemState, MemVal, STACK_REGION_MAX, STACK_REGION_MIN};

/// The three-way points-to verdict for one store against one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreClass {
    /// No concretisation of the target touches the interval.
    NoAlias,
    /// Every concretisation touches the interval.
    MustAlias {
        /// A concrete target address inside the interval.
        addr: u32,
    },
    /// The partition is undecided; treat as a potential hit.
    MayAlias,
}

impl StoreClass {
    /// Whether the store can be ruled out against the interval.
    pub fn is_no_alias(self) -> bool {
        matches!(self, StoreClass::NoAlias)
    }
}

/// A store instruction with its resolved abstract target.
#[derive(Debug, Clone)]
pub struct StoreSite {
    /// Text-word index of the store.
    pub index: usize,
    /// Abstract target address (provenance-carrying).
    pub target: MemVal,
    /// Bytes written (1, 2 or 4).
    pub size: u32,
    /// Register whose value is stored.
    pub value: Reg,
}

/// Resolves `inst` (at text word `index`) as a store under `state`, or
/// `None` for non-store instructions.
pub fn store_site(index: usize, inst: Inst, state: &MemState) -> Option<StoreSite> {
    let (rt, off, base, size) = match inst {
        Inst::Sb { rt, off, base } => (rt, off, base, 1),
        Inst::Sh { rt, off, base } => (rt, off, base, 2),
        Inst::Sw { rt, off, base } => (rt, off, base, 4),
        _ => return None,
    };
    Some(StoreSite {
        index,
        target: state.effective_addr(base, off),
        size,
        value: rt,
    })
}

/// Whether one concrete store `[a, a+size)` writes a byte of `[lo, hi)`.
fn hits(a: u32, size: u32, lo: u32, hi: u32) -> bool {
    a.wrapping_add(size) > lo && a < hi
}

/// Classifies a store of `size` bytes at abstract address `target`
/// against the byte interval `[lo, hi)`.
pub fn classify(target: &MemVal, size: u32, lo: u32, hi: u32) -> StoreClass {
    match target.base {
        // A1: stack-based targets stay inside the stack region, so they
        // cannot alias an interval that lies entirely outside it.
        Base::Stack => {
            if hi <= STACK_REGION_MIN || lo >= STACK_REGION_MAX {
                StoreClass::NoAlias
            } else {
                StoreClass::MayAlias
            }
        }
        Base::Abs => match target.off.values() {
            None => StoreClass::MayAlias,
            Some(&[]) => StoreClass::NoAlias,
            Some(vs) => {
                let hit = vs.iter().filter(|&&a| hits(a, size, lo, hi)).count();
                if hit == 0 {
                    StoreClass::NoAlias
                } else if hit == vs.len() {
                    StoreClass::MustAlias {
                        addr: *vs.iter().find(|&&a| hits(a, size, lo, hi)).unwrap(),
                    }
                } else {
                    StoreClass::MayAlias
                }
            }
        },
    }
}

/// The byte interval `[lo, hi)` a guard window hashes and signs — body,
/// symbol and tail words alike (a rewrite of *any* of them changes what
/// the hardware will fetch and judge).
pub fn window_interval(image: &Image, w: &GuardWindow) -> (u32, u32) {
    (
        image.text_base + 4 * w.start as u32,
        image.text_base + 4 * w.end() as u32,
    )
}

/// The partition of one window's in-window stores against its own
/// hashed interval.
#[derive(Debug, Clone, Default)]
pub struct WindowAliasing {
    /// Store word-indices provably disjoint from the window.
    pub no_alias: Vec<usize>,
    /// Stores provably rewriting the window, with witness addresses.
    pub must_alias: Vec<(usize, u32)>,
    /// Stores the partition could not decide.
    pub may_alias: Vec<usize>,
}

/// Partitions every reachable store inside `w` against `w`'s hashed
/// interval. Unreachable stores (no entering state) never execute and are
/// ignored, matching the prover's obligation.
pub fn partition_window(
    image: &Image,
    flow: &crate::flow::Flow,
    mem: &[crate::memdom::MemFact],
    w: &GuardWindow,
) -> WindowAliasing {
    let (lo, hi) = window_interval(image, w);
    let mut out = WindowAliasing::default();
    for b in w.start..w.end().min(flow.decoded.len()) {
        let Some(inst) = flow.decoded[b] else {
            continue;
        };
        let Some(state) = mem.get(b).and_then(|s| s.as_ref()) else {
            continue;
        };
        let Some(site) = store_site(b, inst, state) else {
            continue;
        };
        match classify(&site.target, site.size, lo, hi) {
            StoreClass::NoAlias => out.no_alias.push(b),
            StoreClass::MustAlias { addr } => out.must_alias.push((b, addr)),
            StoreClass::MayAlias => out.may_alias.push(b),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::AbsVal;

    #[test]
    fn scalar_targets_partition_exactly() {
        let lo = 0x0040_0000;
        let hi = 0x0040_0010;
        let inside = MemVal::abs(AbsVal::Const(0x0040_0008));
        let outside = MemVal::abs(AbsVal::Const(0x0040_0010));
        let straddle = MemVal::abs(AbsVal::Const(0x0040_000E));
        let before = MemVal::abs(AbsVal::Const(0x003F_FFFC));
        assert_eq!(
            classify(&inside, 4, lo, hi),
            StoreClass::MustAlias { addr: 0x0040_0008 }
        );
        assert_eq!(classify(&outside, 4, lo, hi), StoreClass::NoAlias);
        // A halfword at hi−2 still writes the last byte of the interval.
        assert_eq!(
            classify(&straddle, 4, lo, hi),
            StoreClass::MustAlias { addr: 0x0040_000E }
        );
        // A 4-byte store ending exactly at lo misses; one byte later hits.
        assert_eq!(classify(&before, 4, lo, hi), StoreClass::NoAlias);
        assert_eq!(
            classify(&MemVal::abs(AbsVal::Const(0x003F_FFFD)), 4, lo, hi),
            StoreClass::MustAlias { addr: 0x003F_FFFD }
        );
    }

    #[test]
    fn value_sets_split_into_may_alias() {
        let lo = 0x0040_0000;
        let hi = 0x0040_0010;
        let split = MemVal::abs(AbsVal::from_values([0x0040_0000u32, 0x1001_0000]));
        let all_in = MemVal::abs(AbsVal::from_values([0x0040_0000u32, 0x0040_0004]));
        let all_out = MemVal::abs(AbsVal::from_values([0x1001_0000u32, 0x1001_0004]));
        assert_eq!(classify(&split, 4, lo, hi), StoreClass::MayAlias);
        assert!(matches!(
            classify(&all_in, 4, lo, hi),
            StoreClass::MustAlias { .. }
        ));
        assert_eq!(classify(&all_out, 4, lo, hi), StoreClass::NoAlias);
        assert_eq!(
            classify(&MemVal::abs(AbsVal::Top), 4, lo, hi),
            StoreClass::MayAlias
        );
    }

    #[test]
    fn stack_targets_never_alias_text_intervals() {
        let sp_rel = MemVal::stack(AbsVal::Top);
        assert_eq!(
            classify(&sp_rel, 4, 0x0040_0000, 0x0040_1000),
            StoreClass::NoAlias
        );
        // …but remain undecided against the stack region itself.
        assert_eq!(
            classify(&sp_rel, 4, STACK_REGION_MIN, STACK_REGION_MAX),
            StoreClass::MayAlias
        );
    }
}
