//! Memory-sensitive extension of the [`crate::absint`] value-set domain:
//! pointer provenance plus a tracked stack frame.
//!
//! The plain register analysis seeds every root with `Top` registers, so
//! any `$sp`/`$fp`-relative store inside a checksum window used to force a
//! sound refusal ("store may target the text segment") even though the
//! hardware architecturally pins `$sp = $fp = STACK_TOP` at reset and the
//! compiled programs only ever move those registers by known constants.
//! This module recovers that fact with a two-region provenance lattice:
//!
//! ```text
//! MemVal = { base : Abs | Stack,  off : AbsVal }
//! ```
//!
//! `Abs` values are ordinary scalars (the offset *is* the value); `Stack`
//! values denote `seed + off`, where `seed` is the unknown-but-in-stack
//! value `$sp` held when control entered the analysis root. Pointer
//! arithmetic keeps provenance exact where the simulator does: adding a
//! known scalar to a stack pointer stays `Stack`, subtracting two stack
//! pointers yields the scalar difference, and anything else degrades to
//! `Abs`/`Top`. On top of the registers the state tracks the *stack frame*
//! itself — a partial map from seed-relative word offsets to abstract
//! values — so spills (`sw $fp, 24($sp)`) survive to their reloads
//! (`lw $fp, 24($fp)`), which is what lets the transparency proofs in
//! [`crate::equiv`] decide branches after a frame round-trip.
//!
//! # Memory model
//!
//! The domain's claims rest on three assumptions, stated here once and
//! referenced by the proofs that consume them (DESIGN.md §"Verification
//! architecture v5" carries the full argument):
//!
//! * **A1 (region separation)** — every concretisation of a `Stack`-based
//!   value lies in `[STACK_REGION_MIN, STACK_REGION_MAX)`. The segment
//!   layout puts text and data far below this region, so a `Stack`-based
//!   store can never hit a checksum window. The root seed is the hardware
//!   reset contract (`$sp = $fp = STACK_TOP`); the assumption is that
//!   tracked pointer arithmetic never walks the stack pointer out of the
//!   region (a bounded-stack discipline every generated program obeys).
//! * **A2 (calling discipline)** — interior analysis roots (named symbols
//!   reached through unresolved indirect flow) still hold stack-region
//!   `$sp`/`$fp`, and a `jal`/`jalr` callee preserves `$sp`, `$fp`,
//!   `$gp`, `$s0..$s7`, `$k0`/`$k1` and the caller's frame slots at or
//!   above the `$sp` held at the call. Caller-saved registers and deeper
//!   slots are havocked at every call continuation.
//! * **A3 (closed world)** — no agent other than the analysed instructions
//!   writes memory (single hart, no DMA), matching the simulator.
//!
//! The brute-force proptests in `verify/tests/alias_props.rs` check the
//! resulting store partition against concrete execution on random MiniC
//! programs; the T13 cross-check scores it against the attack oracle.

use std::collections::BTreeMap;

use flexprot_isa::{Image, Inst, Reg};

use crate::absint::{scalar_eval, AbsVal};
use crate::dataflow::{self, Analysis, Direction};
use crate::flow::Flow;

/// Lower bound of the architectural stack region (assumption A1).
pub const STACK_REGION_MIN: u32 = 0x7000_0000;
/// Exclusive upper bound of the architectural stack region.
pub const STACK_REGION_MAX: u32 = 0x8000_0000;

/// Provenance of an abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// A plain scalar: the offset is the value itself.
    Abs,
    /// `seed + off`, where `seed` is the root's unknown stack pointer.
    Stack,
}

/// One provenance-carrying abstract value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemVal {
    /// Which region the value is relative to.
    pub base: Base,
    /// Scalar part (the value for `Abs`, the displacement for `Stack`).
    pub off: AbsVal,
}

impl MemVal {
    /// The unconstrained value.
    pub fn top() -> MemVal {
        MemVal {
            base: Base::Abs,
            off: AbsVal::Top,
        }
    }

    /// The empty value (no feasible concretisation).
    pub fn bot() -> MemVal {
        MemVal {
            base: Base::Abs,
            off: AbsVal::Bot,
        }
    }

    /// A plain scalar.
    pub fn abs(off: AbsVal) -> MemVal {
        MemVal {
            base: Base::Abs,
            off,
        }
    }

    /// A stack-region value displaced `off` from the root seed.
    pub fn stack(off: AbsVal) -> MemVal {
        MemVal {
            base: Base::Stack,
            off,
        }
    }

    /// The scalar part if the value carries no stack provenance.
    pub fn scalar(&self) -> Option<&AbsVal> {
        match self.base {
            Base::Abs => Some(&self.off),
            Base::Stack => None,
        }
    }

    /// The pointer-blind view: `Stack` provenance concretises to `Top`.
    pub fn as_abs(&self) -> AbsVal {
        match self.base {
            Base::Abs => self.off.clone(),
            Base::Stack => match &self.off {
                AbsVal::Bot => AbsVal::Bot,
                _ => AbsVal::Top,
            },
        }
    }

    /// Whether no concrete value is feasible.
    pub fn is_bot(&self) -> bool {
        self.off == AbsVal::Bot
    }

    /// Least upper bound; mixed provenance widens to `Top`.
    pub fn join(&self, other: &MemVal) -> MemVal {
        if self.is_bot() {
            return other.clone();
        }
        if other.is_bot() {
            return self.clone();
        }
        if self.base == other.base {
            MemVal {
                base: self.base,
                off: self.off.join(&other.off),
            }
        } else {
            MemVal::top()
        }
    }
}

/// `a + b` with provenance: stack + scalar stays on the stack, stack +
/// stack escapes the model.
fn add_vals(a: &MemVal, b: &MemVal) -> MemVal {
    match (a.base, b.base) {
        (Base::Abs, Base::Abs) => MemVal::abs(a.off.map2(&b.off, u32::wrapping_add)),
        (Base::Stack, Base::Abs) => MemVal::stack(a.off.map2(&b.off, u32::wrapping_add)),
        (Base::Abs, Base::Stack) => MemVal::stack(b.off.map2(&a.off, u32::wrapping_add)),
        (Base::Stack, Base::Stack) => MemVal::top(),
    }
}

/// `a - b` with provenance: stack − stack is the exact scalar difference.
fn sub_vals(a: &MemVal, b: &MemVal) -> MemVal {
    match (a.base, b.base) {
        (Base::Abs, Base::Abs) => MemVal::abs(a.off.map2(&b.off, u32::wrapping_sub)),
        (Base::Stack, Base::Abs) => MemVal::stack(a.off.map2(&b.off, u32::wrapping_sub)),
        (Base::Stack, Base::Stack) => MemVal::abs(a.off.map2(&b.off, u32::wrapping_sub)),
        (Base::Abs, Base::Stack) => MemVal::top(),
    }
}

/// Abstract machine state at one program point: provenance-carrying
/// registers plus the tracked stack frame (seed-relative word slots).
/// A slot key absent from the map means that word's content is unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemState {
    /// One [`MemVal`] per architectural register.
    pub regs: Vec<MemVal>,
    /// Known stack words, keyed by seed-relative byte offset (4-aligned).
    pub slots: BTreeMap<i32, MemVal>,
}

impl MemState {
    /// The address `off(base)` resolves to in this state.
    pub fn effective_addr(&self, base: Reg, off: i16) -> MemVal {
        let disp = MemVal::abs(AbsVal::Const(off as i32 as u32));
        add_vals(&self.regs[base.index() as usize], &disp)
    }
}

/// Per-node fact: `None` where no static path arrives.
pub type MemFact = Option<MemState>;

/// The register file every root starts with (assumptions A1/A2): `$zero`
/// pinned, `$sp`/`$fp` stack-region at the (symbolic) seed, all else
/// unknown. `exact_seed` is true at the architectural entry, where the
/// reset contract additionally pins the displacement to zero.
fn root_state(exact_seed: bool) -> MemState {
    let mut regs = vec![MemVal::top(); 32];
    regs[Reg::ZERO.index() as usize] = MemVal::abs(AbsVal::Const(0));
    let sp = if exact_seed {
        MemVal::stack(AbsVal::Const(0))
    } else {
        MemVal::stack(AbsVal::Top)
    };
    regs[Reg::SP.index() as usize] = sp.clone();
    regs[Reg::FP.index() as usize] = sp;
    MemState {
        regs,
        slots: BTreeMap::new(),
    }
}

/// Registers a callee may clobber (assumption A2): everything except
/// `$zero`, `$sp`, `$fp`, `$gp`, `$s0..$s7` and `$k0`/`$k1`.
fn caller_saved(reg: usize) -> bool {
    let r = Reg::from_bits(reg as u32);
    !(r == Reg::ZERO
        || r == Reg::SP
        || r == Reg::FP
        || r == Reg::GP
        || r == Reg::K0
        || r == Reg::K1
        || (Reg::S0.index()..=Reg::S7.index()).contains(&(reg as u8)))
}

/// Byte span a store of `size` bytes at slot offset `k` can touch,
/// widened to the enclosing word boundaries.
fn touched_words(k: i32, size: i32) -> std::ops::RangeInclusive<i32> {
    let lo = k.div_euclid(4) * 4;
    let hi = (k + size - 1).div_euclid(4) * 4;
    lo..=hi
}

/// Drops every tracked slot a store through `target` (of `size` bytes)
/// could have overwritten, then (for an exactly-resolved aligned word
/// store) records the stored value.
fn apply_store(state: &mut MemState, target: &MemVal, size: u32, value: MemVal) {
    match target.base {
        Base::Stack => match target.off.values() {
            None => state.slots.clear(),
            Some(offs) => {
                for &o in offs {
                    let k = o as i32;
                    for w in touched_words(k, size as i32) {
                        state.slots.remove(&w);
                    }
                }
                // Strong update: a word store to exactly one aligned slot.
                if size == 4 {
                    if let AbsVal::Const(o) = target.off {
                        let k = o as i32;
                        if k % 4 == 0 {
                            state.slots.insert(k, value);
                        }
                    }
                }
            }
        },
        Base::Abs => {
            // A scalar-addressed store can only disturb the frame if some
            // concretisation lands in the stack region (A1).
            let may_hit_stack = match target.off.values() {
                None => true,
                Some(vs) => vs
                    .iter()
                    .any(|&a| a.wrapping_add(size) > STACK_REGION_MIN && a < STACK_REGION_MAX),
            };
            if may_hit_stack {
                state.slots.clear();
            }
        }
    }
}

/// Havoc applied at a call continuation (assumption A2): caller-saved
/// registers become unknown and frame slots below the caller's `$sp` at
/// the call are dropped (the callee's frame lives there).
fn apply_call(state: &mut MemState) {
    let sp = state.regs[Reg::SP.index() as usize].clone();
    match (sp.base, sp.off.values()) {
        (Base::Stack, Some(offs)) if !offs.is_empty() => {
            let min = offs.iter().map(|&o| o as i32).min().unwrap_or(0);
            state.slots.retain(|&k, _| k >= min);
        }
        _ => state.slots.clear(),
    }
    for (i, r) in state.regs.iter_mut().enumerate() {
        if caller_saved(i) {
            *r = MemVal::top();
        }
    }
}

/// The forward memory-sensitive analysis, one node per text word.
struct MemAbs<'a> {
    flow: &'a Flow,
    text_base: u32,
}

impl MemAbs<'_> {
    fn eval(&self, addr: u32, inst: Inst, state: &mut MemState) {
        use Inst::*;
        let set = |state: &mut MemState, rd: Reg, val: MemVal| {
            if rd != Reg::ZERO {
                state.regs[rd.index() as usize] = val;
            }
        };
        let r = |state: &MemState, reg: Reg| state.regs[reg.index() as usize].clone();
        match inst {
            // Pointer-aware arithmetic: provenance survives displacement.
            Add { rd, rs, rt } | Addu { rd, rs, rt } => {
                let v = add_vals(&r(state, rs), &r(state, rt));
                set(state, rd, v);
            }
            Sub { rd, rs, rt } | Subu { rd, rs, rt } => {
                let v = sub_vals(&r(state, rs), &r(state, rt));
                set(state, rd, v);
            }
            Addi { rt, rs, imm } => {
                let disp = MemVal::abs(AbsVal::Const(imm as i32 as u32));
                let v = add_vals(&r(state, rs), &disp);
                set(state, rt, v);
            }
            // `or`/`xor`/`ori`/`xori` with zero are common move idioms;
            // keep provenance there, degrade otherwise.
            Or { rd, rs, rt } | Xor { rd, rs, rt } => {
                let a = r(state, rs);
                let b = r(state, rt);
                let v = match (a.scalar(), b.scalar()) {
                    (_, Some(AbsVal::Const(0))) => a.clone(),
                    (Some(AbsVal::Const(0)), _) => b.clone(),
                    _ => {
                        let f: fn(u32, u32) -> u32 = match inst {
                            Or { .. } => |x, y| x | y,
                            _ => |x, y| x ^ y,
                        };
                        MemVal::abs(a.as_abs().map2(&b.as_abs(), f))
                    }
                };
                set(state, rd, v);
            }
            Ori { rt, rs, imm: 0 } | Xori { rt, rs, imm: 0 } => {
                let v = r(state, rs);
                set(state, rt, v);
            }
            // Loads: a frame load at a resolved slot returns the tracked
            // value (this is what carries `$fp` across an epilogue).
            Lw { rt, off, base } => {
                let target = state.effective_addr(base, off);
                let v = match (target.base, &target.off) {
                    (Base::Stack, AbsVal::Const(o)) => state
                        .slots
                        .get(&(*o as i32))
                        .cloned()
                        .unwrap_or_else(MemVal::top),
                    _ => MemVal::top(),
                };
                set(state, rt, v);
            }
            Lb { rt, .. } | Lh { rt, .. } | Lbu { rt, .. } | Lhu { rt, .. } => {
                set(state, rt, MemVal::top());
            }
            // Stores mutate the tracked frame, never a register.
            Sb { rt: _, off, base } | Sh { rt: _, off, base } | Sw { rt: _, off, base } => {
                let size = match inst {
                    Sb { .. } => 1,
                    Sh { .. } => 2,
                    _ => 4,
                };
                let target = state.effective_addr(base, off);
                let value = match inst {
                    Sw { rt, .. } => r(state, rt),
                    _ => MemVal::top(),
                };
                apply_store(state, &target, size, value);
            }
            // Calls: havoc per A2, then the link register is exact.
            Jal { .. } => {
                apply_call(state);
                set(
                    state,
                    Reg::RA,
                    MemVal::abs(AbsVal::Const(addr.wrapping_add(4))),
                );
            }
            Jalr { rd, .. } => {
                apply_call(state);
                set(state, rd, MemVal::abs(AbsVal::Const(addr.wrapping_add(4))));
            }
            // Everything else is scalar: evaluate over the pointer-blind
            // view and re-wrap as `Abs`.
            _ => {
                let scalars: Vec<AbsVal> = state.regs.iter().map(MemVal::as_abs).collect();
                if let Some((rd, val)) = scalar_eval(addr, inst, &scalars) {
                    set(state, rd, MemVal::abs(val));
                }
            }
        }
    }
}

impl Analysis for MemAbs<'_> {
    type Fact = MemFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> MemFact {
        None
    }

    fn join(&self, into: &mut MemFact, from: &MemFact) -> bool {
        let Some(from) = from else { return false };
        match into {
            None => {
                *into = Some(from.clone());
                true
            }
            Some(into) => {
                let mut changed = false;
                for (i, f) in into.regs.iter_mut().zip(&from.regs) {
                    let joined = i.join(f);
                    if joined != *i {
                        *i = joined;
                        changed = true;
                    }
                }
                // Slot intersection: a word is known only if both paths
                // know it; disagreeing values join.
                let keys: Vec<i32> = into.slots.keys().copied().collect();
                for k in keys {
                    match from.slots.get(&k) {
                        None => {
                            into.slots.remove(&k);
                            changed = true;
                        }
                        Some(f) => {
                            let i = &into.slots[&k];
                            let joined = i.join(f);
                            if joined != *i {
                                into.slots.insert(k, joined);
                                changed = true;
                            }
                        }
                    }
                }
                changed
            }
        }
    }

    fn transfer(&self, node: usize, input: &MemFact) -> MemFact {
        let state = input.as_ref()?;
        let mut state = state.clone();
        if let Some(inst) = self.flow.decoded[node] {
            let addr = self.text_base.wrapping_add(4 * node as u32);
            self.eval(addr, inst, &mut state);
        }
        Some(state)
    }
}

/// Runs the memory-sensitive analysis, returning the abstract state
/// *entering* each text word (`None` where no static path arrives).
pub fn analyze_memory(image: &Image, flow: &Flow) -> Vec<MemFact> {
    let succs: Vec<Vec<usize>> = flow
        .succs
        .iter()
        .map(|es| es.iter().map(|e| e.to).collect())
        .collect();
    let index_of = |addr: u32| -> Option<usize> {
        if addr < image.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - image.text_base) / 4) as usize;
        (i < flow.decoded.len()).then_some(i)
    };
    let mut seeds: Vec<(usize, MemFact)> = Vec::new();
    let entry = index_of(image.entry);
    if let Some(e) = entry {
        seeds.push((e, Some(root_state(true))));
    }
    for &addr in image.symbols.values() {
        if let Some(i) = index_of(addr) {
            if entry != Some(i) {
                seeds.push((i, Some(root_state(false))));
            }
        }
    }
    let analysis = MemAbs {
        flow,
        text_base: image.text_base,
    };
    dataflow::solve(&analysis, &succs, &seeds).input
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states_of(src: &str) -> (Flow, Vec<MemFact>) {
        let image = flexprot_asm::assemble_or_panic(src);
        let flow = Flow::recover(&image, &image.text.clone());
        let states = analyze_memory(&image, &flow);
        (flow, states)
    }

    /// Node index just past the `n`th load of `rt` (the first point where
    /// the loaded value is observable in an *entering* state).
    fn after_load(flow: &Flow, rt: Reg, n: usize) -> usize {
        flow.decoded
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Some(Inst::Lw { rt: r, .. }) if *r == rt))
            .map(|(i, _)| i + 1)
            .nth(n)
            .expect("load present")
    }

    fn reg(states: &[MemFact], node: usize, r: Reg) -> MemVal {
        states[node].as_ref().expect("reachable").regs[r.index() as usize].clone()
    }

    #[test]
    fn entry_pins_the_stack_seed_exactly() {
        let (_flow, states) = states_of("main: nop\n li $v0, 10\n syscall\n");
        assert_eq!(reg(&states, 1, Reg::SP), MemVal::stack(AbsVal::Const(0)));
        assert_eq!(reg(&states, 1, Reg::FP), MemVal::stack(AbsVal::Const(0)));
        assert_eq!(reg(&states, 1, Reg::ZERO), MemVal::abs(AbsVal::Const(0)));
    }

    #[test]
    fn frame_arithmetic_keeps_provenance() {
        let (_flow, states) = states_of(
            "main: addi $sp, $sp, -32\n move $fp, $sp\n addi $t0, $fp, 8\n \
             sub $t1, $t0, $sp\n li $v0, 10\n syscall\n",
        );
        // After the prologue: $sp = seed − 32, $fp = seed − 32.
        assert_eq!(
            reg(&states, 2, Reg::SP),
            MemVal::stack(AbsVal::Const(-32i32 as u32))
        );
        assert_eq!(
            reg(&states, 2, Reg::FP),
            MemVal::stack(AbsVal::Const(-32i32 as u32))
        );
        // $t0 = $fp + 8 stays on the stack; $t0 − $sp is the exact scalar 8.
        assert_eq!(
            reg(&states, 3, Reg::T0),
            MemVal::stack(AbsVal::Const(-24i32 as u32))
        );
        assert_eq!(reg(&states, 4, Reg::T1), MemVal::abs(AbsVal::Const(8)));
    }

    #[test]
    fn spill_and_reload_round_trips_through_the_frame() {
        // The MiniC prologue/epilogue shape: save $fp, rebase it, reload.
        let (flow, states) = states_of(
            "main: li $t3, 7\n addi $sp, $sp, -16\n sw $t3, 8($sp)\n \
             move $fp, $sp\n lw $t4, 8($fp)\n li $v0, 10\n syscall\n",
        );
        let at = after_load(&flow, Reg::T4, 0);
        assert_eq!(reg(&states, at, Reg::T4), MemVal::abs(AbsVal::Const(7)));
    }

    #[test]
    fn join_intersects_frame_slots() {
        let (flow, states) = {
            let mut image = flexprot_asm::assemble_or_panic(
                "main: addi $sp, $sp, -16\n beq $a0, $zero, other\n sw $zero, 8($sp)\n \
                 j done\n other: nop\n done: lw $t0, 8($sp)\n li $v0, 10\n syscall\n",
            );
            image.symbols.retain(|name, _| name.as_str() == "main");
            let flow = Flow::recover(&image, &image.text.clone());
            let states = analyze_memory(&image, &flow);
            (flow, states)
        };
        // Only one arm wrote the slot, so after the join it is unknown.
        let at = after_load(&flow, Reg::T0, 0);
        assert_eq!(reg(&states, at, Reg::T0), MemVal::top());
    }

    #[test]
    fn unknown_scalar_store_clears_the_frame_but_data_store_does_not() {
        let (flow, states) = states_of(
            "main: addi $sp, $sp, -16\n sw $zero, 8($sp)\n li $t0, 0x10010000\n \
             sw $zero, 0($t0)\n lw $t1, 8($sp)\n lw $t2, 0($a0)\n sw $zero, 0($t2)\n \
             lw $t3, 8($sp)\n li $v0, 10\n syscall\n",
        );
        // The data-segment store cannot alias the frame (A1)…
        let t1_at = after_load(&flow, Reg::T1, 0);
        assert_eq!(reg(&states, t1_at, Reg::T1), MemVal::abs(AbsVal::Const(0)));
        // …but the unknown-pointer store havocks it.
        let t3_at = after_load(&flow, Reg::T3, 0);
        assert_eq!(reg(&states, t3_at, Reg::T3), MemVal::top());
    }

    #[test]
    fn calls_havoc_caller_saved_state_but_keep_the_frame_pointer() {
        let (flow, states) = states_of(
            "main: addi $sp, $sp, -16\n li $t0, 5\n li $s0, 6\n sw $zero, 8($sp)\n \
             jal helper\n lw $t1, 8($sp)\n li $v0, 10\n syscall\n\
             helper: jr $ra\n",
        );
        // State entering the post-call reload: temporaries havocked,
        // callee-saved and the stack pointer intact.
        let reload = after_load(&flow, Reg::T1, 0) - 1;
        assert_eq!(reg(&states, reload, Reg::T0), MemVal::top());
        assert_eq!(reg(&states, reload, Reg::S0), MemVal::abs(AbsVal::Const(6)));
        assert_eq!(
            reg(&states, reload, Reg::SP),
            MemVal::stack(AbsVal::Const(-16i32 as u32))
        );
        // The caller's frame slot (at $sp + 8 ≥ $sp) survives the callee.
        assert_eq!(
            reg(&states, reload + 1, Reg::T1),
            MemVal::abs(AbsVal::Const(0)),
            "caller frame slot must survive the call"
        );
    }

    #[test]
    fn stack_stack_addition_and_escaping_ops_degrade() {
        let (_flow, states) =
            states_of("main: add $t0, $sp, $fp\n sll $t1, $sp, 2\n li $v0, 10\n syscall\n");
        assert_eq!(reg(&states, 1, Reg::T0), MemVal::top());
        assert_eq!(reg(&states, 2, Reg::T1), MemVal::top());
    }
}
