//! Translation validation: prove a protect run semantics-preserving.
//!
//! The protection passes in `flexprot-core` promise that their rewrite is
//! *semantically invisible* — guard windows are architecturally inert and
//! the fetch-path cipher round-trips to the original instruction stream.
//! This module checks that promise per (baseline, protected) pair instead
//! of trusting the rewriter: it is the N-version idea of
//! [`crate::verify`] pushed from "the shipped image satisfies the
//! hardware contract" to "the shipped image computes the same function as
//! the image the user handed in".
//!
//! The validator proves three obligations:
//!
//! 1. **Alignment** ([`Obligation::Alignment`]): guard insertion only ever
//!    splices [`SIG_SYMBOLS`]-word runs between a block body and its
//!    terminator, so walking both texts in lockstep — skipping the runs
//!    the monitor schedule declares — must pair every baseline word with
//!    exactly one protected word whose instruction matches *modulo address
//!    remapping*. Control-transfer targets and address-bearing relocation
//!    fields are compared through back-translation: a protected target is
//!    normalised forward over any guard run it lands on (executing a guard
//!    run is a no-op by obligation 2, so a branch to a guard start is
//!    equivalent to a branch past it) and then mapped back to baseline
//!    coordinates. Any unpaired or mismatched word is `FP802`
//!    (`unaligned-block`) — or `FP803` when the word sits inside a cipher
//!    region, because there the plaintext reconstruction is exactly the
//!    decrypt(encrypt(·)) identity and a mismatch is a cipher fault.
//! 2. **Window transparency** ([`Obligation::Window`]): every word of
//!    every scheduled guard run must write no live architectural state.
//!    Guard-form words are inert by construction (`rd == $zero`, no
//!    memory, no control). Anything else is judged by lockstep symbolic
//!    execution on the memory-sensitive [`crate::memdom`] domain plus the
//!    [`crate::liveness`] solution of the protected flow: a write to a
//!    register live past the window, an observable syscall, a
//!    provably-taken control transfer, or a store that provably rewrites
//!    the text segment ([`crate::alias`] must-alias) is `FP801`; a store
//!    the points-to partition cannot separate from text, a provably-data
//!    store (the baseline performs no such write), or a branch whose
//!    condition the domain cannot decide is a *sound refusal*, `FP804`
//!    with a typed [`RefusalReason`], never a silent pass.
//! 3. **Cipher identity** ([`Obligation::Cipher`]): for every region of
//!    the monitor's table, applying the keystream twice must restore the
//!    stored ciphertext word-for-word (the involution half of the
//!    round-trip; the plaintext half is obligation 1). Violations are
//!    `FP803` with the offending address as witness.
//!
//! Verdicts are three-valued ([`EquivVerdict`]): `Proven`, `Inequivalent`
//! with a concrete witness address, or `Refused` with a typed
//! [`RefusalReason`] (stable snake_case `code()` for machine consumers,
//! prose `Display` for humans) — a refusal is sound (the validator does
//! not know, and says so) and is surfaced as a warning rather than an
//! error.

use std::collections::BTreeMap;

use flexprot_isa::{Image, Inst, Reg, Reloc, RelocKind};
use flexprot_secmon::guard::is_guard_form;
use flexprot_secmon::SecMonConfig;

use crate::absint::AbsVal;
use crate::alias::{self, StoreClass};
use crate::diag::{self, json_escape, Finding, LintPolicy, Severity};
use crate::flow::Flow;
use crate::liveness::{self, Liveness};
use crate::memdom::{self, MemFact};
use crate::{decrypt_text, Sink};

/// Cap on findings emitted per lint before summarising, mirroring
/// `checks::MAX_PER_LINT`.
const MAX_PER_LINT: usize = 8;

/// Which proof obligation a verdict belongs to (used only for labelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Obligation {
    /// Lockstep CFG/word alignment modulo guard runs.
    Alignment,
    /// Guard-window transparency.
    Window,
    /// Per-region decrypt(encrypt(·)) identity.
    Cipher,
}

/// Why the transparency prover refused to decide a guard-window word.
///
/// Every variant carries a stable snake_case [`code`](Self::code) for
/// machine consumers (CSV columns, the `"code"` JSON field) and prose
/// `Display` for humans; the codes are part of the `flexprot-equiv-v1`
/// contract and must never be renamed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// The store target is provably outside the text segment. Still a
    /// refusal: the baseline performs no such write, and data-memory
    /// equality is outside the lockstep domain — but the sharper class
    /// tells an auditor self-modification is excluded.
    StoreWritesMemory,
    /// The store's points-to set could not be separated from the text
    /// segment, so a self-rewrite cannot be excluded.
    StoreMayAliasText,
    /// The branch condition is not statically decided by the domain.
    BranchUndecided,
}

impl RefusalReason {
    /// The stable machine-readable code (snake_case, never renamed).
    pub fn code(self) -> &'static str {
        match self {
            RefusalReason::StoreWritesMemory => "store_writes_memory",
            RefusalReason::StoreMayAliasText => "store_may_alias_text",
            RefusalReason::BranchUndecided => "branch_undecided",
        }
    }
}

impl std::fmt::Display for RefusalReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prose = match self {
            RefusalReason::StoreWritesMemory => {
                "store in guard window provably writes data memory the baseline \
                 never touches; transparency is unprovable"
            }
            RefusalReason::StoreMayAliasText => {
                "store in guard window may rewrite the text segment; \
                 self-modification cannot be excluded"
            }
            RefusalReason::BranchUndecided => {
                "branch condition in guard window is not statically decided"
            }
        };
        f.write_str(prose)
    }
}

/// The three-valued outcome of a proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivVerdict {
    /// The obligation holds on every static path.
    Proven,
    /// The obligation fails; `witness_addr` is a protected-image text
    /// address an auditor can inspect.
    Inequivalent {
        /// Protected text address of the first disagreement.
        witness_addr: u32,
    },
    /// The validator could not decide and honestly says so.
    Refused {
        /// Why precision ran out.
        reason: RefusalReason,
    },
}

impl EquivVerdict {
    /// Short label for CSV/JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            EquivVerdict::Proven => "proven",
            EquivVerdict::Inequivalent { .. } => "inequivalent",
            EquivVerdict::Refused { .. } => "refused",
        }
    }
}

/// One guard window's transparency verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowEquiv {
    /// Address of the first guard symbol word.
    pub site_addr: u32,
    /// Transparency verdict for the run.
    pub verdict: EquivVerdict,
}

/// Counters of one validation run (rendered into `flexprot-equiv-v1`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EquivStats {
    /// Baseline text words.
    pub base_words: usize,
    /// Protected text words.
    pub prot_words: usize,
    /// Protected words belonging to scheduled guard runs.
    pub guard_words: usize,
    /// Baseline words paired with a protected word.
    pub aligned_words: usize,
    /// Baseline text symbols matched by name and address mapping.
    pub symbols_matched: usize,
    /// Guard windows proven transparent.
    pub windows_proven: usize,
    /// Guard windows proven to clobber live state.
    pub windows_inequivalent: usize,
    /// Guard windows refused (reason logged).
    pub windows_refused: usize,
    /// Cipher regions checked for the involution identity.
    pub cipher_regions: usize,
    /// Ciphertext words round-tripped.
    pub cipher_words: usize,
}

/// The product of one translation-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivReport {
    /// FP8xx findings (policy severities applied).
    pub findings: Vec<Finding>,
    /// Run counters.
    pub stats: EquivStats,
    /// Per-window transparency verdicts, in site-address order.
    pub windows: Vec<WindowEquiv>,
    /// Every logged refusal: `(protected address, reason)`.
    pub refusals: Vec<(u32, RefusalReason)>,
    /// The overall verdict (worst of the three obligations).
    pub verdict: EquivVerdict,
}

impl EquivReport {
    /// Whether the transform was proven semantics-preserving with no
    /// error-severity finding (refusals keep the report clean — they are
    /// warnings — but the verdict is then [`EquivVerdict::Refused`]).
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Number of findings carrying `id`.
    pub fn count_id(&self, id: &str) -> usize {
        self.findings.iter().filter(|f| f.id == id).count()
    }

    /// Renders the stable `flexprot-equiv-v1` JSON document.
    ///
    /// Schema: `{"schema","verdict","witness","reason","code",
    /// "stats":{...},
    /// "windows":[{"site","verdict","witness","reason","code"}],
    /// "refusals":[{"addr","code","reason"}],"findings":[{"id","name",
    /// "severity","addr","message"}]}` — field order is fixed, addresses
    /// are `"0x…"` strings or `null`; `"code"` is the stable snake_case
    /// [`RefusalReason::code`] (or `null` when the verdict is not a
    /// refusal).
    pub fn to_json(&self) -> String {
        fn verdict_fields(v: &EquivVerdict) -> String {
            let (witness, reason, code) = match v {
                EquivVerdict::Proven => ("null".to_owned(), "null".to_owned(), "null".to_owned()),
                EquivVerdict::Inequivalent { witness_addr } => (
                    format!("\"{witness_addr:#010x}\""),
                    "null".to_owned(),
                    "null".to_owned(),
                ),
                EquivVerdict::Refused { reason } => (
                    "null".to_owned(),
                    format!("\"{}\"", json_escape(&reason.to_string())),
                    format!("\"{}\"", reason.code()),
                ),
            };
            format!(
                "\"verdict\":\"{}\",\"witness\":{witness},\"reason\":{reason},\"code\":{code}",
                v.label()
            )
        }
        let mut out = String::from("{\"schema\":\"flexprot-equiv-v1\",");
        out.push_str(&verdict_fields(&self.verdict));
        let s = &self.stats;
        out.push_str(&format!(
            ",\"stats\":{{\"base_words\":{},\"prot_words\":{},\"guard_words\":{},\
             \"aligned_words\":{},\"symbols_matched\":{},\"windows_proven\":{},\
             \"windows_inequivalent\":{},\"windows_refused\":{},\
             \"cipher_regions\":{},\"cipher_words\":{}}}",
            s.base_words,
            s.prot_words,
            s.guard_words,
            s.aligned_words,
            s.symbols_matched,
            s.windows_proven,
            s.windows_inequivalent,
            s.windows_refused,
            s.cipher_regions,
            s.cipher_words,
        ));
        out.push_str(",\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"site\":\"{:#010x}\",{}}}",
                w.site_addr,
                verdict_fields(&w.verdict)
            ));
        }
        out.push_str("],\"refusals\":[");
        for (i, (addr, reason)) in self.refusals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"addr\":\"{addr:#010x}\",\"code\":\"{}\",\"reason\":\"{}\"}}",
                reason.code(),
                json_escape(&reason.to_string())
            ));
        }
        out.push_str("],\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let addr = f
                .addr
                .map_or_else(|| "null".to_owned(), |a| format!("\"{a:#010x}\""));
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"addr\":{addr},\
                 \"message\":\"{}\"}}",
                f.id,
                f.name,
                f.severity,
                json_escape(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Validates that `protected` preserves the semantics of `base` under the
/// monitor configuration `config`, with the default lint policy.
pub fn validate(base: &Image, protected: &Image, config: &SecMonConfig) -> EquivReport {
    validate_with_policy(base, protected, config, &LintPolicy::default())
}

/// How one guard-window word was judged.
enum WordJudgement {
    Transparent,
    Clobber(String),
    Refused(RefusalReason),
}

/// Validates `protected` against `base`, applying `policy` severity
/// overrides to every finding.
pub fn validate_with_policy(
    base: &Image,
    protected: &Image,
    config: &SecMonConfig,
    policy: &LintPolicy,
) -> EquivReport {
    let mut sink = Sink {
        policy,
        findings: Vec::new(),
    };
    let mut refusals: Vec<(u32, RefusalReason)> = Vec::new();
    let text = decrypt_text(protected, config);
    let mut stats = EquivStats {
        base_words: base.text.len(),
        prot_words: text.len(),
        ..EquivStats::default()
    };

    // --- Obligation 1 groundwork: classify guard words and build the
    // lockstep index maps between the two texts. ---
    let mut is_guard = vec![false; text.len()];
    for (&site_addr, site) in &config.sites {
        let symbols = site.symbols as usize;
        match protected.text_index_of(site_addr) {
            Some(i) if i + symbols <= text.len() => {
                for slot in &mut is_guard[i..i + symbols] {
                    *slot = true;
                }
            }
            _ => sink.emit(
                &diag::EQUIV_UNALIGNED,
                Some(site_addr),
                "scheduled guard run extends outside the protected text segment".to_owned(),
            ),
        }
    }
    stats.guard_words = is_guard.iter().filter(|&&g| g).count();

    // Pair every non-guard protected word with the next baseline word.
    let mut old_of_new: Vec<Option<usize>> = vec![None; text.len()];
    let mut new_of_old: Vec<usize> = Vec::with_capacity(base.text.len());
    for (j, &guard) in is_guard.iter().enumerate() {
        if !guard && new_of_old.len() < base.text.len() {
            old_of_new[j] = Some(new_of_old.len());
            new_of_old.push(j);
        }
    }
    stats.aligned_words = new_of_old.len();
    if new_of_old.len() != base.text.len() || text.len() != base.text.len() + stats.guard_words {
        let witness = protected.addr_of_index(text.len().min(base.text.len()));
        sink.emit(
            &diag::EQUIV_UNALIGNED,
            Some(witness),
            format!(
                "text length mismatch: {} baseline + {} guard words != {} protected words",
                base.text.len(),
                stats.guard_words,
                text.len()
            ),
        );
    }

    // Back-translation: protected address -> baseline address, skipping
    // forward over guard runs (justified by obligation 2: executing a
    // guard run before the landing word is architecturally a no-op).
    let back = |addr: u32| -> Option<u32> {
        let mut j = protected.text_index_of(addr)?;
        while j < text.len() && is_guard[j] {
            j += 1;
        }
        old_of_new
            .get(j)
            .copied()
            .flatten()
            .map(|i| base.addr_of_index(i))
    };

    // --- Obligation 1: lockstep word comparison. ---
    let base_relocs = relocs_by_index(&base.relocs);
    let prot_relocs = relocs_by_index(&protected.relocs);
    let mut misaligned: Vec<(u32, bool, String)> = Vec::new(); // (addr, in_region, detail)
    for (i, &j) in new_of_old.iter().enumerate() {
        let (wb, wp) = (base.text[i], text[j]);
        let addr_b = base.addr_of_index(i);
        let addr_p = protected.addr_of_index(j);
        if let Some(detail) = word_mismatch(
            base,
            wb,
            wp,
            addr_b,
            addr_p,
            i,
            j,
            &base_relocs,
            &prot_relocs,
            &back,
        ) {
            misaligned.push((addr_p, config.regions.lookup(addr_p).is_some(), detail));
        }
    }
    let mut align_counts = (0usize, 0usize); // (FP802, FP803)
    for (addr, in_region, detail) in &misaligned {
        let (lint, count) = if *in_region {
            (&diag::EQUIV_CIPHER_MISMATCH, &mut align_counts.1)
        } else {
            (&diag::EQUIV_UNALIGNED, &mut align_counts.0)
        };
        *count += 1;
        if *count <= MAX_PER_LINT {
            sink.emit(lint, Some(*addr), detail.clone());
        }
    }
    for (lint, count) in [
        (&diag::EQUIV_UNALIGNED, align_counts.0),
        (&diag::EQUIV_CIPHER_MISMATCH, align_counts.1),
    ] {
        if count > MAX_PER_LINT {
            sink.emit(
                lint,
                None,
                format!("... and {} more mismatched words", count - MAX_PER_LINT),
            );
        }
    }

    // Entry point and symbol table must survive the remapping.
    if base.contains_text_addr(base.entry) && back(protected.entry) != Some(base.entry) {
        sink.emit(
            &diag::EQUIV_UNALIGNED,
            Some(protected.entry),
            format!(
                "protected entry point does not map back to the baseline entry {:#010x}",
                base.entry
            ),
        );
    }
    for (name, &addr_b) in &base.symbols {
        let mapped = match protected.symbol(name) {
            Some(addr_p) if base.contains_text_addr(addr_b) => back(addr_p) == Some(addr_b),
            Some(addr_p) => addr_p == addr_b,
            None => false,
        };
        if mapped {
            stats.symbols_matched += 1;
        } else {
            sink.emit(
                &diag::EQUIV_UNALIGNED,
                Some(addr_b),
                format!("symbol `{name}` is missing or maps to the wrong baseline address"),
            );
        }
    }
    if base.data != protected.data || base.data_base != protected.data_base {
        sink.emit(
            &diag::EQUIV_UNALIGNED,
            Some(protected.data_base),
            "the protected data segment differs from the baseline".to_owned(),
        );
    }

    // --- Obligation 2: guard-window transparency on the protected flow. ---
    let flow = Flow::recover(protected, &text);
    // Liveness runs on a sanitized flow: inert guard-form words *read*
    // the registers their operand fields spell, but the result lands in
    // `$zero`, so those reads must not keep registers alive — otherwise
    // every register a signature symbol happens to name would count as
    // clobberable state. Non-guard-form words in a window keep their real
    // semantics (they are the suspects being judged).
    let mut sanitized = flow.clone();
    for (j, &guard) in is_guard.iter().enumerate() {
        if guard && is_guard_form(text[j]) {
            sanitized.decoded[j] = Some(Inst::NOP);
        }
    }
    let live = liveness::analyze(&sanitized);
    let mem = memdom::analyze_memory(protected, &flow);
    let mut windows: Vec<WindowEquiv> = Vec::new();
    for (&site_addr, site) in &config.sites {
        let symbols = site.symbols as usize;
        let Some(start) = protected.text_index_of(site_addr) else {
            windows.push(WindowEquiv {
                site_addr,
                verdict: EquivVerdict::Inequivalent {
                    witness_addr: site_addr,
                },
            });
            continue;
        };
        let mut verdict = EquivVerdict::Proven;
        for g in start..(start + symbols).min(text.len()) {
            if !flow.reachable[g] {
                continue; // never fetched: vacuously transparent
            }
            let addr_g = protected.addr_of_index(g);
            match judge_guard_word(g, protected, &text, &flow, &live, &mem) {
                WordJudgement::Transparent => {}
                WordJudgement::Clobber(detail) => {
                    sink.emit(&diag::EQUIV_GUARD_CLOBBER, Some(addr_g), detail);
                    verdict = EquivVerdict::Inequivalent {
                        witness_addr: addr_g,
                    };
                    break;
                }
                WordJudgement::Refused(reason) => {
                    sink.emit(&diag::EQUIV_REFUSED, Some(addr_g), reason.to_string());
                    refusals.push((addr_g, reason));
                    verdict = EquivVerdict::Refused { reason };
                    break;
                }
            }
        }
        windows.push(WindowEquiv { site_addr, verdict });
    }
    for w in &windows {
        match w.verdict {
            EquivVerdict::Proven => stats.windows_proven += 1,
            EquivVerdict::Inequivalent { .. } => stats.windows_inequivalent += 1,
            EquivVerdict::Refused { .. } => stats.windows_refused += 1,
        }
    }

    // --- Obligation 3: per-region decrypt(encrypt(·)) involution. ---
    let mut cipher_failures = 0usize;
    for region in config.regions.regions() {
        stats.cipher_regions += 1;
        let mut addr = region.start;
        while addr < region.end {
            if let Some(idx) = protected.text_index_of(addr) {
                stats.cipher_words += 1;
                let stored = protected.text[idx];
                let round_trip = config
                    .regions
                    .apply(addr, config.regions.apply(addr, stored));
                if round_trip != stored {
                    cipher_failures += 1;
                    if cipher_failures <= MAX_PER_LINT {
                        sink.emit(
                            &diag::EQUIV_CIPHER_MISMATCH,
                            Some(addr),
                            format!(
                                "keystream is not an involution here: \
                                 {stored:#010x} round-trips to {round_trip:#010x}"
                            ),
                        );
                    }
                }
            }
            addr = addr.wrapping_add(4);
        }
    }
    if cipher_failures > MAX_PER_LINT {
        sink.emit(
            &diag::EQUIV_CIPHER_MISMATCH,
            None,
            format!(
                "... and {} more involution failures",
                cipher_failures - MAX_PER_LINT
            ),
        );
    }

    // --- Overall verdict: worst obligation wins; errors beat refusals. ---
    let witness = sink
        .findings
        .iter()
        .find(|f| f.severity == Severity::Error)
        .map(|f| f.addr.unwrap_or(protected.text_base));
    let verdict = match (witness, refusals.first()) {
        (Some(witness_addr), _) => EquivVerdict::Inequivalent { witness_addr },
        (None, Some((_, reason))) => EquivVerdict::Refused { reason: *reason },
        (None, None) => EquivVerdict::Proven,
    };
    EquivReport {
        findings: sink.findings,
        stats,
        windows,
        refusals,
        verdict,
    }
}

/// Groups relocation records by the text word they patch.
fn relocs_by_index(relocs: &[Reloc]) -> BTreeMap<usize, Vec<Reloc>> {
    let mut map: BTreeMap<usize, Vec<Reloc>> = BTreeMap::new();
    for &r in relocs {
        map.entry(r.text_index).or_default().push(r);
    }
    map
}

/// Judges one aligned word pair, returning a mismatch description or
/// `None` when the pair is equivalent modulo address remapping.
#[allow(clippy::too_many_arguments)]
fn word_mismatch(
    base: &Image,
    wb: u32,
    wp: u32,
    addr_b: u32,
    addr_p: u32,
    i: usize,
    j: usize,
    base_relocs: &BTreeMap<usize, Vec<Reloc>>,
    prot_relocs: &BTreeMap<usize, Vec<Reloc>>,
    back: &impl Fn(u32) -> Option<u32>,
) -> Option<String> {
    let (ib, ip) = (Inst::decode(wb).ok(), Inst::decode(wp).ok());
    match (ib, ip) {
        // Non-instruction data in text must be carried verbatim.
        (None, None) => (wb != wp).then(|| {
            format!("undecodable word changed: baseline {wb:#010x}, protected {wp:#010x}")
        }),
        (None, Some(_)) | (Some(_), None) => Some(format!(
            "decodability changed: baseline {wb:#010x}, protected {wp:#010x}"
        )),
        (Some(ib), Some(ip)) => {
            // Control transfers: non-target fields must be identical and
            // the protected target must back-translate to the baseline's.
            let (mask, tb, tp) = if ib.is_branch() {
                (
                    !0xFFFFu32,
                    ib.branch_target(addr_b),
                    ip.branch_target(addr_p),
                )
            } else if ib.is_direct_jump() {
                (!0x03FF_FFFFu32, ib.jump_target(), ip.jump_target())
            } else {
                // Not a direct transfer: identical encodings are
                // equivalent unless the word carries a text-address
                // relocation, which must be compared through the map.
                return non_control_mismatch(base, wb, wp, i, j, base_relocs, prot_relocs, back);
            };
            if (wb & mask) != (wp & mask) {
                return Some(format!(
                    "control instruction shape changed: baseline {wb:#010x}, protected {wp:#010x}"
                ));
            }
            let (Some(tb), Some(tp)) = (tb, tp) else {
                return Some("control target undecodable".to_owned());
            };
            let preserved = if base.contains_text_addr(tb) {
                back(tp) == Some(tb)
            } else {
                tp == tb // wild target carried verbatim (FP002's business)
            };
            (!preserved).then(|| {
                format!("control target {tp:#010x} does not map back to baseline target {tb:#010x}")
            })
        }
    }
}

/// The non-control arm of [`word_mismatch`]: plain words must be
/// identical; words patched by a text-address `HI16`/`LO16` relocation
/// must agree outside the immediate and correspond through the map.
#[allow(clippy::too_many_arguments)]
fn non_control_mismatch(
    base: &Image,
    wb: u32,
    wp: u32,
    i: usize,
    j: usize,
    base_relocs: &BTreeMap<usize, Vec<Reloc>>,
    prot_relocs: &BTreeMap<usize, Vec<Reloc>>,
    back: &impl Fn(u32) -> Option<u32>,
) -> Option<String> {
    let empty: Vec<Reloc> = Vec::new();
    let addr_relocs: Vec<&Reloc> = base_relocs
        .get(&i)
        .unwrap_or(&empty)
        .iter()
        .filter(|r| {
            matches!(r.kind, RelocKind::Hi16 | RelocKind::Lo16) && base.contains_text_addr(r.target)
        })
        .collect();
    if addr_relocs.is_empty() {
        return (wb != wp).then(|| {
            format!("instruction word changed: baseline {wb:#010x}, protected {wp:#010x}")
        });
    }
    if (wb & !0xFFFF) != (wp & !0xFFFF) {
        return Some(format!(
            "address-bearing instruction shape changed: baseline {wb:#010x}, protected {wp:#010x}"
        ));
    }
    for rb in addr_relocs {
        let partner = prot_relocs
            .get(&j)
            .and_then(|rs| rs.iter().find(|rp| rp.kind == rb.kind));
        let Some(rp) = partner else {
            return Some(format!("{} relocation lost in translation", rb.kind));
        };
        if back(rp.target) != Some(rb.target) {
            return Some(format!(
                "{} relocation target {:#010x} does not map back to {:#010x}",
                rb.kind, rp.target, rb.target
            ));
        }
    }
    None
}

/// Judges one reachable guard-window word against the transparency
/// obligation, on the protected flow's liveness and memory-sensitive
/// value-set facts.
fn judge_guard_word(
    g: usize,
    protected: &Image,
    text: &[u32],
    flow: &Flow,
    live: &Liveness,
    mem: &[MemFact],
) -> WordJudgement {
    let word = text[g];
    if is_guard_form(word) {
        return WordJudgement::Transparent; // rd == $zero, no memory, no control
    }
    let Some(inst) = flow.decoded[g] else {
        return WordJudgement::Clobber(
            "guard-window word does not decode and would fault at fetch".to_owned(),
        );
    };
    if inst.is_store() {
        // Points-to classification against the text segment: a must-alias
        // store provably rewrites fetched code (clobber with witness), a
        // may-alias store might, and even a provably-data store refuses —
        // the baseline performs no such write — but with the sharper
        // reason that rules self-modification out.
        let lo = protected.text_base;
        let hi = lo.wrapping_add(4 * text.len() as u32);
        let class = mem
            .get(g)
            .and_then(|f| f.as_ref())
            .and_then(|state| alias::store_site(g, inst, state))
            .map_or(StoreClass::MayAlias, |site| {
                alias::classify(&site.target, site.size, lo, hi)
            });
        return match class {
            StoreClass::MustAlias { addr } => WordJudgement::Clobber(format!(
                "store in guard window provably rewrites the text word at {addr:#010x}"
            )),
            StoreClass::MayAlias => WordJudgement::Refused(RefusalReason::StoreMayAliasText),
            StoreClass::NoAlias => WordJudgement::Refused(RefusalReason::StoreWritesMemory),
        };
    }
    if matches!(inst, Inst::Syscall | Inst::Break) {
        return WordJudgement::Clobber(
            "syscall/break in guard window has observable effects".to_owned(),
        );
    }
    if inst.is_branch() {
        // Lockstep symbolic execution decides the condition where it can.
        return match branch_taken(inst, mem.get(g).and_then(|f| f.as_ref())) {
            Some(false) => WordJudgement::Transparent,
            Some(true) => WordJudgement::Clobber(
                "provably-taken branch in guard window diverts control flow".to_owned(),
            ),
            None => WordJudgement::Refused(RefusalReason::BranchUndecided),
        };
    }
    if inst.is_control_transfer() {
        return WordJudgement::Clobber("jump in guard window diverts control flow".to_owned());
    }
    match inst.def() {
        None | Some(Reg::ZERO) => WordJudgement::Transparent,
        Some(rd) if !live.live_out_has(g, rd) => WordJudgement::Transparent,
        Some(rd) => WordJudgement::Clobber(format!(
            "guard-window instruction overwrites live register {rd} \
             (not provably transparent)"
        )),
    }
}

/// Abstractly evaluates whether a conditional branch is taken: `Some`
/// when the memory-sensitive domain decides the condition, `None`
/// otherwise. Register contents are compared through their scalar
/// ([`crate::memdom::MemVal::as_abs`]) views, which carry values reloaded
/// from tracked stack slots — a spill/reload pair no longer loses the
/// constant the scalar-only domain used to decide with.
fn branch_taken(inst: Inst, state: Option<&memdom::MemState>) -> Option<bool> {
    use Inst::*;
    // Same-register compares correlate: the cartesian product would
    // fabricate infeasible pairs, so decide them structurally.
    match inst {
        Beq { rs, rt, .. } if rs == rt => return Some(true),
        Bne { rs, rt, .. } if rs == rt => return Some(false),
        _ => {}
    }
    let state = state?;
    let r = |reg: Reg| state.regs[reg.index() as usize].as_abs();
    let cond = match inst {
        Beq { rs, rt, .. } => r(rs).map2(&r(rt), |a, b| u32::from(a == b)),
        Bne { rs, rt, .. } => r(rs).map2(&r(rt), |a, b| u32::from(a != b)),
        Blez { rs, .. } => r(rs).map(|a| u32::from(a as i32 <= 0)),
        Bgtz { rs, .. } => r(rs).map(|a| u32::from(a as i32 > 0)),
        Bltz { rs, .. } => r(rs).map(|a| u32::from((a as i32) < 0)),
        Bgez { rs, .. } => r(rs).map(|a| u32::from(a as i32 >= 0)),
        _ => AbsVal::Top,
    };
    match cond {
        AbsVal::Const(1) => Some(true),
        AbsVal::Const(0) => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_secmon::guard::{encode_guard_inst, signature_symbols, WindowHasher};
    use flexprot_secmon::{GuardSite, SIG_SYMBOLS};

    /// Splices one signed guard run into `base` at word `site_index`
    /// (hashing every word before the site plus `tail` words after the
    /// run), like the real emitter would.
    fn splice_guard(base: &Image, site_index: usize, tail: u32) -> (Image, SecMonConfig) {
        let key = 0x1EE7;
        let mut prot = base.clone();
        for _ in 0..SIG_SYMBOLS as usize {
            prot.text.insert(site_index, 0);
        }
        let site_addr = prot.addr_of_index(site_index);
        let mut h = WindowHasher::new(key);
        for i in 0..site_index {
            h.absorb(prot.addr_of_index(i), prot.text[i]);
        }
        for t in 0..tail as usize {
            let idx = site_index + SIG_SYMBOLS as usize + t;
            h.absorb(prot.addr_of_index(idx), prot.text[idx]);
        }
        let sig = h.digest();
        for (k, sym) in signature_symbols(sig).iter().enumerate() {
            prot.text[site_index + k] = encode_guard_inst(*sym, k as u8).encode();
        }
        let mut config = SecMonConfig::transparent();
        config.guard_key = key;
        config.window_starts.insert(prot.text_base);
        config.sites.insert(
            site_addr,
            GuardSite {
                symbols: SIG_SYMBOLS,
                tail,
            },
        );
        (prot, config)
    }

    /// Hand-protects a tiny program: one guard run spliced between body
    /// and terminator, signed like the real emitter would.
    fn hand_protected() -> (Image, Image, SecMonConfig) {
        let base =
            flexprot_asm::assemble_or_panic("main: li $t0, 5\n li $t1, 6\n li $v0, 10\n syscall\n");
        let (prot, config) = splice_guard(&base, 2, 2);
        (base, prot, config)
    }

    #[test]
    fn hand_protected_image_is_proven() {
        let (base, prot, config) = hand_protected();
        let report = validate(&base, &prot, &config);
        assert_eq!(
            report.verdict,
            EquivVerdict::Proven,
            "{:?}",
            report.findings
        );
        assert!(report.is_clean());
        assert_eq!(report.stats.guard_words, SIG_SYMBOLS as usize);
        assert_eq!(report.stats.aligned_words, base.text.len());
        assert_eq!(report.stats.windows_proven, 1);
        assert!(report.refusals.is_empty());
    }

    #[test]
    fn clobbering_guard_word_is_inequivalent_with_witness() {
        let (base, mut prot, config) = hand_protected();
        // Replace guard word 1 with `addu $a0, $t0, $t1`: $a0 is live at
        // the exit syscall, so the window provably clobbers live state.
        prot.text[3] = Inst::Addu {
            rd: Reg::A0,
            rs: Reg::T0,
            rt: Reg::T1,
        }
        .encode();
        let report = validate(&base, &prot, &config);
        let witness = prot.addr_of_index(3);
        assert_eq!(
            report.verdict,
            EquivVerdict::Inequivalent {
                witness_addr: witness
            },
            "{:?}",
            report.findings
        );
        assert_eq!(report.count_id("FP801"), 1);
        assert_eq!(report.stats.windows_inequivalent, 1);
    }

    #[test]
    fn dead_register_write_in_guard_window_stays_transparent() {
        let (base, mut prot, config) = hand_protected();
        // `addu $t5, $t0, $t1`: $t5 is never read afterwards, so the
        // write is provably invisible.
        prot.text[3] = Inst::Addu {
            rd: Reg::T5,
            rs: Reg::T0,
            rt: Reg::T1,
        }
        .encode();
        let report = validate(&base, &prot, &config);
        assert_eq!(
            report.verdict,
            EquivVerdict::Proven,
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn store_in_guard_window_is_a_logged_refusal() {
        let (base, mut prot, config) = hand_protected();
        prot.text[3] = Inst::Sw {
            rt: Reg::T0,
            off: 0,
            base: Reg::SP,
        }
        .encode();
        let report = validate(&base, &prot, &config);
        // $sp-relative: the points-to partition proves the store never
        // touches text, so the refusal carries the sharper data-write
        // reason rather than the may-alias one.
        assert_eq!(
            report.verdict,
            EquivVerdict::Refused {
                reason: RefusalReason::StoreWritesMemory
            },
            "{:?}",
            report.verdict
        );
        assert_eq!(
            report.refusals,
            vec![(prot.addr_of_index(3), RefusalReason::StoreWritesMemory)]
        );
        assert_eq!(report.count_id("FP804"), 1);
        assert!(report.is_clean(), "a refusal is a warning, not an error");
        let json = report.to_json();
        assert!(
            json.contains("\"code\":\"store_writes_memory\""),
            "typed code must survive into the JSON: {json}"
        );
    }

    #[test]
    fn store_rewriting_text_is_inequivalent_not_refused() {
        // `lui $t2, 0x40` pins $t2 at the text base, so the spliced
        // store provably rewrites fetched code — the memory-sensitive
        // judge upgrades what used to be a blanket refusal to a clobber.
        let base = flexprot_asm::assemble_or_panic(
            "main: lui $t2, 0x40\n li $t1, 6\n li $v0, 10\n syscall\n",
        );
        let (mut prot, config) = splice_guard(&base, 2, 2);
        prot.text[3] = Inst::Sw {
            rt: Reg::ZERO,
            off: 0,
            base: Reg::T2,
        }
        .encode();
        let report = validate(&base, &prot, &config);
        assert_eq!(report.count_id("FP801"), 1, "{:?}", report.findings);
        assert!(
            matches!(report.verdict, EquivVerdict::Inequivalent { .. }),
            "{:?}",
            report.verdict
        );
        assert!(report.refusals.is_empty());
    }

    #[test]
    fn branch_decided_through_a_tracked_stack_slot_is_proven() {
        // The scalar domain loses the reloaded constant ($t1 would be
        // Top after the `lw`); the memory domain carries 5 through the
        // tracked slot, decides `bne $t0, $t1` not-taken, and proves the
        // window instead of refusing it.
        let base = flexprot_asm::assemble_or_panic(
            "main: li $t0, 5\n sw $t0, -4($sp)\n lw $t1, -4($sp)\n li $v0, 10\n syscall\n",
        );
        let (mut prot, config) = splice_guard(&base, 3, 2);
        prot.text[4] = Inst::Bne {
            rs: Reg::T0,
            rt: Reg::T1,
            off: 1,
        }
        .encode();
        let report = validate(&base, &prot, &config);
        assert_eq!(
            report.verdict,
            EquivVerdict::Proven,
            "{:?}",
            report.findings
        );
        assert!(report.refusals.is_empty());
    }

    #[test]
    fn mutated_aligned_word_is_unaligned_block() {
        let (base, mut prot, config) = hand_protected();
        prot.text[0] ^= 1 << 16; // li $t0, 5 -> different immediate... rt field
        let report = validate(&base, &prot, &config);
        assert_eq!(report.count_id("FP802"), 1, "{:?}", report.findings);
        assert_eq!(
            report.verdict,
            EquivVerdict::Inequivalent {
                witness_addr: prot.text_base
            }
        );
    }

    #[test]
    fn branch_offsets_are_compared_by_target_not_bits() {
        // A backward branch over the guard run keeps its baseline offset
        // bits only if the emitter forgot to re-encode it — the validator
        // must flag the stale offset even though the words are identical.
        let base = flexprot_asm::assemble_or_panic(
            "main: li $t0, 2\nloop: addi $t0, $t0, -1\n bgtz $t0, loop\n li $v0, 10\n syscall\n",
        );
        let (_, prot, config) = {
            // Hand-splice a guard run between `addi` and `bgtz` WITHOUT
            // fixing the branch: its target now lands mid-run and maps
            // back to the wrong baseline word.
            let mut prot = base.clone();
            for _ in 0..SIG_SYMBOLS as usize {
                prot.text.insert(2, Inst::NOP.encode());
            }
            let site_addr = prot.addr_of_index(2);
            let mut config = SecMonConfig::transparent();
            config.sites.insert(
                site_addr,
                GuardSite {
                    symbols: SIG_SYMBOLS,
                    tail: 0,
                },
            );
            (base.clone(), prot, config)
        };
        let report = validate(&base, &prot, &config);
        assert!(
            report.count_id("FP802") > 0,
            "stale branch offset must be caught: {:?}",
            report.findings
        );
    }

    #[test]
    fn json_schema_keys_are_stable() {
        let (base, prot, config) = hand_protected();
        let json = validate(&base, &prot, &config).to_json();
        for key in [
            "\"schema\":\"flexprot-equiv-v1\"",
            "\"verdict\":\"proven\"",
            "\"code\":null",
            "\"stats\"",
            "\"guard_words\"",
            "\"windows\"",
            "\"refusals\"",
            "\"findings\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
