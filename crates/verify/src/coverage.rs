//! Forward guard-coverage analysis and the static tamper-surface map.
//!
//! For each guard site that passed structural verification, the rolling
//! MAC provably covers a contiguous word interval: the straight-line
//! window body, the guard symbols themselves (their register-operand
//! fields *are* the signature, so any edit breaks the comparison), and
//! the signed tail words after the symbols.  Because verified windows are
//! straight-line by construction, the forward "which windows cover this
//! word" analysis collapses to interval marking — the abstract state
//! (the set of open windows) changes only at window starts and check
//! sites and never merges across control-flow joins.  The genuinely
//! iterative analyses (liveness, reachability depth, dominators) live in
//! the sibling modules on top of [`crate::dataflow`].
//!
//! A word with no covering window and no cipher region over it is
//! **tamper surface**: an attacker can edit it without perturbing any
//! hardware-checked hash.  The [`SurfaceMap`] ranks those words by how
//! attractive they are — words on every terminating path first (block
//! post-dominates the entry), then by breadth-first depth from the entry.

use flexprot_isa::Image;
use flexprot_secmon::SecMonConfig;

use crate::cfg::Cfg;
use crate::dataflow::{self, Analysis, Direction};
use crate::domtree::{self, DomTree};
use crate::flow::Flow;

/// One guard site's hash window, resolved to word indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardWindow {
    /// Address of the first guard symbol word.
    pub site_addr: u32,
    /// Word index where the rolling hash starts absorbing.
    pub start: usize,
    /// Word index of the first guard symbol.
    pub site: usize,
    /// Number of guard symbol words.
    pub symbols: usize,
    /// Signed tail words hashed after the symbols (the block terminator).
    pub tail: usize,
    /// Whether the structural checks passed (guard shape, straight-line
    /// window, no mid-window entries) — the precondition for the checksum
    /// proof, independent of whether the signature actually matched.
    pub structural: bool,
    /// Whether every structural and cryptographic check passed; only
    /// sound windows contribute coverage.
    pub sound: bool,
}

impl GuardWindow {
    /// One past the last covered word index.
    pub fn end(&self) -> usize {
        self.site + self.symbols + self.tail
    }

    /// Whether the window's MAC covers word `index`.
    pub fn covers(&self, index: usize) -> bool {
        self.start <= index && index < self.end()
    }
}

/// Per-word coverage facts derived from the verified guard windows.
#[derive(Debug, Clone)]
pub struct Coverage {
    /// Every resolved window, sound or not, in site-address order.
    pub windows: Vec<GuardWindow>,
    /// Per word: indices into `windows` of the sound windows covering it.
    pub covered_by: Vec<Vec<u16>>,
    /// Per word: a sound guard check completes on every path from the
    /// entry to the word (block-level dominator approximation: either an
    /// earlier check in the same block, or a check in a strict dominator
    /// block).
    pub dominated: Vec<bool>,
}

/// Derives per-word coverage from `windows` over the given flow graph.
///
/// `doms` is the dominator tree of `cfg` when the entry block is known;
/// without it the domination facts degrade to same-block checks only.
pub fn analyze(
    flow: &Flow,
    cfg: &Cfg,
    doms: Option<&DomTree>,
    windows: Vec<GuardWindow>,
) -> Coverage {
    let len = flow.decoded.len();
    let mut covered_by: Vec<Vec<u16>> = vec![Vec::new(); len];
    for (k, w) in windows.iter().enumerate() {
        if !w.sound {
            continue;
        }
        for slot in &mut covered_by[w.start..w.end().min(len)] {
            slot.push(k as u16);
        }
    }

    // Earliest word index at which a sound check has completed, per block:
    // the monitor compares only after the last signed tail word streams by.
    let mut check_done: Vec<Option<usize>> = vec![None; cfg.blocks.len()];
    for w in &windows {
        if !w.sound || w.site >= len {
            continue;
        }
        let b = cfg.block_of[w.site];
        let done = w.end();
        if done <= cfg.blocks[b].end {
            check_done[b] = Some(check_done[b].map_or(done, |d| d.min(done)));
        }
    }
    // A block inherits "some dominator completed a check" along its idom
    // chain — the chain *is* the set of strict dominators.
    let mut ancestor_check = vec![false; cfg.blocks.len()];
    if let Some(doms) = doms {
        // Process in a dominator-respecting order by walking chains with
        // memoisation (the idom chain is acyclic).
        for b in 0..cfg.blocks.len() {
            let mut chain = Vec::new();
            let mut x = b;
            let inherited = loop {
                if ancestor_check[x] {
                    break true;
                }
                match doms.idom[x] {
                    Some(p) => {
                        chain.push(x);
                        if check_done[p].is_some() {
                            break true;
                        }
                        x = p;
                    }
                    None => break false,
                }
            };
            if inherited {
                for c in chain {
                    ancestor_check[c] = true;
                }
            }
        }
    }
    let mut dominated = vec![false; len];
    for (i, d) in dominated.iter_mut().enumerate() {
        let b = cfg.block_of.get(i).copied().unwrap_or(0);
        *d = ancestor_check.get(b).copied().unwrap_or(false)
            || check_done
                .get(b)
                .copied()
                .flatten()
                .is_some_and(|done| done <= i);
    }

    Coverage {
        windows,
        covered_by,
        dominated,
    }
}

/// One uncovered word in the ranked tamper surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurfaceEntry {
    /// Word address.
    pub addr: u32,
    /// Reachable from the entry or a symbol.
    pub reachable: bool,
    /// Minimum number of flow edges from the entry (`None` = no static
    /// path).
    pub depth: Option<u32>,
    /// The word's block post-dominates the entry block: every terminating
    /// run executes it.
    pub must_execute: bool,
}

/// The machine-readable static tamper-surface map (`flexprot-surface-v1`).
#[derive(Debug, Clone)]
pub struct SurfaceMap {
    /// Total text words analysed.
    pub text_words: usize,
    /// Number of sound guard windows.
    pub sound_windows: usize,
    /// Per word: covered by at least one sound window.
    pub covered: Vec<bool>,
    /// Per word: inside a keyed cipher region.
    pub encrypted: Vec<bool>,
    /// Per word: reachable from the entry or a symbol.
    pub reachable: Vec<bool>,
    /// Uncovered, unencrypted words, most attractive targets first.
    pub entries: Vec<SurfaceEntry>,
}

impl SurfaceMap {
    /// Number of tamper-surface words.
    pub fn surface_words(&self) -> usize {
        self.entries.len()
    }

    /// Number of words covered by a sound window.
    pub fn covered_words(&self) -> usize {
        self.covered.iter().filter(|&&c| c).count()
    }

    /// Number of words inside cipher regions.
    pub fn encrypted_words(&self) -> usize {
        self.encrypted.iter().filter(|&&e| e).count()
    }

    /// Whether every reachable word is covered or encrypted.
    pub fn full_reachable_coverage(&self) -> bool {
        self.entries.iter().all(|e| !e.reachable)
    }

    /// Renders the map as a stable JSON document (`flexprot-surface-v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"schema\":\"flexprot-surface-v1\"");
        out.push_str(&format!(",\"text_words\":{}", self.text_words));
        out.push_str(&format!(",\"sound_windows\":{}", self.sound_windows));
        out.push_str(&format!(",\"covered_words\":{}", self.covered_words()));
        out.push_str(&format!(",\"encrypted_words\":{}", self.encrypted_words()));
        out.push_str(&format!(",\"surface_words\":{}", self.surface_words()));
        out.push_str(",\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let depth = e.depth.map_or_else(|| "null".to_owned(), |d| d.to_string());
            out.push_str(&format!(
                "{{\"addr\":\"{:#010x}\",\"reachable\":{},\"depth\":{},\"must_execute\":{}}}",
                e.addr, e.reachable, depth, e.must_execute
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Forward minimum-depth analysis: lattice `Option<u32>` ordered with
/// `None` (no path) below every `Some`, and `Some(a) ⊑ Some(b)` iff
/// `b ≤ a` — joins take the minimum, so facts only ever improve and
/// chains are bounded by the shortest-path depth.
struct MinDepth;

impl Analysis for MinDepth {
    type Fact = Option<u32>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> Option<u32> {
        None
    }

    fn join(&self, into: &mut Option<u32>, from: &Option<u32>) -> bool {
        match (*into, *from) {
            (_, None) => false,
            (None, Some(f)) => {
                *into = Some(f);
                true
            }
            (Some(i), Some(f)) => {
                if f < i {
                    *into = Some(f);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn transfer(&self, _node: usize, input: &Option<u32>) -> Option<u32> {
        input.map(|d| d.saturating_add(1))
    }
}

/// Builds the ranked tamper-surface map for `image` under `config`.
pub fn surface_map(
    image: &Image,
    config: &SecMonConfig,
    flow: &Flow,
    cfg: &Cfg,
    coverage: &Coverage,
) -> SurfaceMap {
    let len = flow.decoded.len();
    let covered: Vec<bool> = (0..len)
        .map(|i| !coverage.covered_by[i].is_empty())
        .collect();
    let encrypted: Vec<bool> = (0..len)
        .map(|i| {
            let addr = image.text_base.wrapping_add(4 * i as u32);
            config.regions.lookup(addr).is_some()
        })
        .collect();

    // Minimum flow depth from the entry and every symbol landing pad.
    let succs: Vec<Vec<usize>> = flow
        .succs
        .iter()
        .map(|es| es.iter().map(|e| e.to).collect())
        .collect();
    let index_of = |addr: u32| -> Option<usize> {
        if addr < image.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - image.text_base) / 4) as usize;
        (i < len).then_some(i)
    };
    let mut seeds: Vec<(usize, Option<u32>)> = Vec::new();
    if let Some(e) = index_of(image.entry) {
        seeds.push((e, Some(0)));
    }
    for &addr in image.symbols.values() {
        if let Some(i) = index_of(addr) {
            seeds.push((i, Some(0)));
        }
    }
    let depth = dataflow::solve(&MinDepth, &succs, &seeds).input;

    // Must-execute blocks: post-dominate the entry block.
    let must_execute_block: Vec<bool> = match cfg.entry {
        Some(entry_block) if !cfg.blocks.is_empty() => {
            let (pdt, _) = domtree::post_dominators(&cfg.succs);
            (0..cfg.blocks.len())
                .map(|b| pdt.dominates(b, entry_block))
                .collect()
        }
        _ => vec![false; cfg.blocks.len()],
    };

    let mut entries: Vec<SurfaceEntry> = (0..len)
        .filter(|&i| !covered[i] && !encrypted[i])
        .map(|i| SurfaceEntry {
            addr: image.text_base.wrapping_add(4 * i as u32),
            reachable: flow.reachable[i],
            depth: depth[i],
            must_execute: cfg.block_of.get(i).is_some_and(|&b| must_execute_block[b]),
        })
        .collect();
    entries.sort_by_key(|e| {
        (
            !e.must_execute,
            !e.reachable,
            e.depth.unwrap_or(u32::MAX),
            e.addr,
        )
    });

    SurfaceMap {
        text_words: len,
        sound_windows: coverage.windows.iter().filter(|w| w.sound).count(),
        covered,
        encrypted,
        reachable: flow.reachable.clone(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: usize, site: usize, symbols: usize, tail: usize, sound: bool) -> GuardWindow {
        GuardWindow {
            site_addr: 0x0040_0000 + 4 * site as u32,
            start,
            site,
            symbols,
            tail,
            structural: sound,
            sound,
        }
    }

    #[test]
    fn window_interval_arithmetic() {
        let w = window(2, 5, 2, 1, true);
        assert_eq!(w.end(), 8);
        assert!(w.covers(2) && w.covers(7));
        assert!(!w.covers(1) && !w.covers(8));
    }

    #[test]
    fn only_sound_windows_contribute_coverage() {
        let image = flexprot_asm::assemble_or_panic(
            "main: li $t0, 1\n li $t1, 2\n li $t2, 3\n li $v0, 10\n syscall\n",
        );
        let flow = Flow::recover(&image, &image.text.clone());
        let cfg = Cfg::build(&image, &flow);
        let cov = analyze(
            &flow,
            &cfg,
            None,
            vec![window(0, 2, 1, 0, true), window(3, 4, 1, 0, false)],
        );
        assert!(!cov.covered_by[0].is_empty());
        assert!(!cov.covered_by[2].is_empty(), "symbols self-cover");
        assert!(
            cov.covered_by[3].is_empty(),
            "unsound window covers nothing"
        );
        assert!(cov.covered_by[4].is_empty());
    }

    #[test]
    fn words_after_a_completed_check_are_dominated() {
        let image = flexprot_asm::assemble_or_panic(
            "main: li $t0, 1\n li $t1, 2\n li $t2, 3\n li $v0, 10\n syscall\n",
        );
        let flow = Flow::recover(&image, &image.text.clone());
        let cfg = Cfg::build(&image, &flow);
        let doms = cfg.entry.map(|e| crate::domtree::dominators(e, &cfg.succs));
        let cov = analyze(&flow, &cfg, doms.as_ref(), vec![window(0, 1, 1, 0, true)]);
        assert!(!cov.dominated[0], "before the check");
        assert!(!cov.dominated[1], "the check has not completed yet");
        assert!(cov.dominated[2] && cov.dominated[4], "after the check");
    }
}
