//! `flexprot-verify` — independent static verification of protected images.
//!
//! The protection toolchain (`flexprot-core`) *constructs* guarded,
//! encrypted images; this crate *proves* them, by re-deriving every
//! protection invariant from nothing but the shipped image and the
//! monitor configuration that will be provisioned into the hardware. The
//! two implementations share the ISA definition and the hardware contract
//! (the window hash, the guard encoding, the keystream — all in
//! `flexprot-secmon`) but none of the rewriting machinery: control-flow
//! recovery, the spacing dataflow and every structural check here are
//! written from the raw bits up, so a bug on either side of the N-version
//! pair surfaces as a finding instead of cancelling out.
//!
//! [`verify`] runs six analyses (see [`checks`](crate::checks) — flow,
//! guards, spacing, relocations, regions, coverage) and returns a
//! [`Report`] of [`Finding`]s with stable lint IDs (`fplint --lints`
//! enumerates them). An image is *clean* when no finding has
//! [`Severity::Error`]; policies ([`LintPolicy`]) can promote or demote
//! individual lints.
//!
//! The coverage analyses run on a worklist dataflow framework
//! ([`dataflow`]) instantiated for backward register liveness
//! ([`liveness`]), minimum reachability depth, and basic-block dominators
//! ([`domtree`] over [`cfg`]). On top of them [`analyze`] also produces a
//! [`SurfaceMap`] — the ranked list of text words no guard window or
//! cipher region covers, i.e. the static tamper surface.
//!
//! ```
//! use flexprot_verify::{verify, Severity};
//! # use flexprot_secmon::SecMonConfig;
//! let image = flexprot_asm::assemble("main: li $v0, 10\n syscall\n")?;
//! let report = verify(&image, &SecMonConfig::transparent());
//! assert!(report.is_clean());
//! assert_eq!(report.count(Severity::Error), 0);
//! # Ok::<(), flexprot_asm::AsmError>(())
//! ```

pub mod absint;
pub mod alias;
pub mod cfg;
mod checks;
pub mod coverage;
pub mod dataflow;
pub mod diag;
pub mod domtree;
pub mod equiv;
pub mod flow;
pub mod guardnet;
pub mod liveness;
pub mod memdom;
pub mod taint;

pub use absint::{AbsHasher, AbsVal, GuardProof, UnprovenReason, Verdict};
pub use alias::StoreClass;
pub use cfg::{BasicBlock, Cfg};
pub use coverage::{Coverage, GuardWindow, SurfaceEntry, SurfaceMap};
pub use diag::{lint_by_id, Finding, Lint, LintPolicy, Report, Severity, VerifyStats, LINTS};
pub use domtree::DomTree;
pub use equiv::{EquivReport, EquivStats, EquivVerdict, RefusalReason, WindowEquiv};
pub use flow::{Edge, EdgeKind, Flow};
pub use guardnet::{GuardNet, NetNode, WeakLink};
pub use liveness::Liveness;
pub use taint::{TaintState, TaintStats};

use flexprot_isa::Image;
use flexprot_secmon::SecMonConfig;

/// Collects findings, applying the policy's severity overrides at emission.
pub(crate) struct Sink<'p> {
    policy: &'p LintPolicy,
    findings: Vec<Finding>,
}

impl Sink<'_> {
    fn emit(&mut self, lint: &'static Lint, addr: Option<u32>, message: String) {
        self.emit_severity(lint, lint.default_severity, addr, message);
    }

    fn emit_severity(
        &mut self,
        lint: &'static Lint,
        chosen: Severity,
        addr: Option<u32>,
        message: String,
    ) {
        self.findings.push(Finding {
            id: lint.id,
            name: lint.name,
            severity: self.policy.effective(lint, chosen),
            addr,
            message,
        });
    }
}

/// The text segment after undoing the configured encryption regions —
/// the plaintext the core will execute.
pub fn decrypt_text(image: &Image, config: &SecMonConfig) -> Vec<u32> {
    image
        .text
        .iter()
        .enumerate()
        .map(|(i, &word)| config.regions.apply(image.addr_of_index(i), word))
        .collect()
}

/// Everything one analysis pass produces: the lint report, the static
/// tamper-surface map, the per-word coverage facts, the guard network
/// and the checksum proofs — all derived from the same flow recovery.
#[derive(Debug, Clone)]
pub struct Verification {
    /// Findings and statistics.
    pub report: Report,
    /// Ranked uncovered words (`flexprot-surface-v1`).
    pub surface: SurfaceMap,
    /// Per-word guard-coverage facts (window list included).
    pub coverage: Coverage,
    /// The who-checks-whom guard network (`flexprot-guardnet-v1`).
    pub guardnet: GuardNet,
    /// One abstract checksum proof per guard window.
    pub proofs: Vec<GuardProof>,
}

impl Verification {
    /// Renders the guard network and proofs as `flexprot-guardnet-v1`.
    pub fn guardnet_json(&self) -> String {
        guardnet::to_json(&self.guardnet, &self.proofs)
    }
}

/// Verifies `image` against `config` under the default lint policy.
pub fn verify(image: &Image, config: &SecMonConfig) -> Report {
    verify_with_policy(image, config, &LintPolicy::default())
}

/// Verifies `image` against `config`, applying `policy`'s severity
/// overrides to every finding.
pub fn verify_with_policy(image: &Image, config: &SecMonConfig, policy: &LintPolicy) -> Report {
    analyze(image, config, policy).report
}

/// The static tamper-surface map of `image` under `config`.
pub fn surface(image: &Image, config: &SecMonConfig) -> SurfaceMap {
    analyze(image, config, &LintPolicy::default()).surface
}

/// Runs every analysis once, returning both the report and the surface
/// map ([`verify`]/[`surface`] are thin projections of this).
pub fn analyze(image: &Image, config: &SecMonConfig, policy: &LintPolicy) -> Verification {
    analyze_with_options(image, config, policy, false)
}

/// [`analyze`] plus, when `taint` is set, the key-flow analysis
/// ([`taint::check_taint`]): FP9xx findings land in the report and the
/// run counters in [`VerifyStats::taint`].
pub fn analyze_with_options(
    image: &Image,
    config: &SecMonConfig,
    policy: &LintPolicy,
    taint: bool,
) -> Verification {
    let text = decrypt_text(image, config);
    let flow = Flow::recover(image, &text);
    let ctx = checks::Ctx {
        image,
        config,
        text,
        flow,
    };
    let mut sink = Sink {
        policy,
        findings: Vec::new(),
    };
    checks::check_flow(&ctx, &mut sink);
    let (sites_checked, windows) = checks::check_guards(&ctx, &mut sink);
    let max_spacing = checks::check_spacing(&ctx, &mut sink);
    let relocs_checked = checks::check_relocs(&ctx, &mut sink);
    checks::check_regions(&ctx, &mut sink);

    let cfg = Cfg::build(image, &ctx.flow);
    let doms = cfg
        .entry
        .map(|entry| domtree::dominators(entry, &cfg.succs));
    let live = liveness::analyze(&ctx.flow);
    let cov = coverage::analyze(&ctx.flow, &cfg, doms.as_ref(), windows);
    checks::check_coverage(&ctx, &cov, &live, &mut sink);
    let surface = coverage::surface_map(image, config, &ctx.flow, &cfg, &cov);

    // Abstract interpretation: the memory-sensitive value-set analysis
    // (pointer provenance + tracked stack frame) feeds the per-guard
    // checksum proofs; the window list feeds the guard network.
    let mem = memdom::analyze_memory(image, &ctx.flow);
    let proofs = absint::prove_guards(image, config, &ctx.text, &ctx.flow, &mem, &cov.windows);
    let net = guardnet::build(&cov.windows);
    checks::check_network(&net, &proofs, &mut sink);
    let taint_stats = taint.then(|| taint::check_taint(image, config, &ctx.flow, &mem, &mut sink));

    let report = Report {
        stats: VerifyStats {
            text_words: ctx.text.len(),
            reachable_words: ctx.flow.reachable_count(),
            sites_checked,
            relocs_checked,
            max_spacing,
            sound_windows: surface.sound_windows,
            covered_words: surface.covered_words(),
            surface_words: surface.surface_words(),
            guard_edges: net.edges,
            proven_constants: proofs
                .iter()
                .filter(|p| matches!(p.verdict, absint::Verdict::Proven { .. }))
                .count(),
            taint: taint_stats,
        },
        findings: sink.findings,
    };
    Verification {
        report,
        surface,
        coverage: cov,
        guardnet: net,
        proofs,
    }
}
