//! A generic worklist solver for monotone dataflow problems.
//!
//! Every fixpoint analysis in this crate — backward register liveness
//! ([`crate::liveness`]), the forward minimum-depth ranking used by the
//! tamper-surface map ([`crate::coverage`]) — is an instance of one
//! scheme: facts drawn from a join-semilattice of finite height, a
//! monotone transfer function per node, and chaotic iteration over a
//! worklist until nothing changes.  This module factors the scheme out so
//! each analysis states only its lattice and transfer function.
//!
//! # Termination
//!
//! [`solve`] terminates because a node is requeued only when its input
//! fact strictly grows ([`Analysis::join`] returned `true`), facts only
//! ever move up the lattice (joins accumulate; transfers are monotone),
//! and the lattice has finite height: register masks (`u32` powersets)
//! can grow at most 32 times per node, minimum-depth facts can improve at
//! most once per distinct depth value, and so on.  Each node is therefore
//! requeued finitely often and the worklist drains.

use std::collections::VecDeque;

/// Which way facts propagate through the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from a node to its successors.
    Forward,
    /// Facts flow from a node to its predecessors.
    Backward,
}

/// One monotone dataflow problem.
///
/// `Fact` is an element of a join-semilattice; [`Analysis::join`] must
/// compute the least upper bound and [`Analysis::transfer`] must be
/// monotone with respect to it, otherwise the solver may diverge.
pub trait Analysis {
    /// The lattice element attached to each node.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The least lattice element — the initial fact everywhere.
    fn bottom(&self) -> Self::Fact;

    /// Joins `from` into `into`, returning whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// The node's transfer function: maps the fact entering the node (in
    /// propagation order) to the fact leaving it.
    fn transfer(&self, node: usize, input: &Self::Fact) -> Self::Fact;
}

/// The fixpoint: per node, the fact entering it and the fact leaving it,
/// both in *propagation* order.  For a backward analysis `input` is what
/// flows in from the successors (e.g. live-out) and `output` is what the
/// transfer produces (live-in).
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Joined incoming fact per node.
    pub input: Vec<F>,
    /// `transfer(node, input[node])` per node, at the fixpoint.
    pub output: Vec<F>,
}

/// Predecessor lists of `succs`.
pub fn invert(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); succs.len()];
    for (i, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(i);
        }
    }
    preds
}

/// Runs `analysis` to fixpoint over the graph given by `succs`.
///
/// `seeds` injects extra facts at nodes before iteration — entry facts
/// for a forward analysis, exit facts for a backward one.  Nodes touched
/// by no seed start at bottom.
pub fn solve<A: Analysis>(
    analysis: &A,
    succs: &[Vec<usize>],
    seeds: &[(usize, A::Fact)],
) -> Solution<A::Fact> {
    let n = succs.len();
    // Propagation edges: the output of node `i` joins into the input of
    // every node in `edges[i]`.
    let edges: Vec<Vec<usize>> = match analysis.direction() {
        Direction::Forward => succs.to_vec(),
        Direction::Backward => invert(succs),
    };
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.bottom()).collect();
    for (node, fact) in seeds {
        analysis.join(&mut input[*node], fact);
    }
    let mut output: Vec<A::Fact> = (0..n).map(|i| analysis.transfer(i, &input[i])).collect();
    // Chaotic iteration.  Reverse order converges faster for backward
    // problems on mostly-sequential code, forward order for forward ones.
    let mut work: VecDeque<usize> = match analysis.direction() {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    let mut queued = vec![true; n];
    while let Some(i) = work.pop_front() {
        queued[i] = false;
        output[i] = analysis.transfer(i, &input[i]);
        for &j in &edges[i] {
            if analysis.join(&mut input[j], &output[i]) && !queued[j] {
                queued[j] = true;
                work.push_back(j);
            }
        }
    }
    Solution { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forward constant propagation of "is this node reachable" — the
    /// simplest boolean lattice — over a diamond with a loop.
    struct Reach;
    impl Analysis for Reach {
        type Fact = bool;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn bottom(&self) -> bool {
            false
        }
        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let changed = *from && !*into;
            *into |= *from;
            changed
        }
        fn transfer(&self, _node: usize, input: &bool) -> bool {
            *input
        }
    }

    #[test]
    fn reachability_fixpoint_on_looping_diamond() {
        // 0 -> {1, 2}; 1 -> 3; 2 -> 3; 3 -> 1 (loop); 4 isolated.
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![1], vec![]];
        let sol = solve(&Reach, &succs, &[(0, true)]);
        assert_eq!(sol.input, vec![true, true, true, true, false]);
    }

    #[test]
    fn invert_reverses_every_edge() {
        let succs = vec![vec![1, 2], vec![2], vec![]];
        let preds = invert(&succs);
        assert_eq!(preds, vec![vec![], vec![0], vec![0, 1]]);
    }
}
