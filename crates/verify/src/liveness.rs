//! Backward register-liveness analysis over the recovered flow graph.
//!
//! Lattice: the powerset of the 32 architectural registers as a `u32`
//! bitmask ordered by inclusion (join = union, height 32).  Transfer:
//! `live_in = uses ∪ (live_out ∖ defs)`.  The boundary fact at nodes with
//! no static successors (returns, computed jumps, undecodable words) is
//! the empty set.
//!
//! Call continuations are ordinary edges here, so liveness flows from the
//! continuation back into the call site — the standard intraprocedural
//! approximation.  Callee effects are not modelled, which over-
//! approximates liveness across calls (a register the callee always
//! rewrites is still reported live) and is therefore conservative for the
//! FP601 clobber lint.  Writes to `$zero` are architecturally inert but
//! tracked like any other register so the analysis matches a per-register
//! simulation bit for bit; consumers filter `$zero` out.

use flexprot_isa::{Inst, Reg};

use crate::dataflow::{self, Analysis, Direction};
use crate::flow::Flow;

/// Per-word live-register masks (bit `k` = the register with index `k`).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live immediately before each word executes.
    pub live_in: Vec<u32>,
    /// Registers live immediately after each word executes.
    pub live_out: Vec<u32>,
}

impl Liveness {
    /// Whether `reg` is live immediately after word `index` executes.
    pub fn live_out_has(&self, index: usize, reg: Reg) -> bool {
        self.live_out[index] & (1u32 << reg.index()) != 0
    }
}

/// Mask of registers `inst` reads (`None` decodes read nothing).
pub fn uses_mask(inst: Option<Inst>) -> u32 {
    let Some(inst) = inst else { return 0 };
    inst.uses()
        .into_iter()
        .flatten()
        .fold(0u32, |m, r| m | 1u32 << r.index())
}

/// Mask of registers `inst` writes (`None` decodes write nothing).
pub fn def_mask(inst: Option<Inst>) -> u32 {
    inst.and_then(|i| i.def()).map_or(0, |r| 1u32 << r.index())
}

struct LiveAnalysis<'f> {
    flow: &'f Flow,
}

impl Analysis for LiveAnalysis<'_> {
    type Fact = u32;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> u32 {
        0
    }

    fn join(&self, into: &mut u32, from: &u32) -> bool {
        let joined = *into | *from;
        let changed = joined != *into;
        *into = joined;
        changed
    }

    fn transfer(&self, node: usize, live_out: &u32) -> u32 {
        let inst = self.flow.decoded[node];
        uses_mask(inst) | (live_out & !def_mask(inst))
    }
}

/// Runs the analysis to fixpoint over `flow`.
pub fn analyze(flow: &Flow) -> Liveness {
    let succs: Vec<Vec<usize>> = flow
        .succs
        .iter()
        .map(|es| es.iter().map(|e| e.to).collect())
        .collect();
    let solution = dataflow::solve(&LiveAnalysis { flow }, &succs, &[]);
    Liveness {
        live_out: solution.input,
        live_in: solution.output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn liveness_of(src: &str) -> (Flow, Liveness) {
        let image = flexprot_asm::assemble_or_panic(src);
        let flow = Flow::recover(&image, &image.text.clone());
        let live = analyze(&flow);
        (flow, live)
    }

    #[test]
    fn use_keeps_register_live_back_to_its_def() {
        let (_, live) = liveness_of(
            r#"
main:   li   $t0, 7
        li   $t1, 1
        add  $t2, $t0, $t1
        syscall
"#,
        );
        let t0 = 1u32 << Reg::T0.index();
        assert_ne!(live.live_out[0] & t0, 0, "$t0 live across the second li");
        assert_ne!(live.live_in[2] & t0, 0);
        assert_eq!(live.live_out[2] & t0, 0, "dead after its last use");
    }

    #[test]
    fn redefinition_kills_liveness() {
        let (_, live) = liveness_of(
            r#"
main:   li   $t0, 1
        li   $t0, 2
        add  $t1, $t0, $t0
        syscall
"#,
        );
        let t0 = 1u32 << Reg::T0.index();
        assert_eq!(
            live.live_out[0] & t0,
            0,
            "first def is dead: the second li redefines $t0 without reading it"
        );
    }

    #[test]
    fn branch_joins_liveness_from_both_arms() {
        let (_, live) = liveness_of(
            r#"
main:   beq  $a0, $zero, other
        add  $v0, $t0, $zero
        syscall
other:  add  $v0, $t1, $zero
        syscall
"#,
        );
        let t0 = 1u32 << Reg::T0.index();
        let t1 = 1u32 << Reg::T1.index();
        assert_ne!(live.live_in[0] & t0, 0);
        assert_ne!(live.live_in[0] & t1, 0);
    }

    #[test]
    fn loop_liveness_reaches_fixpoint() {
        let (_, live) = liveness_of(
            r#"
main:   li   $t0, 10
loop:   addi $t0, $t0, -1
        bne  $t0, $zero, loop
        syscall
"#,
        );
        let t0 = 1u32 << Reg::T0.index();
        // Around the back edge $t0 stays live.
        assert_ne!(live.live_out[1] & t0, 0);
        assert_ne!(live.live_out[2] & t0, 0);
    }
}
