//! Key-flow taint analysis (FP9xx): forward information flow from cipher
//! key material to observable sinks.
//!
//! Under the fetch-path threat model the only key-derived data a program
//! can reach is its own ciphertext: every word inside a configured
//! [`flexprot_secmon::EncRegion`] is `plaintext XOR keystream(key)`, so a
//! *data* load from an encrypted region observes a keystream-dependent
//! value. The hardware decrypts only the fetch path — a program that
//! reads, transforms and re-emits its own ciphertext is exfiltrating key
//! material, exactly the leak class the protection exists to prevent.
//!
//! The analysis runs forward on the same worklist solver as
//! [`crate::memdom`], consuming the memory-sensitive points-to facts to
//! resolve addresses:
//!
//! * **Sources** — loads whose target *must*-aliases an encrypted region
//!   (every concretisation reads ciphertext). A load that only *may*
//!   alias a region is not a source — that would taint half the program
//!   off a loop-widened pointer — but is surfaced as `FP904` so the
//!   approximation is never silent.
//! * **Propagation** — ALU results are tainted when any operand is;
//!   tracked stack slots ([`crate::memdom::MemState::slots`]) carry taint
//!   through spill/reload pairs; a tainted store at an unresolved
//!   stack address poisons the whole frame (`stack_wild`). The stack
//!   region itself is private scratch under assumption A1, so stack
//!   traffic propagates rather than leaks.
//! * **Sinks** — a tainted value stored outside the stack region and
//!   outside every encrypted region is `FP901` (the leak); a tainted
//!   `$v0`/`$a0` at a `syscall` is `FP902` (the value escapes through
//!   the environment); a branch condition or load/store address built
//!   from tainted data is `FP903` (key-dependent control flow or access
//!   pattern — a side channel, not a direct leak).
//!
//! Calls clear taint on caller-saved registers (the callee is analysed at
//! its own root; return-value flow is not modelled), which under-taints
//! across calls — documented as a lint approximation, not a soundness
//! claim. The FP9xx lints are warnings-and-errors over an *intentional*
//! leak pattern: a clean protected program loads no ciphertext, has no
//! source and therefore no FP9xx finding, which is what lets
//! `ProtectionConfig::with_key_flow_check` gate every protect run.

use std::collections::BTreeSet;

use flexprot_isa::{Image, Inst, Reg};
use flexprot_secmon::SecMonConfig;

use crate::absint::AbsVal;
use crate::dataflow::{self, Analysis, Direction};
use crate::diag;
use crate::flow::Flow;
use crate::memdom::{Base, MemFact, MemState, MemVal};
use crate::Sink;

/// Cap on findings emitted per FP9xx lint before summarising.
const MAX_PER_LINT: usize = 8;

/// How a memory access relates to the union of encrypted regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionClass {
    /// No concretisation touches an encrypted region.
    Outside,
    /// Every concretisation reads/writes ciphertext; witness address.
    Inside(u32),
    /// Undecided.
    May,
}

/// Classifies an access of `size` bytes at `target` against every
/// configured encrypted region.
fn region_class(config: &SecMonConfig, target: &MemVal, size: u32) -> RegionClass {
    let regions = config.regions.regions();
    if regions.is_empty() {
        return RegionClass::Outside;
    }
    match target.base {
        // A1: regions live in the text segment, far below the stack.
        Base::Stack => RegionClass::Outside,
        Base::Abs => match target.off.values() {
            None => RegionClass::May,
            Some(vs) => {
                let hit = |a: u32| {
                    regions
                        .iter()
                        .any(|r| a.wrapping_add(size) > r.start && a < r.end)
                };
                let n = vs.iter().filter(|&&a| hit(a)).count();
                if n == 0 {
                    RegionClass::Outside
                } else if n == vs.len() {
                    RegionClass::Inside(*vs.iter().find(|&&a| hit(a)).unwrap())
                } else {
                    RegionClass::May
                }
            }
        },
    }
}

/// Taint facts at one program point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaintState {
    /// Bit `i` set when register `i` holds key-derived data.
    pub regs: u32,
    /// Tracked stack slots (seed-relative byte offsets) holding taint.
    pub slots: BTreeSet<i32>,
    /// A tainted value was stored at an unresolved stack address, so any
    /// stack load may observe it.
    pub stack_wild: bool,
}

impl TaintState {
    /// Whether `r` holds key-derived data.
    pub fn tainted(&self, r: Reg) -> bool {
        self.regs & (1 << r.index()) != 0
    }

    fn set(&mut self, r: Reg, tainted: bool) {
        if r == Reg::ZERO {
            return;
        }
        if tainted {
            self.regs |= 1 << r.index();
        } else {
            self.regs &= !(1 << r.index());
        }
    }
}

/// Per-node fact: `None` where no static path arrives.
pub type TaintFact = Option<TaintState>;

/// The decoded instruction's memory operand, if it is a load or store:
/// `(is_store, value/dest register, base register, offset, size)`.
fn mem_operand(inst: Inst) -> Option<(bool, Reg, Reg, i16, u32)> {
    use Inst::*;
    match inst {
        Lb { rt, off, base } | Lbu { rt, off, base } => Some((false, rt, base, off, 1)),
        Lh { rt, off, base } | Lhu { rt, off, base } => Some((false, rt, base, off, 2)),
        Lw { rt, off, base } => Some((false, rt, base, off, 4)),
        Sb { rt, off, base } => Some((true, rt, base, off, 1)),
        Sh { rt, off, base } => Some((true, rt, base, off, 2)),
        Sw { rt, off, base } => Some((true, rt, base, off, 4)),
        _ => None,
    }
}

/// Whether a load at `target` (under `taint`) observes key-derived data.
fn load_taint(config: &SecMonConfig, taint: &TaintState, target: &MemVal, size: u32) -> bool {
    if matches!(region_class(config, target, size), RegionClass::Inside(_)) {
        return true; // reading own ciphertext: the source
    }
    match (target.base, &target.off) {
        (Base::Stack, AbsVal::Const(o)) => taint.stack_wild || taint.slots.contains(&(*o as i32)),
        (Base::Stack, _) => taint.stack_wild || !taint.slots.is_empty(),
        // An unresolved scalar pointer may also read the poisoned frame.
        (Base::Abs, AbsVal::Top) => taint.stack_wild,
        (Base::Abs, _) => false,
    }
}

/// Applies a store's effect on the taint state (propagation only; leak
/// detection happens in the reporting pass).
fn store_taint(taint: &mut TaintState, target: &MemVal, size: u32, value_tainted: bool) {
    match (target.base, &target.off) {
        (Base::Stack, AbsVal::Const(o)) => {
            let k = *o as i32;
            if value_tainted {
                // Mark every word the store touches.
                let lo = k.div_euclid(4) * 4;
                let hi = (k + size as i32 - 1).div_euclid(4) * 4;
                let mut w = lo;
                while w <= hi {
                    taint.slots.insert(w);
                    w += 4;
                }
            } else if size == 4 && k % 4 == 0 {
                taint.slots.remove(&k); // strong update clears the slot
            }
        }
        (Base::Stack, _) => {
            if value_tainted {
                taint.stack_wild = true;
            }
        }
        (Base::Abs, _) => {
            if value_tainted {
                // The scalar pointer may land in the stack region too.
                taint.stack_wild = true;
            }
        }
    }
}

/// Registers a callee may clobber; taint on them is cleared at calls
/// (return-value flow is not modelled — a documented approximation).
fn caller_saved(reg: u8) -> bool {
    let r = Reg::from_bits(reg as u32);
    !(r == Reg::ZERO
        || r == Reg::SP
        || r == Reg::FP
        || r == Reg::GP
        || r == Reg::K0
        || r == Reg::K1
        || (Reg::S0.index()..=Reg::S7.index()).contains(&reg))
}

/// The forward key-flow analysis, one node per text word, reading the
/// memory-sensitive points-to facts for address resolution.
struct TaintAbs<'a> {
    flow: &'a Flow,
    config: &'a SecMonConfig,
    mem: &'a [MemFact],
}

impl TaintAbs<'_> {
    fn eval(&self, node: usize, inst: Inst, taint: &mut TaintState) {
        let mstate = self.mem.get(node).and_then(|f| f.as_ref());
        let target_of = |base: Reg, off: i16| -> MemVal {
            mstate.map_or_else(MemVal::top, |s| s.effective_addr(base, off))
        };
        if let Some((is_store, rt, base, off, size)) = mem_operand(inst) {
            let target = target_of(base, off);
            if is_store {
                let value_tainted = taint.tainted(rt);
                store_taint(taint, &target, size, value_tainted);
            } else {
                let t = load_taint(self.config, taint, &target, size);
                taint.set(rt, t);
            }
            return;
        }
        match inst {
            Inst::Jal { .. } | Inst::Jalr { .. } => {
                for r in 0..32u8 {
                    if caller_saved(r) {
                        taint.set(Reg::from_bits(r as u32), false);
                    }
                }
            }
            _ => {
                if let Some(rd) = inst.def() {
                    let t = inst.uses().iter().flatten().any(|&r| taint.tainted(r));
                    taint.set(rd, t);
                }
            }
        }
    }
}

impl Analysis for TaintAbs<'_> {
    type Fact = TaintFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> TaintFact {
        None
    }

    fn join(&self, into: &mut TaintFact, from: &TaintFact) -> bool {
        let Some(from) = from else { return false };
        match into {
            None => {
                *into = Some(from.clone());
                true
            }
            Some(into) => {
                let mut changed = false;
                let regs = into.regs | from.regs;
                if regs != into.regs {
                    into.regs = regs;
                    changed = true;
                }
                for &k in &from.slots {
                    changed |= into.slots.insert(k);
                }
                if from.stack_wild && !into.stack_wild {
                    into.stack_wild = true;
                    changed = true;
                }
                changed
            }
        }
    }

    fn transfer(&self, node: usize, input: &TaintFact) -> TaintFact {
        let taint = input.as_ref()?;
        let mut taint = taint.clone();
        if let Some(inst) = self.flow.decoded[node] {
            self.eval(node, inst, &mut taint);
        }
        Some(taint)
    }
}

/// Runs the key-flow analysis, returning the taint state *entering* each
/// text word (`None` where no static path arrives). Roots match
/// [`crate::memdom::analyze_memory`]: the entry point plus every text
/// symbol, all starting untainted.
pub fn analyze_taint(
    image: &Image,
    config: &SecMonConfig,
    flow: &Flow,
    mem: &[MemFact],
) -> Vec<TaintFact> {
    let succs: Vec<Vec<usize>> = flow
        .succs
        .iter()
        .map(|es| es.iter().map(|e| e.to).collect())
        .collect();
    let index_of = |addr: u32| -> Option<usize> {
        if addr < image.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - image.text_base) / 4) as usize;
        (i < flow.decoded.len()).then_some(i)
    };
    let mut seeds: Vec<(usize, TaintFact)> = Vec::new();
    let entry = index_of(image.entry);
    if let Some(e) = entry {
        seeds.push((e, Some(TaintState::default())));
    }
    for &addr in image.symbols.values() {
        if let Some(i) = index_of(addr) {
            if entry != Some(i) {
                seeds.push((i, Some(TaintState::default())));
            }
        }
    }
    let analysis = TaintAbs { flow, config, mem };
    dataflow::solve(&analysis, &succs, &seeds).input
}

/// Counters of one key-flow run (rendered into the lint JSON under
/// `"taint"` and into [`crate::VerifyStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaintStats {
    /// Loads proven to read ciphertext (the taint sources).
    pub sources: usize,
    /// Tainted values stored outside stack and encrypted regions (FP901).
    pub tainted_stores: usize,
    /// Syscalls with a tainted operand register (FP902).
    pub tainted_syscalls: usize,
    /// Key-dependent branches or access patterns (FP903).
    pub key_dependent: usize,
    /// Loads that may read ciphertext but could not be resolved (FP904).
    pub unresolved_reads: usize,
}

/// One lint's emission cap, summarised when exceeded.
struct Capped<'s, 'p> {
    sink: &'s mut Sink<'p>,
    lint: &'static diag::Lint,
    count: usize,
}

impl<'s, 'p> Capped<'s, 'p> {
    fn new(sink: &'s mut Sink<'p>, lint: &'static diag::Lint) -> Capped<'s, 'p> {
        Capped {
            sink,
            lint,
            count: 0,
        }
    }

    fn emit(&mut self, addr: u32, message: String) {
        self.count += 1;
        if self.count <= MAX_PER_LINT {
            self.sink.emit(self.lint, Some(addr), message);
        }
    }

    fn finish(self) -> usize {
        if self.count > MAX_PER_LINT {
            self.sink.emit(
                self.lint,
                None,
                format!("... and {} more", self.count - MAX_PER_LINT),
            );
        }
        self.count
    }
}

/// Runs the key-flow analysis and reports every sink hit through `sink`,
/// returning the run counters. `mem` must be the points-to facts of the
/// same `flow` (see [`crate::memdom::analyze_memory`]).
pub(crate) fn check_taint(
    image: &Image,
    config: &SecMonConfig,
    flow: &Flow,
    mem: &[MemFact],
    sink: &mut Sink<'_>,
) -> TaintStats {
    let taints = analyze_taint(image, config, flow, mem);
    let mut stats = TaintStats::default();

    // Findings grouped by lint ID — FP901 stores first.
    let mut stores = Capped::new(sink, &diag::TAINT_KEY_STORE);
    for (i, fact) in taints.iter().enumerate() {
        let (Some(taint), Some(inst)) = (fact.as_ref(), flow.decoded[i]) else {
            continue;
        };
        let Some((true, rt, base, off, size)) = mem_operand(inst) else {
            continue;
        };
        if !taint.tainted(rt) {
            continue;
        }
        let target = target_at(mem, i, base, off);
        // Stack traffic propagates (private scratch, A1); a write-back
        // into an encrypted region stays inside the protected envelope.
        if target.base == Base::Stack {
            continue;
        }
        if matches!(region_class(config, &target, size), RegionClass::Inside(_)) {
            continue;
        }
        let addr = image.addr_of_index(i);
        let witness = target
            .scalar()
            .and_then(|v| v.values())
            .and_then(|vs| vs.first().copied());
        let detail = match witness {
            Some(w) => {
                format!("key-derived value in {rt} is stored to observable memory at {w:#010x}")
            }
            None => format!(
                "key-derived value in {rt} is stored through an unresolved pointer \
                 to observable memory"
            ),
        };
        stores.emit(addr, detail);
        stats.tainted_stores += 1;
    }
    stores.finish();

    // FP902 syscall operands.
    let mut syscalls = Capped::new(sink, &diag::TAINT_KEY_SYSCALL);
    for (i, fact) in taints.iter().enumerate() {
        let (Some(taint), Some(Inst::Syscall)) = (fact.as_ref(), flow.decoded[i]) else {
            continue;
        };
        for r in [Reg::V0, Reg::A0] {
            if taint.tainted(r) {
                syscalls.emit(
                    image.addr_of_index(i),
                    format!("syscall operand {r} carries key-derived data"),
                );
                stats.tainted_syscalls += 1;
            }
        }
    }
    syscalls.finish();

    // FP903 key-dependent control flow / access patterns.
    let mut dependent = Capped::new(sink, &diag::TAINT_KEY_DEPENDENT);
    for (i, fact) in taints.iter().enumerate() {
        let (Some(taint), Some(inst)) = (fact.as_ref(), flow.decoded[i]) else {
            continue;
        };
        if inst.is_branch() {
            if inst.uses().iter().flatten().any(|&r| taint.tainted(r)) {
                dependent.emit(
                    image.addr_of_index(i),
                    "branch condition depends on key-derived data".to_owned(),
                );
                stats.key_dependent += 1;
            }
        } else if let Some((_, _, base, _, _)) = mem_operand(inst) {
            if taint.tainted(base) {
                dependent.emit(
                    image.addr_of_index(i),
                    format!("memory address in {base} depends on key-derived data"),
                );
                stats.key_dependent += 1;
            }
        }
    }
    dependent.finish();

    // FP904 unresolved ciphertext reads, plus the source counter.
    let mut unresolved = Capped::new(sink, &diag::TAINT_UNRESOLVED_READ);
    for (i, fact) in taints.iter().enumerate() {
        let (Some(_), Some(inst)) = (fact.as_ref(), flow.decoded[i]) else {
            continue;
        };
        let Some((false, _, base, off, size)) = mem_operand(inst) else {
            continue;
        };
        match region_class(config, &target_at(mem, i, base, off), size) {
            RegionClass::Inside(_) => stats.sources += 1,
            RegionClass::May => {
                unresolved.emit(
                    image.addr_of_index(i),
                    "load may read an encrypted region but its address is unresolved; \
                     taint tracking is approximate here"
                        .to_owned(),
                );
                stats.unresolved_reads += 1;
            }
            RegionClass::Outside => {}
        }
    }
    unresolved.finish();
    stats
}

/// The abstract target of the access at node `i`, `Top` when the memory
/// analysis has no state there.
fn target_at(mem: &[MemFact], i: usize, base: Reg, off: i16) -> MemVal {
    mem.get(i)
        .and_then(|f| f.as_ref())
        .map_or_else(MemVal::top, |s: &MemState| s.effective_addr(base, off))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintPolicy;
    use flexprot_secmon::EncRegion;

    fn run(src: &str, regions: Vec<EncRegion>) -> (crate::diag::Report, TaintStats) {
        let image = flexprot_asm::assemble_or_panic(src);
        let mut config = SecMonConfig::transparent();
        config.regions = flexprot_secmon::RegionTable::new(regions);
        // The fetch path decrypts, so flow is recovered on the plaintext
        // view; the data path reads the stored ciphertext.
        let text = crate::decrypt_text(&image, &config);
        let flow = Flow::recover(&image, &text);
        let mem = crate::memdom::analyze_memory(&image, &flow);
        let policy = LintPolicy::default();
        let mut sink = Sink {
            policy: &policy,
            findings: Vec::new(),
        };
        let stats = check_taint(&image, &config, &flow, &mem, &mut sink);
        let report = crate::diag::Report {
            findings: sink.findings,
            stats: crate::diag::VerifyStats::default(),
        };
        (report, stats)
    }

    #[test]
    fn clean_program_has_no_taint_findings() {
        let (report, stats) = run(
            "main: li $t0, 0x10010000\n lw $t1, 0($t0)\n sw $t1, 4($t0)\n \
             li $v0, 10\n syscall\n",
            vec![],
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(stats, TaintStats::default());
    }

    #[test]
    fn ciphertext_read_stored_to_data_is_fp901_with_witness() {
        // Encrypt the first two words of main, then read word 0 as data
        // and store it to the data segment: the canonical key leak.
        let (report, stats) = run(
            "secret: nop\n nop\nmain: lui $t0, 0x40\n lw $t1, 0($t0)\n \
             li $t2, 0x10010000\n sw $t1, 0($t2)\n li $v0, 10\n syscall\n",
            vec![EncRegion {
                start: 0x0040_0000,
                end: 0x0040_0008,
                key: 0x5EED,
            }],
        );
        assert_eq!(stats.sources, 1, "{:?}", report.findings);
        assert_eq!(stats.tainted_stores, 1, "{:?}", report.findings);
        let f = report.with_id("FP901").next().expect("FP901 emitted");
        assert_eq!(f.severity, crate::Severity::Error);
        assert!(
            f.message.contains("0x10010000"),
            "witness address in message: {}",
            f.message
        );
    }

    #[test]
    fn taint_survives_a_spill_reload_round_trip() {
        let (report, stats) = run(
            "secret: nop\n nop\nmain: lui $t0, 0x40\n lw $t1, 0($t0)\n \
             addi $sp, $sp, -16\n sw $t1, 8($sp)\n lw $t3, 8($sp)\n \
             li $t2, 0x10010000\n sw $t3, 0($t2)\n li $v0, 10\n syscall\n",
            vec![EncRegion {
                start: 0x0040_0000,
                end: 0x0040_0008,
                key: 0x5EED,
            }],
        );
        assert_eq!(stats.tainted_stores, 1, "{:?}", report.findings);
        assert_eq!(report.with_id("FP901").count(), 1);
    }

    #[test]
    fn tainted_syscall_operand_and_branch_are_flagged() {
        let (report, stats) = run(
            "secret: nop\n nop\nmain: lui $t0, 0x40\n lw $a0, 0($t0)\n \
             beq $a0, $zero, done\ndone: li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
            vec![EncRegion {
                start: 0x0040_0000,
                end: 0x0040_0008,
                key: 0x5EED,
            }],
        );
        assert!(stats.tainted_syscalls >= 1, "{:?}", report.findings);
        assert!(stats.key_dependent >= 1, "{:?}", report.findings);
        assert!(report.with_id("FP902").count() >= 1);
        assert!(report.with_id("FP903").count() >= 1);
    }

    #[test]
    fn may_alias_region_read_is_a_warning_not_a_source() {
        // $a1 is unknown at entry: the load *may* hit the region, which
        // must surface as FP904 — but not taint anything (no FP901).
        let (report, stats) = run(
            "secret: nop\n nop\nmain: lw $t1, 0($a1)\n li $t2, 0x10010000\n \
             sw $t1, 0($t2)\n li $v0, 10\n syscall\n",
            vec![EncRegion {
                start: 0x0040_0000,
                end: 0x0040_0008,
                key: 0x5EED,
            }],
        );
        assert_eq!(stats.sources, 0);
        assert_eq!(stats.tainted_stores, 0, "{:?}", report.findings);
        assert_eq!(stats.unresolved_reads, 1);
        assert_eq!(report.with_id("FP904").count(), 1);
        assert_eq!(report.with_id("FP901").count(), 0);
    }
}
