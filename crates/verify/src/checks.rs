//! The five verification analyses.
//!
//! Each check re-derives one protection invariant from the raw image bits
//! and the monitor configuration, independently of how the toolchain
//! established it:
//!
//! 1. **Flow** — entry point, strict decodability of reachable text, wild
//!    control targets, unreachable words (`FP0xx`, `FP501`).
//! 2. **Guards** — guard-word shape and the keyed window-hash recheck
//!    (`FP1xx`).
//! 3. **Spacing** — a saturating dataflow over the instruction graph
//!    bounding the longest guard-free executed path (`FP2xx`).
//! 4. **Relocations** — field/entry agreement and target sanity (`FP3xx`).
//! 5. **Regions** — encryption-region well-formedness and coverage
//!    (`FP4xx`).

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use flexprot_isa::{Image, Inst, RelocKind};
use flexprot_secmon::guard::{
    decode_guard_symbol, is_guard_form, signature_from_symbols, WindowHasher,
};
use flexprot_secmon::SecMonConfig;

use crate::coverage::GuardWindow;
use crate::diag::{self, Severity};
use crate::flow::{EdgeKind, Flow};
use crate::Sink;

/// Bulk lints (undecodable words, wild targets) report at most this many
/// individual findings before summarising the rest.
const MAX_PER_LINT: usize = 8;

/// Everything the checks share: the image, the provisioned configuration,
/// the decrypted text and the recovered flow graph.
pub(crate) struct Ctx<'a> {
    pub image: &'a Image,
    pub config: &'a SecMonConfig,
    /// Text after undoing the region table — what the core executes.
    pub text: Vec<u32>,
    pub flow: Flow,
}

impl Ctx<'_> {
    fn addr_of(&self, index: usize) -> u32 {
        self.image.text_base + 4 * index as u32
    }

    fn index_of(&self, addr: u32) -> Option<usize> {
        if addr < self.image.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - self.image.text_base) / 4) as usize;
        (i < self.text.len()).then_some(i)
    }
}

/// Entry point, decodability of reachable text, wild targets, dead text.
pub(crate) fn check_flow(ctx: &Ctx, sink: &mut Sink) {
    if ctx.index_of(ctx.image.entry).is_none() {
        sink.emit(
            &diag::BAD_ENTRY,
            Some(ctx.image.entry),
            format!(
                "entry point {:#010x} is not a text word address",
                ctx.image.entry
            ),
        );
    }

    let mut undecodable = 0usize;
    for i in 0..ctx.text.len() {
        if ctx.flow.reachable[i] && ctx.flow.decoded[i].is_none() {
            undecodable += 1;
            if undecodable <= MAX_PER_LINT {
                sink.emit(
                    &diag::UNDECODABLE_TEXT,
                    Some(ctx.addr_of(i)),
                    format!("reachable word {:#010x} does not decode", ctx.text[i]),
                );
            }
        }
    }
    if undecodable > MAX_PER_LINT {
        sink.emit(
            &diag::UNDECODABLE_TEXT,
            None,
            format!(
                "... and {} more undecodable reachable word(s)",
                undecodable - MAX_PER_LINT
            ),
        );
    }

    let mut wild = 0usize;
    for &(src, target) in &ctx.flow.wild_targets {
        let i = ctx
            .index_of(src)
            .expect("wild-target source is a text word");
        if !ctx.flow.reachable[i] {
            continue;
        }
        wild += 1;
        if wild <= MAX_PER_LINT {
            sink.emit(
                &diag::WILD_CONTROL_TARGET,
                Some(src),
                format!("control transfer targets {target:#010x}, outside the text segment"),
            );
        }
    }
    if wild > MAX_PER_LINT {
        sink.emit(
            &diag::WILD_CONTROL_TARGET,
            None,
            format!(
                "... and {} more wild control target(s)",
                wild - MAX_PER_LINT
            ),
        );
    }

    let unreachable = ctx.text.len() - ctx.flow.reachable_count();
    if unreachable > 0 {
        sink.emit(
            &diag::UNREACHABLE_TEXT,
            None,
            format!("{unreachable} text word(s) unreachable from the entry point and symbols"),
        );
    }
}

/// Guard-shape lint and the independent signature recheck.
///
/// For each configured site the check (a) validates the raw shape of every
/// guard word, (b) locates the window start and proves the window is
/// straight-line and only enterable at its start, then (c) recomputes the
/// keyed hash over the decrypted body and tail words — at their addresses,
/// as the hardware will — and compares it with the signature spelled by the
/// guard operand fields. Returns the number of sites whose signature was
/// recomputed, plus one [`GuardWindow`] record per site whose window
/// resolved to word indices (sound only when every check passed) — the
/// raw material of the coverage analysis.
pub(crate) fn check_guards(ctx: &Ctx, sink: &mut Sink) -> (usize, Vec<GuardWindow>) {
    let config = ctx.config;
    let len = ctx.text.len();
    let mut checked = 0usize;
    let mut windows: Vec<GuardWindow> = Vec::new();

    // Reachable direct control-transfer targets, for mid-window entry
    // detection.
    let mut direct_targets: BTreeSet<u32> = BTreeSet::new();
    for i in 0..len {
        if !ctx.flow.reachable[i] {
            continue;
        }
        let Some(inst) = ctx.flow.decoded[i] else {
            continue;
        };
        if let Some(t) = inst.branch_target(ctx.addr_of(i)) {
            direct_targets.insert(t);
        }
        if let Some(t) = inst.jump_target() {
            direct_targets.insert(t);
        }
    }

    for (&site_addr, site) in &config.sites {
        let Some(si) = ctx.index_of(site_addr) else {
            sink.emit(
                &diag::GUARD_OUT_OF_BOUNDS,
                Some(site_addr),
                "guard site address is not a text word address".to_owned(),
            );
            continue;
        };
        let symbols = site.symbols as usize;
        let total = symbols + site.tail as usize;
        if si + total > len {
            sink.emit(
                &diag::GUARD_OUT_OF_BOUNDS,
                Some(site_addr),
                format!("guard sequence of {total} word(s) runs past the end of text"),
            );
            continue;
        }

        let mut shape_ok = true;
        for k in 0..symbols {
            let word = ctx.text[si + k];
            if !is_guard_form(word) {
                sink.emit(
                    &diag::MALFORMED_GUARD,
                    Some(ctx.addr_of(si + k)),
                    format!(
                        "word {word:#010x} at guard site {site_addr:#010x} is not of guard shape"
                    ),
                );
                shape_ok = false;
            }
        }

        // The hash window starts at the nearest registered window start at
        // or before the site (equal when the block body is empty).
        let Some(window) = config.window_of(site_addr) else {
            sink.emit(
                &diag::MALFORMED_WINDOW,
                Some(site_addr),
                "no window start at or before the guard site".to_owned(),
            );
            continue;
        };
        let Some(wi) = ctx.index_of(window) else {
            sink.emit(
                &diag::MALFORMED_WINDOW,
                Some(site_addr),
                format!("window start {window:#010x} is not a text word address"),
            );
            continue;
        };
        let mut window_ok = true;
        for b in wi..si {
            if !matches!(ctx.flow.decoded[b], Some(inst) if !inst.is_control_transfer()) {
                sink.emit(
                    &diag::MALFORMED_WINDOW,
                    Some(ctx.addr_of(b)),
                    format!("window body of site {site_addr:#010x} is not straight-line code"),
                );
                window_ok = false;
                break;
            }
        }
        // The rolling hash resets at the window start; a transfer landing
        // past it leaves the digest covering only a suffix, so a legitimate
        // execution would trip the monitor.
        for &t in direct_targets.range((Bound::Excluded(window), Bound::Included(site_addr))) {
            sink.emit(
                &diag::MALFORMED_WINDOW,
                Some(t),
                format!(
                    "control transfer enters the window of site {site_addr:#010x} past its start"
                ),
            );
            window_ok = false;
        }
        let structural = shape_ok && window_ok;
        let mut sound = structural;
        if sound {
            let mut hasher = WindowHasher::new(config.guard_key);
            for b in wi..si {
                hasher.absorb(ctx.addr_of(b), ctx.text[b]);
            }
            for t in 0..site.tail as usize {
                let index = si + symbols + t;
                hasher.absorb(ctx.addr_of(index), ctx.text[index]);
            }
            let computed = hasher.digest();
            let syms: Vec<u8> = (0..symbols)
                .map(|k| decode_guard_symbol(ctx.text[si + k]))
                .collect();
            let claimed = signature_from_symbols(&syms);
            checked += 1;
            if claimed != computed {
                sink.emit(
                    &diag::SIGNATURE_MISMATCH,
                    Some(site_addr),
                    format!(
                        "embedded signature {claimed:#010x} != recomputed window hash {computed:#010x}"
                    ),
                );
                sound = false;
            }
        }
        windows.push(GuardWindow {
            site_addr,
            start: wi,
            site: si,
            symbols,
            tail: site.tail as usize,
            structural,
            sound,
        });
    }
    (checked, windows)
}

/// Coverage lints on top of the dataflow analyses (`FP6xx`).
///
/// FP601: a guard word writing a register that is live after it corrupts
/// the very computation it protects (only `$zero`-writing guards are
/// transparent). FP602: an unreachable guard never streams past the
/// monitor, so its window is dead weight. FP603/FP604 partition the
/// uncovered reachable protected words: words with no completed dominating
/// check are outright coverage gaps, words dominated by a check are
/// editable only *after* it fires (a residual edit window).
pub(crate) fn check_coverage(
    ctx: &Ctx,
    coverage: &crate::coverage::Coverage,
    live: &crate::liveness::Liveness,
    sink: &mut Sink,
) {
    for w in &coverage.windows {
        for k in 0..w.symbols {
            let i = w.site + k;
            let Some(inst) = ctx.flow.decoded[i] else {
                continue;
            };
            let Some(r) = inst.def() else { continue };
            if r != flexprot_isa::Reg::ZERO && live.live_out_has(i, r) {
                sink.emit(
                    &diag::GUARD_CLOBBERS_LIVE,
                    Some(ctx.addr_of(i)),
                    format!(
                        "guard word at site {:#010x} overwrites {r}, which is live after it",
                        w.site_addr
                    ),
                );
            }
        }
    }

    for w in &coverage.windows {
        if w.sound && !ctx.flow.reachable[w.site] {
            sink.emit(
                &diag::DEAD_GUARD,
                Some(w.site_addr),
                "guard sequence is unreachable, so its window is never checked".to_owned(),
            );
        }
    }

    if ctx.config.sites.is_empty() {
        return;
    }
    let mut gaps = 0usize;
    let mut shadowed = 0usize;
    for i in 0..ctx.text.len() {
        if !ctx.flow.reachable[i] || !coverage.covered_by[i].is_empty() {
            continue;
        }
        let addr = ctx.addr_of(i);
        if !ctx.config.in_protected(addr) {
            continue;
        }
        if coverage.dominated[i] {
            shadowed += 1;
            if shadowed <= MAX_PER_LINT {
                sink.emit(
                    &diag::POST_CHECK_WINDOW,
                    Some(addr),
                    "protected word is uncovered but dominated by a completed guard check"
                        .to_owned(),
                );
            }
        } else {
            gaps += 1;
            if gaps <= MAX_PER_LINT {
                sink.emit(
                    &diag::COVERAGE_GAP,
                    Some(addr),
                    "reachable protected word is covered by no guard window".to_owned(),
                );
            }
        }
    }
    if gaps > MAX_PER_LINT {
        sink.emit(
            &diag::COVERAGE_GAP,
            None,
            format!("... and {} more uncovered word(s)", gaps - MAX_PER_LINT),
        );
    }
    if shadowed > MAX_PER_LINT {
        sink.emit(
            &diag::POST_CHECK_WINDOW,
            None,
            format!(
                "... and {} more post-check word(s)",
                shadowed - MAX_PER_LINT
            ),
        );
    }
}

/// Guard-network and checksum-proof lints (`FP7xx`).
///
/// FP703 is the only error: a [`Verdict::Mismatch`] means abstract
/// interpretation found *no* feasible valuation under which the guard's
/// embedded signature matches its window, so the guard either never
/// passes (halting every honest run) or was re-signed by an attacker —
/// and the finding carries the concrete witness word. The connectivity
/// lints are notes, not warnings: in this codesign the check schedule
/// lives in tamper-proof hardware, so a guard nobody checks still fires —
/// an unbacked guard is a hardening opportunity, not a broken contract.
pub(crate) fn check_network(
    net: &crate::guardnet::GuardNet,
    proofs: &[crate::absint::GuardProof],
    sink: &mut Sink,
) {
    use crate::absint::Verdict;
    for p in proofs {
        if let Verdict::Mismatch {
            claimed,
            computed,
            witness_addr,
        } = &p.verdict
        {
            sink.emit(
                &diag::CHECKSUM_CONSTANT_MISMATCH,
                Some(p.site_addr),
                format!(
                    "embedded signature {claimed:#010x} can never equal the window digest \
                     {computed:#010x}; witness word {witness_addr:#010x}"
                ),
            );
        }
    }

    let sound = net.sound_count();
    if sound == 0 {
        return;
    }
    let mut unchecked = 0usize;
    let mut acyclic = 0usize;
    for node in &net.nodes {
        if node.unchecked {
            unchecked += 1;
            if unchecked <= MAX_PER_LINT {
                sink.emit(
                    &diag::UNGUARDED_GUARD,
                    Some(node.site_addr),
                    "no other guard's window covers this guard".to_owned(),
                );
            }
        } else if node.acyclic {
            acyclic += 1;
            if acyclic <= MAX_PER_LINT {
                sink.emit(
                    &diag::ACYCLIC_GUARD_CHAIN,
                    Some(node.site_addr),
                    "guard is checked but belongs to no checking cycle".to_owned(),
                );
            }
        }
    }
    if unchecked > MAX_PER_LINT {
        sink.emit(
            &diag::UNGUARDED_GUARD,
            None,
            format!(
                "... and {} more unguarded guard(s)",
                unchecked - MAX_PER_LINT
            ),
        );
    }
    if acyclic > MAX_PER_LINT {
        sink.emit(
            &diag::ACYCLIC_GUARD_CHAIN,
            None,
            format!("... and {} more acyclic link(s)", acyclic - MAX_PER_LINT),
        );
    }

    match &net.min_cut {
        Some(cut) if cut.is_empty() && sound >= 2 => {
            sink.emit(
                &diag::MIN_CUT_WEAK_LINK,
                None,
                format!("the guard network is disconnected: {sound} guard(s) back each other up nowhere"),
            );
        }
        Some(cut) => {
            for &v in cut.iter().take(MAX_PER_LINT) {
                sink.emit(
                    &diag::MIN_CUT_WEAK_LINK,
                    Some(net.nodes[v].site_addr),
                    format!(
                        "defeating {} guard(s) disconnects the guard network; this one is in the cut",
                        cut.len()
                    ),
                );
            }
            if cut.len() > MAX_PER_LINT {
                sink.emit(
                    &diag::MIN_CUT_WEAK_LINK,
                    None,
                    format!("... and {} more cut member(s)", cut.len() - MAX_PER_LINT),
                );
            }
        }
        None => {}
    }
}

/// Guard-coverage dataflow: the maximum value the monitor's spacing counter
/// can reach on any statically feasible path.
///
/// One node per text word; the value at a node is the largest counter with
/// which it can be entered. Guard sequences contribute nothing and reset
/// the counter (the signature check passing is verified separately);
/// non-sequential arrival at a reset point resets it; every other protected
/// word increments it. Values saturate at one past the provisioned bound
/// (or past the text length when no bound is provisioned), which both
/// guarantees termination and witnesses a violation — respectively an
/// exceeded bound ([`diag::SPACING_EXCEEDED`]) or an unguarded cycle
/// ([`diag::UNGUARDED_CYCLE`]).
///
/// Paths through indirect jumps are not tracked (their targets are
/// unknowable statically); call continuations are assumed reset, with
/// [`diag::UNRESET_CALL_RETURN`] flagging any continuation the
/// configuration fails to register. Returns the bounded maximum, when one
/// exists.
pub(crate) fn check_spacing(ctx: &Ctx, sink: &mut Sink) -> Option<u64> {
    let config = ctx.config;
    if !config.sites.is_empty() && config.spacing_bound.is_none() {
        sink.emit(
            &diag::MISSING_SPACING_BOUND,
            None,
            format!(
                "{} guard site(s) configured but no spacing bound is provisioned",
                config.sites.len()
            ),
        );
    }
    if config.protected.is_empty() {
        return None;
    }
    let len = ctx.text.len();

    for i in 0..len {
        if !ctx.flow.reachable[i] {
            continue;
        }
        if matches!(
            ctx.flow.decoded[i],
            Some(Inst::Jal { .. }) | Some(Inst::Jalr { .. })
        ) && i + 1 < len
        {
            let cont = ctx.addr_of(i + 1);
            if config.in_protected(cont) && !config.reset_points.contains(&cont) {
                sink.emit(
                    &diag::UNRESET_CALL_RETURN,
                    Some(cont),
                    "call continuation in a protected range is not a spacing reset point"
                        .to_owned(),
                );
            }
        }
    }

    // Guard sequences: site start index -> last sequence word index.
    let mut seq_end: BTreeMap<usize, usize> = BTreeMap::new();
    for (&site_addr, site) in &config.sites {
        let Some(si) = ctx.index_of(site_addr) else {
            continue;
        };
        let total = (site.symbols + site.tail) as usize;
        if total > 0 && si + total <= len {
            seq_end.insert(si, si + total - 1);
        }
    }

    let bound = config.spacing_bound;
    let cap = match bound {
        Some(b) => b.saturating_add(1),
        None => len as u64 + 1,
    };
    let mut value: Vec<Option<u64>> = vec![None; len];
    let mut work: Vec<usize> = Vec::new();
    let push_val = |i: usize, v: u64, value: &mut Vec<Option<u64>>, work: &mut Vec<usize>| {
        let v = v.min(cap);
        if value[i].is_none_or(|old| v > old) {
            value[i] = Some(v);
            work.push(i);
        }
    };

    // Roots: the entry point and every text symbol, with a zero counter.
    if let Some(e) = ctx.index_of(ctx.image.entry) {
        push_val(e, 0, &mut value, &mut work);
    }
    for &addr in ctx.image.symbols.values() {
        if let Some(i) = ctx.index_of(addr) {
            push_val(i, 0, &mut value, &mut work);
        }
    }

    let mut exceeded: Option<u32> = None;
    let mut max_out = 0u64;
    while let Some(i) = work.pop() {
        let v = value[i].expect("queued nodes have a value");
        if let Some(&end) = seq_end.get(&i) {
            // A guard sequence: no counting while collecting, counter zero
            // after the check passes.
            for e in &ctx.flow.succs[end] {
                push_val(e.to, 0, &mut value, &mut work);
            }
            continue;
        }
        let addr = ctx.addr_of(i);
        let out = if config.in_protected(addr) {
            (v + 1).min(cap)
        } else {
            v
        };
        max_out = max_out.max(out);
        if bound.is_some_and(|b| out > b) && exceeded.is_none() {
            exceeded = Some(addr);
        }
        for e in &ctx.flow.succs[i] {
            let incoming = match e.kind {
                EdgeKind::CallContinuation => 0,
                // Sequential arrival (address adjacency, exactly the
                // hardware's criterion) keeps the counter even through a
                // reset point; any other arrival is a pc discontinuity and
                // resets at reset points.
                EdgeKind::Flow
                    if e.to != i + 1 && config.reset_points.contains(&ctx.addr_of(e.to)) =>
                {
                    0
                }
                EdgeKind::Flow => out,
            };
            push_val(e.to, incoming, &mut value, &mut work);
        }
    }

    match bound {
        Some(b) => match exceeded {
            Some(addr) => {
                sink.emit(
                    &diag::SPACING_EXCEEDED,
                    Some(addr),
                    format!(
                        "a guard-free path of more than {b} protected instruction(s) \
                         reaches this address"
                    ),
                );
                None
            }
            None => Some(max_out),
        },
        None => {
            if max_out >= cap {
                // Advisory when no bound is provisioned: nothing trips at
                // runtime, but guard stripping is then unbounded here.
                sink.emit_severity(
                    &diag::UNGUARDED_CYCLE,
                    Severity::Warning,
                    None,
                    "a guard-free cycle exists in a protected range (spacing unbounded)".to_owned(),
                );
                None
            } else {
                Some(max_out)
            }
        }
    }
}

/// Relocation integrity: every entry must agree with the instruction field
/// it describes, and targets must land where their kind requires.
/// Returns the number of in-bounds entries checked.
pub(crate) fn check_relocs(ctx: &Ctx, sink: &mut Sink) -> usize {
    let len = ctx.text.len();
    let mut checked = 0usize;
    let mut relocated: BTreeSet<usize> = BTreeSet::new();
    for reloc in &ctx.image.relocs {
        if reloc.text_index >= len {
            sink.emit(
                &diag::RELOC_INDEX_OOB,
                None,
                format!(
                    "relocation entry points at text index {} of {len}",
                    reloc.text_index
                ),
            );
            continue;
        }
        checked += 1;
        let addr = ctx.addr_of(reloc.text_index);
        let word = ctx.text[reloc.text_index];
        match reloc.kind {
            RelocKind::Branch16 | RelocKind::Jump26 => {
                relocated.insert(reloc.text_index);
                let field_target = match reloc.kind {
                    RelocKind::Branch16 => {
                        let off = i64::from((word & 0xFFFF) as u16 as i16);
                        u32::try_from(i64::from(addr) + 4 + 4 * off).ok()
                    }
                    _ => Some((word & 0x03FF_FFFF) << 2),
                };
                if field_target != Some(reloc.target) {
                    let resolved = field_target
                        .map(|t| format!("{t:#010x}"))
                        .unwrap_or_else(|| "out of range".to_owned());
                    sink.emit(
                        &diag::RELOC_FIELD_MISMATCH,
                        Some(addr),
                        format!(
                            "instruction field resolves to {resolved}, relocation records {:#010x}",
                            reloc.target
                        ),
                    );
                }
                if ctx.index_of(reloc.target).is_none() {
                    sink.emit(
                        &diag::RELOC_TARGET_OOB,
                        Some(addr),
                        format!(
                            "control relocation targets {:#010x}, outside the text segment",
                            reloc.target
                        ),
                    );
                }
            }
            RelocKind::Hi16 | RelocKind::Lo16 => {
                let (field, expected) = match reloc.kind {
                    RelocKind::Hi16 => (word & 0xFFFF, reloc.target >> 16),
                    _ => (word & 0xFFFF, reloc.target & 0xFFFF),
                };
                if field != expected {
                    sink.emit(
                        &diag::RELOC_FIELD_MISMATCH,
                        Some(addr),
                        format!(
                            "immediate field {field:#06x} disagrees with relocation target {:#010x}",
                            reloc.target
                        ),
                    );
                }
                if !addr_in_image(ctx.image, reloc.target) {
                    sink.emit(
                        &diag::ADDRESS_RELOC_OOB,
                        Some(addr),
                        format!(
                            "address relocation targets {:#010x}, outside text and data",
                            reloc.target
                        ),
                    );
                }
            }
        }
    }

    for i in 0..len {
        if !ctx.flow.reachable[i] || relocated.contains(&i) {
            continue;
        }
        let Some(inst) = ctx.flow.decoded[i] else {
            continue;
        };
        if inst.is_branch() || inst.is_direct_jump() {
            sink.emit(
                &diag::UNRELOCATED_CONTROL,
                Some(ctx.addr_of(i)),
                "reachable direct control transfer has no relocation entry".to_owned(),
            );
        }
    }
    checked
}

/// Whether `target` lies in the text or data segment (segment ends are
/// allowed inclusively: one-past-the-end pointers are idiomatic).
fn addr_in_image(image: &Image, target: u32) -> bool {
    let in_text = target >= image.text_base && target <= image.text_end();
    let data_end = image.data_base + image.data.len() as u32;
    let in_data = target >= image.data_base && target <= data_end;
    in_text || in_data
}

/// Encryption-region checks: well-formedness, non-overlap, containment in
/// text, and coverage of the protected ranges.
pub(crate) fn check_regions(ctx: &Ctx, sink: &mut Sink) {
    let image = ctx.image;
    let regions = ctx.config.regions.regions();
    for r in regions {
        if r.start >= r.end || r.start % 4 != 0 || r.end % 4 != 0 {
            sink.emit(
                &diag::MALFORMED_REGION,
                Some(r.start),
                format!("encrypted region {r} is empty, inverted or unaligned"),
            );
            continue;
        }
        if r.start < image.text_base || r.end > image.text_end() {
            sink.emit(
                &diag::REGION_OUTSIDE_TEXT,
                Some(r.start),
                format!(
                    "encrypted region {r} lies outside text [{:#010x}, {:#010x})",
                    image.text_base,
                    image.text_end()
                ),
            );
        }
    }
    for pair in regions.windows(2) {
        if pair[0].end > pair[1].start {
            sink.emit(
                &diag::OVERLAPPING_REGIONS,
                Some(pair[1].start),
                format!("regions {} and {} overlap", pair[0], pair[1]),
            );
        }
    }
    if regions.is_empty() {
        return;
    }
    for range in &ctx.config.protected {
        let mut uncovered = 0usize;
        let mut first = None;
        let mut addr = range.start;
        while addr < range.end {
            if ctx.config.regions.lookup(addr).is_none() {
                uncovered += 1;
                first.get_or_insert(addr);
            }
            addr += 4;
        }
        if uncovered > 0 {
            sink.emit(
                &diag::UNENCRYPTED_PROTECTED,
                first,
                format!(
                    "{uncovered} word(s) of protected range [{:#010x}, {:#010x}) are not encrypted",
                    range.start, range.end
                ),
            );
        }
    }
}
