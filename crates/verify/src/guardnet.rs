//! The guard network: who checks whom, and where it is weakest.
//!
//! Self-checksumming literature argues that individual guards buy little —
//! what makes tampering expensive is a *network* in which guards cover
//! each other, so defeating one check requires defeating the checks that
//! check it, transitively. This module builds that digraph from the
//! verified guard windows (edge `k → j` when window `k`'s hashed interval
//! covers guard `j`'s signature symbols) and computes the classic
//! connectivity diagnostics over the sound subgraph:
//!
//! * **SCC condensation** ([`sccs`]) — guards in a common strongly
//!   connected component check each other cyclically; singleton
//!   components are acyclic chain links.
//! * **Articulation points** ([`articulation_points`]) — guards whose
//!   removal splits the (undirected) network.
//! * **Minimum vertex cut** ([`min_vertex_cut`]) — the smallest guard set
//!   an attacker must defeat to disconnect the network; on images whose
//!   emitter lays out disjoint windows the network is edgeless, the cut
//!   is empty, and that disconnection is itself the finding (`FP701`).
//!
//! [`build`] packages all of it, ranks weak links, and [`to_json`] emits
//! the stable `flexprot-guardnet-v1` document that `fplint --guardnet`
//! and `fpnetmap` surface.

use crate::absint::{GuardProof, Verdict};
use crate::coverage::GuardWindow;

/// One guard in the network, with its connectivity diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetNode {
    /// Address of the first guard symbol word.
    pub site_addr: u32,
    /// Whether the window passed every structural and cryptographic check
    /// (only sound guards participate in the graph analyses).
    pub sound: bool,
    /// Guards this one checks (indices into the node list).
    pub checks: Vec<usize>,
    /// Guards checking this one.
    pub checked_by: Vec<usize>,
    /// Strongly connected component id over the sound subgraph.
    pub scc: Option<usize>,
    /// Sound and checked by no other guard.
    pub unchecked: bool,
    /// Sound, checked by someone, but not in any checking cycle.
    pub acyclic: bool,
    /// Member of the minimum vertex cut.
    pub in_cut: bool,
    /// Articulation point of the undirected sound subgraph.
    pub articulation: bool,
}

/// One ranked weak link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeakLink {
    /// Index into [`GuardNet::nodes`].
    pub node: usize,
    /// The guard's site address.
    pub site_addr: u32,
    /// Weakness score (higher = weaker): 4·unchecked + 2·in-cut +
    /// 1·acyclic.
    pub score: u32,
}

/// The who-checks-whom digraph and its analysis results.
#[derive(Debug, Clone, Default)]
pub struct GuardNet {
    /// One node per guard window, in site-address order (indices align
    /// with the coverage analysis' window indices).
    pub nodes: Vec<NetNode>,
    /// Number of check edges between distinct sound guards.
    pub edges: usize,
    /// Number of strongly connected components of the sound subgraph.
    pub scc_count: usize,
    /// The minimum vertex cut of the undirected sound subgraph: `None`
    /// when no cut exists (complete or too small a graph), `Some(empty)`
    /// when the network is already disconnected.
    pub min_cut: Option<Vec<usize>>,
    /// Weak links, weakest first.
    pub weak_links: Vec<WeakLink>,
}

impl GuardNet {
    /// Number of sound guards.
    pub fn sound_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.sound).count()
    }

    /// Sound guards checked by no other guard.
    pub fn unchecked_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.unchecked).count()
    }

    /// Sound guards on acyclic chains.
    pub fn acyclic_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.acyclic).count()
    }

    /// Whether the sound subgraph is connected with ≥ 2 guards — the
    /// precondition for a cut-based attack being more expensive than
    /// defeating one guard.
    pub fn is_connected(&self) -> bool {
        self.sound_count() >= 2 && !matches!(&self.min_cut, Some(cut) if cut.is_empty())
    }

    /// The guards an attacker must defeat to silently tamper with the
    /// guards in `seeds`: the transitive closure of `seeds` under
    /// "checked by". Defeating a guard perturbs its own window, which its
    /// checkers notice, so they must fall too.
    pub fn defeat_closure(&self, seeds: &[usize]) -> Vec<usize> {
        let mut in_closure = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < self.nodes.len() && !in_closure[s] {
                in_closure[s] = true;
                stack.push(s);
            }
        }
        while let Some(v) = stack.pop() {
            for &p in &self.nodes[v].checked_by {
                if !in_closure[p] {
                    in_closure[p] = true;
                    stack.push(p);
                }
            }
        }
        (0..self.nodes.len()).filter(|&i| in_closure[i]).collect()
    }
}

/// Builds the network from the verified windows.
pub fn build(windows: &[GuardWindow]) -> GuardNet {
    let n = windows.len();
    // Edge k -> j: window k's hashed interval covers guard j's symbol
    // words, for distinct sound guards. A guard always covers its own
    // symbols (they *are* the signature), so self-edges carry no
    // information and are excluded.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges = 0usize;
    for (k, wk) in windows.iter().enumerate() {
        if !wk.sound {
            continue;
        }
        for (j, wj) in windows.iter().enumerate() {
            if j == k || !wj.sound {
                continue;
            }
            let sym_start = wj.site;
            let sym_end = wj.site + wj.symbols;
            if wk.start < sym_end && sym_start < wk.end() {
                succs[k].push(j);
                preds[j].push(k);
                edges += 1;
            }
        }
    }

    // Graph analyses run on the compacted sound subgraph.
    let sound_ids: Vec<usize> = (0..n).filter(|&i| windows[i].sound).collect();
    let compact: Vec<Option<usize>> = {
        let mut m = vec![None; n];
        for (c, &i) in sound_ids.iter().enumerate() {
            m[i] = Some(c);
        }
        m
    };
    let sub_succs: Vec<Vec<usize>> = sound_ids
        .iter()
        .map(|&i| succs[i].iter().map(|&j| compact[j].unwrap()).collect())
        .collect();
    let sub_adj = undirected(&sub_succs);
    let components = sccs(&sub_succs);
    let mut scc_of = vec![usize::MAX; sound_ids.len()];
    for (c, comp) in components.iter().enumerate() {
        for &v in comp {
            scc_of[v] = c;
        }
    }
    let arts = articulation_points(&sub_adj);
    let cut = min_vertex_cut(&sub_adj);

    let mut nodes: Vec<NetNode> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let c = compact[i];
            let in_cycle = c.is_some_and(|c| components[scc_of[c]].len() > 1);
            NetNode {
                site_addr: w.site_addr,
                sound: w.sound,
                checks: succs[i].clone(),
                checked_by: preds[i].clone(),
                scc: c.map(|c| scc_of[c]),
                unchecked: w.sound && preds[i].is_empty(),
                acyclic: w.sound && !preds[i].is_empty() && !in_cycle,
                in_cut: false,
                articulation: c.is_some_and(|c| arts.contains(&c)),
            }
        })
        .collect();
    if let Some(cut) = &cut {
        for &c in cut {
            nodes[sound_ids[c]].in_cut = true;
        }
    }

    let mut weak_links: Vec<WeakLink> = nodes
        .iter()
        .enumerate()
        .filter(|(_, node)| node.sound)
        .map(|(i, node)| WeakLink {
            node: i,
            site_addr: node.site_addr,
            score: 4 * u32::from(node.unchecked)
                + 2 * u32::from(node.in_cut)
                + u32::from(node.acyclic),
        })
        .filter(|l| l.score > 0)
        .collect();
    weak_links.sort_by_key(|l| {
        (
            std::cmp::Reverse(l.score),
            nodes[l.node].checked_by.len(),
            l.site_addr,
        )
    });

    GuardNet {
        nodes,
        edges,
        scc_count: components.len(),
        min_cut: cut.map(|c| c.into_iter().map(|v| sound_ids[v]).collect()),
        weak_links,
    }
}

/// The undirected adjacency underlying a digraph (deduplicated).
fn undirected(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); succs.len()];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            if u != v {
                adj[u].push(v);
                adj[v].push(u);
            }
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    adj
}

/// Strongly connected components of a digraph (iterative Tarjan).
/// Components are returned in reverse topological order of the
/// condensation (a component precedes the components it reaches);
/// vertices within a component are sorted.
pub fn sccs(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (vertex, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succs[v].get(*child) {
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Articulation points of an undirected graph: vertices whose removal
/// increases the number of connected components. Returned sorted.
pub fn articulation_points(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut is_art = vec![false; n];
    let mut next = 0usize;
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Frames: (vertex, parent, next child position).
        let mut frames: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        let mut root_children = 0usize;
        while let Some(&mut (v, parent, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                disc[v] = next;
                low[v] = next;
                next += 1;
            }
            if let Some(&w) = adj[v].get(*child) {
                *child += 1;
                if disc[w] == usize::MAX {
                    if v == root {
                        root_children += 1;
                    }
                    frames.push((w, v, 0));
                } else if w != parent {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                    if p != root && low[v] >= disc[p] {
                        is_art[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_art[root] = true;
        }
    }
    (0..n).filter(|&v| is_art[v]).collect()
}

/// Minimum vertex cut of an undirected graph.
///
/// Returns `None` when no vertex set disconnects the graph (complete
/// graphs and graphs with fewer than 3 vertices that are fully
/// connected), `Some(empty)` when the graph is already disconnected, and
/// otherwise a smallest vertex set whose removal leaves at least two
/// vertices in different components. Computed by unit-capacity node-split
/// max-flow over every non-adjacent vertex pair — exact, and fast enough
/// for guard networks (tens of nodes).
pub fn min_vertex_cut(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    if n < 2 {
        return None;
    }
    if !connected(adj) {
        return Some(Vec::new());
    }
    let mut best: Option<Vec<usize>> = None;
    for s in 0..n {
        for t in s + 1..n {
            if adj[s].contains(&t) {
                continue;
            }
            let cut = st_vertex_cut(adj, s, t);
            if best.as_ref().is_none_or(|b| cut.len() < b.len()) {
                best = Some(cut);
            }
        }
    }
    best
}

/// Whether an undirected graph is connected (vacuously true when empty).
fn connected(adj: &[Vec<usize>]) -> bool {
    let n = adj.len();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1usize;
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    count == n
}

/// Minimum s–t vertex cut for non-adjacent `s`, `t` via node splitting:
/// each vertex v becomes `v_in → v_out` with capacity 1 (∞ for the
/// terminals), each undirected edge {u, v} becomes `u_out → v_in` and
/// `v_out → u_in` with capacity ∞; max-flow from `s_out` to `t_in` then
/// equals the cut, recovered from the residual reachability frontier.
fn st_vertex_cut(adj: &[Vec<usize>], s: usize, t: usize) -> Vec<usize> {
    const INF: i64 = i64::MAX / 4;
    let n = adj.len();
    let node_in = |v: usize| 2 * v;
    let node_out = |v: usize| 2 * v + 1;
    // Adjacency as edge lists with residual capacities.
    let mut graph: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
    let mut edges: Vec<(usize, usize, i64)> = Vec::new(); // (to, rev-index pairing via parity), cap
    let add_edge = |graph: &mut Vec<Vec<usize>>,
                    edges: &mut Vec<(usize, usize, i64)>,
                    from: usize,
                    to: usize,
                    cap: i64| {
        graph[from].push(edges.len());
        edges.push((from, to, cap));
        graph[to].push(edges.len());
        edges.push((to, from, 0));
    };
    for v in 0..n {
        let cap = if v == s || v == t { INF } else { 1 };
        add_edge(&mut graph, &mut edges, node_in(v), node_out(v), cap);
    }
    for (u, ss) in adj.iter().enumerate() {
        for &v in ss {
            add_edge(&mut graph, &mut edges, node_out(u), node_in(v), INF);
        }
    }
    let (source, sink) = (node_out(s), node_in(t));

    // Edmonds–Karp: BFS augmenting paths.
    loop {
        let mut prev: Vec<Option<usize>> = vec![None; 2 * n];
        let mut queue = std::collections::VecDeque::from([source]);
        let mut reached = vec![false; 2 * n];
        reached[source] = true;
        while let Some(v) = queue.pop_front() {
            for &e in &graph[v] {
                let (_, to, cap) = edges[e];
                if cap > 0 && !reached[to] {
                    reached[to] = true;
                    prev[to] = Some(e);
                    queue.push_back(to);
                }
            }
        }
        if !reached[sink] {
            break;
        }
        // Trace the path, find the bottleneck, push one unit (all vertex
        // capacities are 1, so the bottleneck is always 1 here unless the
        // path is terminal-to-terminal, which non-adjacency precludes).
        let mut bottleneck = INF;
        let mut v = sink;
        while let Some(e) = prev[v] {
            bottleneck = bottleneck.min(edges[e].2);
            v = edges[e].0;
        }
        let mut v = sink;
        while let Some(e) = prev[v] {
            edges[e].2 -= bottleneck;
            edges[e ^ 1].2 += bottleneck;
            v = edges[e].0;
        }
    }

    // Residual reachability from the source; a vertex whose in-node is
    // reachable but whose out-node is not sits on the cut.
    let mut reached = vec![false; 2 * n];
    reached[source] = true;
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        for &e in &graph[v] {
            let (_, to, cap) = edges[e];
            if cap > 0 && !reached[to] {
                reached[to] = true;
                stack.push(to);
            }
        }
    }
    (0..n)
        .filter(|&v| v != s && v != t && reached[node_in(v)] && !reached[node_out(v)])
        .collect()
}

/// Renders the network and the checksum proofs as the stable
/// `flexprot-guardnet-v1` JSON document.
///
/// Schema: `{"schema","guards","sound","edges","sccs","unchecked",
/// "acyclic","proven","min_cut","nodes":[{"site","sound","checks",
/// "checked_by","scc","unchecked","acyclic","in_cut","articulation",
/// "proof","detail"}],"weak_links":[{"site","score"}]}`. Field order is
/// fixed; consumers may rely on it. `min_cut` is `null` when no cut
/// exists, else a list of site addresses. `detail` is `null` where no
/// proof was attempted, a digest/witness string for proven/mismatch, and
/// a `{"code","reason"}` object (stable snake_case refusal code plus
/// prose) for unproven.
pub fn to_json(net: &GuardNet, proofs: &[GuardProof]) -> String {
    let proven = proofs
        .iter()
        .filter(|p| matches!(p.verdict, Verdict::Proven { .. }))
        .count();
    let mut out = String::from("{\"schema\":\"flexprot-guardnet-v1\"");
    out.push_str(&format!(",\"guards\":{}", net.nodes.len()));
    out.push_str(&format!(",\"sound\":{}", net.sound_count()));
    out.push_str(&format!(",\"edges\":{}", net.edges));
    out.push_str(&format!(",\"sccs\":{}", net.scc_count));
    out.push_str(&format!(",\"unchecked\":{}", net.unchecked_count()));
    out.push_str(&format!(",\"acyclic\":{}", net.acyclic_count()));
    out.push_str(&format!(",\"proven\":{proven}"));
    match &net.min_cut {
        None => out.push_str(",\"min_cut\":null"),
        Some(cut) => {
            out.push_str(",\"min_cut\":[");
            for (i, &v) in cut.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{:#010x}\"", net.nodes[v].site_addr));
            }
            out.push(']');
        }
    }
    out.push_str(",\"nodes\":[");
    for (i, node) in net.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let sites = |ids: &[usize]| -> String {
            let mut s = String::from("[");
            for (k, &j) in ids.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{:#010x}\"", net.nodes[j].site_addr));
            }
            s.push(']');
            s
        };
        let (proof, detail) = proof_fields(proofs, node.site_addr);
        out.push_str(&format!(
            "{{\"site\":\"{:#010x}\",\"sound\":{},\"checks\":{},\"checked_by\":{},\
             \"scc\":{},\"unchecked\":{},\"acyclic\":{},\"in_cut\":{},\
             \"articulation\":{},\"proof\":\"{proof}\",\"detail\":{detail}}}",
            node.site_addr,
            node.sound,
            sites(&node.checks),
            sites(&node.checked_by),
            node.scc
                .map_or_else(|| "null".to_owned(), |c| c.to_string()),
            node.unchecked,
            node.acyclic,
            node.in_cut,
            node.articulation,
        ));
    }
    out.push_str("],\"weak_links\":[");
    for (i, l) in net.weak_links.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"site\":\"{:#010x}\",\"score\":{}}}",
            l.site_addr, l.score
        ));
    }
    out.push_str("]}");
    out
}

/// The `proof`/`detail` JSON fields for the guard at `site_addr`.
fn proof_fields(proofs: &[GuardProof], site_addr: u32) -> (&'static str, String) {
    match proofs.iter().find(|p| p.site_addr == site_addr) {
        None => ("unproven", "null".to_owned()),
        Some(p) => match &p.verdict {
            Verdict::Proven { digest } => ("proven", format!("\"{digest:#010x}\"")),
            Verdict::Mismatch { witness_addr, .. } => {
                ("mismatch", format!("\"{witness_addr:#010x}\""))
            }
            Verdict::Unproven { reason } => (
                "unproven",
                format!(
                    "{{\"code\": \"{}\", \"reason\": \"{}\"}}",
                    reason.code(),
                    crate::diag::json_escape(&reason.to_string())
                ),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: usize, site: usize, sound: bool) -> GuardWindow {
        GuardWindow {
            site_addr: 0x0040_0000 + 4 * site as u32,
            start,
            site,
            symbols: 4,
            tail: 0,
            structural: sound,
            sound,
        }
    }

    #[test]
    fn disjoint_windows_make_an_edgeless_disconnected_network() {
        // The emitter's real layout: one guard per block, windows disjoint.
        let net = build(&[window(0, 2, true), window(8, 10, true)]);
        assert_eq!(net.edges, 0);
        assert_eq!(net.unchecked_count(), 2);
        assert_eq!(net.min_cut, Some(vec![]));
        assert!(!net.is_connected());
        assert_eq!(net.weak_links.len(), 2);
        assert!(net.weak_links.iter().all(|l| l.score == 4));
        assert_eq!(net.defeat_closure(&[0]), vec![0]);
    }

    #[test]
    fn overlapping_windows_form_edges_and_closures() {
        // Window 0 covers words [0, 10): it includes guard 1's symbols at
        // [6, 10). Window 1 covers [4, 14): it includes guard 0's symbols
        // at [2, 6) only partially — still an edge (any overlap).
        let w0 = GuardWindow {
            site_addr: 0x0040_0008,
            start: 0,
            site: 2,
            symbols: 4,
            tail: 4,
            structural: true,
            sound: true,
        };
        let w1 = GuardWindow {
            site_addr: 0x0040_0018,
            start: 4,
            site: 6,
            symbols: 4,
            tail: 4,
            structural: true,
            sound: true,
        };
        let net = build(&[w0, w1]);
        assert_eq!(net.edges, 2, "mutual checking");
        assert_eq!(net.unchecked_count(), 0);
        assert_eq!(net.acyclic_count(), 0);
        assert_eq!(net.scc_count, 1, "one cycle");
        assert!(net.is_connected());
        assert_eq!(net.min_cut, None, "K2 is complete");
        assert!(net.weak_links.is_empty());
        assert_eq!(net.defeat_closure(&[0]), vec![0, 1]);
    }

    #[test]
    fn unsound_windows_are_isolated_from_the_graph() {
        let w0 = GuardWindow {
            site_addr: 0x0040_0008,
            start: 0,
            site: 2,
            symbols: 4,
            tail: 4,
            structural: true,
            sound: true,
        };
        let mut w1 = w0;
        w1.site_addr = 0x0040_0018;
        w1.start = 4;
        w1.site = 6;
        w1.sound = false;
        let net = build(&[w0, w1]);
        assert_eq!(net.edges, 0, "edges need both endpoints sound");
        assert_eq!(net.sound_count(), 1);
        assert!(net.nodes[1].scc.is_none());
        assert_eq!(net.weak_links.len(), 1, "only the sound node ranks");
    }

    #[test]
    fn scc_condensation_on_a_known_digraph() {
        // 0 <-> 1, 2 -> 0, 2 -> 3, 3 -> 2: components {0,1} and {2,3}.
        let succs = vec![vec![1], vec![0], vec![0, 3], vec![2]];
        let mut comps = sccs(&succs);
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn articulation_points_on_a_known_graph() {
        // Path 0 - 1 - 2: the middle vertex is the articulation point.
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert_eq!(articulation_points(&adj), vec![1]);
        // Triangle: none.
        let tri = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        assert_eq!(articulation_points(&tri), Vec::<usize>::new());
    }

    #[test]
    fn min_cut_on_known_graphs() {
        // Path 0 - 1 - 2: cut {1}.
        let path = vec![vec![1], vec![0, 2], vec![1]];
        assert_eq!(min_vertex_cut(&path), Some(vec![1]));
        // Triangle: complete, no cut.
        let tri = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        assert_eq!(min_vertex_cut(&tri), None);
        // Two isolated vertices: already disconnected.
        let iso = vec![vec![], vec![]];
        assert_eq!(min_vertex_cut(&iso), Some(vec![]));
        // 4-cycle: any opposite pair disconnects; the cut has size 2.
        let square = vec![vec![1, 3], vec![0, 2], vec![1, 3], vec![2, 0]];
        let cut = min_vertex_cut(&square).expect("cut exists");
        assert_eq!(cut.len(), 2);
    }

    #[test]
    fn guardnet_json_shape() {
        let net = build(&[window(0, 2, true), window(8, 10, true)]);
        let json = to_json(&net, &[]);
        assert!(
            json.starts_with("{\"schema\":\"flexprot-guardnet-v1\""),
            "{json}"
        );
        assert!(json.contains("\"guards\":2"), "{json}");
        assert!(json.contains("\"min_cut\":[]"), "{json}");
        assert!(json.contains("\"weak_links\":["), "{json}");
        assert!(json.contains("\"proof\":\"unproven\""), "{json}");
    }
}
