//! Binary (de)serialization of program images — the `FPX1` container.
//!
//! The toolchain's CLI binaries exchange images as files; the format is a
//! deliberately simple little-endian container:
//!
//! ```text
//! "FPX1"                          magic
//! u32 entry, text_base, data_base
//! u32 text_words   then that many u32 text words
//! u32 data_bytes   then that many bytes
//! u32 n_symbols    then { u32 len, bytes name, u32 addr }*
//! u32 n_relocs     then { u32 text_index, u8 kind, u32 target }*
//! ```

use std::fmt;

use crate::image::{Image, Reloc, RelocKind};

const MAGIC: &[u8; 4] = b"FPX1";

/// Error returned when parsing an `FPX1` container fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageFormatError {
    /// The magic bytes are wrong — not an FPX1 file.
    BadMagic,
    /// The data ended before a declared field.
    Truncated,
    /// A declared length is implausibly large for the remaining input.
    BadLength,
    /// A symbol name is not valid UTF-8.
    BadSymbolName,
    /// An unknown relocation-kind tag.
    BadRelocKind(u8),
    /// Trailing bytes after the last field.
    TrailingBytes,
}

impl fmt::Display for ImageFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageFormatError::BadMagic => f.write_str("not an FPX1 image (bad magic)"),
            ImageFormatError::Truncated => f.write_str("truncated FPX1 image"),
            ImageFormatError::BadLength => f.write_str("implausible length field"),
            ImageFormatError::BadSymbolName => f.write_str("symbol name is not valid UTF-8"),
            ImageFormatError::BadRelocKind(k) => write!(f, "unknown relocation kind {k}"),
            ImageFormatError::TrailingBytes => f.write_str("trailing bytes after image"),
        }
    }
}

impl std::error::Error for ImageFormatError {}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageFormatError> {
        if self.data.len() - self.pos < n {
            return Err(ImageFormatError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ImageFormatError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ImageFormatError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// A count that must plausibly fit in the remaining bytes, with each
    /// element at least `min_elem_size` bytes.
    fn count(&mut self, min_elem_size: usize) -> Result<usize, ImageFormatError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size) > self.data.len() - self.pos {
            return Err(ImageFormatError::BadLength);
        }
        Ok(n)
    }
}

fn reloc_kind_tag(kind: RelocKind) -> u8 {
    match kind {
        RelocKind::Hi16 => 0,
        RelocKind::Lo16 => 1,
        RelocKind::Jump26 => 2,
        RelocKind::Branch16 => 3,
    }
}

fn reloc_kind_from_tag(tag: u8) -> Result<RelocKind, ImageFormatError> {
    Ok(match tag {
        0 => RelocKind::Hi16,
        1 => RelocKind::Lo16,
        2 => RelocKind::Jump26,
        3 => RelocKind::Branch16,
        other => return Err(ImageFormatError::BadRelocKind(other)),
    })
}

impl Image {
    /// Serializes to the `FPX1` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.text.len() * 4 + self.data.len());
        out.extend_from_slice(MAGIC);
        for v in [self.entry, self.text_base, self.data_base] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.text.len() as u32).to_le_bytes());
        for &w in &self.text {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&(self.symbols.len() as u32).to_le_bytes());
        for (name, &addr) in &self.symbols {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&addr.to_le_bytes());
        }
        out.extend_from_slice(&(self.relocs.len() as u32).to_le_bytes());
        for r in &self.relocs {
            out.extend_from_slice(&(r.text_index as u32).to_le_bytes());
            out.push(reloc_kind_tag(r.kind));
            out.extend_from_slice(&r.target.to_le_bytes());
        }
        out
    }

    /// Parses an `FPX1` container.
    ///
    /// # Errors
    ///
    /// Returns an [`ImageFormatError`] for malformed input; never panics on
    /// untrusted bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, ImageFormatError> {
        let mut r = Reader {
            data: bytes,
            pos: 0,
        };
        if r.take(4)? != MAGIC {
            return Err(ImageFormatError::BadMagic);
        }
        let entry = r.u32()?;
        let text_base = r.u32()?;
        let data_base = r.u32()?;
        let text_words = r.count(4)?;
        let mut text = Vec::with_capacity(text_words);
        for _ in 0..text_words {
            text.push(r.u32()?);
        }
        let data_bytes = r.count(1)?;
        let data = r.take(data_bytes)?.to_vec();
        let n_symbols = r.count(8)?;
        let mut symbols = std::collections::BTreeMap::new();
        for _ in 0..n_symbols {
            let len = r.count(1)?;
            let name = std::str::from_utf8(r.take(len)?)
                .map_err(|_| ImageFormatError::BadSymbolName)?
                .to_owned();
            let addr = r.u32()?;
            symbols.insert(name, addr);
        }
        let n_relocs = r.count(9)?;
        let mut relocs = Vec::with_capacity(n_relocs);
        for _ in 0..n_relocs {
            let text_index = r.u32()? as usize;
            let kind = reloc_kind_from_tag(r.u8()?)?;
            let target = r.u32()?;
            relocs.push(Reloc {
                text_index,
                kind,
                target,
            });
        }
        if r.pos != bytes.len() {
            return Err(ImageFormatError::TrailingBytes);
        }
        Ok(Image {
            entry,
            text_base,
            text,
            data_base,
            data,
            symbols,
            relocs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::Reg;

    fn sample() -> Image {
        let mut image = Image::from_text(vec![
            Inst::Addi {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            }
            .encode(),
            Inst::Syscall.encode(),
            Inst::Jal { target: 0x10_0000 }.encode(),
        ]);
        image.data = vec![1, 2, 3, 4, 5];
        image.symbols.insert("main".into(), image.text_base);
        image.symbols.insert("data0".into(), image.data_base);
        image.relocs.push(Reloc {
            text_index: 2,
            kind: RelocKind::Jump26,
            target: 0x0040_0000,
        });
        image
    }

    #[test]
    fn round_trip_preserves_everything() {
        let image = sample();
        let bytes = image.to_bytes();
        assert_eq!(Image::from_bytes(&bytes), Ok(image));
    }

    #[test]
    fn empty_image_round_trips() {
        let image = Image::from_text(Vec::new());
        assert_eq!(Image::from_bytes(&image.to_bytes()), Ok(image));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Image::from_bytes(&bytes), Err(ImageFormatError::BadMagic));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Image::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            Image::from_bytes(&bytes),
            Err(ImageFormatError::TrailingBytes)
        );
    }

    #[test]
    fn absurd_counts_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"FPX1");
        bytes.extend_from_slice(&[0; 12]); // entry, bases
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // text_words
        assert_eq!(Image::from_bytes(&bytes), Err(ImageFormatError::BadLength));
    }

    #[test]
    fn bad_reloc_kind_rejected() {
        let image = sample();
        let mut bytes = image.to_bytes();
        // The reloc kind byte is 4 bytes from the end (kind, then target).
        let pos = bytes.len() - 5;
        bytes[pos] = 9;
        assert_eq!(
            Image::from_bytes(&bytes),
            Err(ImageFormatError::BadRelocKind(9))
        );
    }
}
