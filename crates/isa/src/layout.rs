//! Canonical memory-map constants shared by the whole toolchain.

/// Size of one instruction word in bytes.
pub const WORD_BYTES: u32 = 4;

/// Base address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;

/// Base address of the static data segment.
pub const DATA_BASE: u32 = 0x1001_0000;

/// Initial stack pointer (grows downward).
pub const STACK_TOP: u32 = 0x7FFF_FFF0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_disjoint_and_aligned() {
        assert_eq!(TEXT_BASE % WORD_BYTES, 0);
        assert_eq!(DATA_BASE % WORD_BYTES, 0);
        assert_eq!(STACK_TOP % WORD_BYTES, 0);
        const { assert!(TEXT_BASE < DATA_BASE) };
        const { assert!(DATA_BASE < STACK_TOP) };
    }
}
