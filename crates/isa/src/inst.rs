//! Instruction definitions, binary encoding and decoding.
//!
//! SP32 uses three fixed 32-bit formats, modelled on MIPS32:
//!
//! ```text
//! R-type:  [31:26]=0x00  [25:21]=rs [20:16]=rt [15:11]=rd [10:6]=shamt [5:0]=funct
//! I-type:  [31:26]=op    [25:21]=rs [20:16]=rt [15:0]=imm
//! J-type:  [31:26]=op    [25:0]=target (word index, i.e. byte address >> 2)
//! ```
//!
//! Decoding is *strict*: unknown opcodes, unknown functs and non-zero
//! must-be-zero fields are all rejected. Strictness matters for the
//! protection system — a tampered or mis-decrypted word is likely to fault in
//! the decoder, which the simulator reports as an execution fault.

use std::fmt;

use crate::reg::Reg;

/// A decoded SP32 instruction.
///
/// Arithmetic is two's-complement and wrapping; SP32 has no overflow traps,
/// so `Add`/`Addu` (and `Sub`/`Subu`) differ only in encoding. Both exist so
/// that generated code — in particular register guards — can draw from a
/// larger pool of byte patterns.
///
/// # Example
///
/// ```
/// use flexprot_isa::{Inst, Reg};
///
/// let word = Inst::Jal { target: 0x10_0000 }.encode();
/// match Inst::decode(word)? {
///     Inst::Jal { target } => assert_eq!(target << 2, 0x40_0000),
///     other => panic!("decoded {other}"),
/// }
/// # Ok::<(), flexprot_isa::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    // --- R-type shifts (immediate shift amount) ---
    Sll { rd: Reg, rt: Reg, sh: u8 },
    Srl { rd: Reg, rt: Reg, sh: u8 },
    Sra { rd: Reg, rt: Reg, sh: u8 },
    // --- R-type shifts (register shift amount) ---
    Sllv { rd: Reg, rt: Reg, rs: Reg },
    Srlv { rd: Reg, rt: Reg, rs: Reg },
    Srav { rd: Reg, rt: Reg, rs: Reg },
    // --- R-type control ---
    Jr { rs: Reg },
    Jalr { rd: Reg, rs: Reg },
    Syscall,
    Break,
    // --- R-type three-operand ALU ---
    Mul { rd: Reg, rs: Reg, rt: Reg },
    Div { rd: Reg, rs: Reg, rt: Reg },
    Rem { rd: Reg, rs: Reg, rt: Reg },
    Add { rd: Reg, rs: Reg, rt: Reg },
    Addu { rd: Reg, rs: Reg, rt: Reg },
    Sub { rd: Reg, rs: Reg, rt: Reg },
    Subu { rd: Reg, rs: Reg, rt: Reg },
    And { rd: Reg, rs: Reg, rt: Reg },
    Or { rd: Reg, rs: Reg, rt: Reg },
    Xor { rd: Reg, rs: Reg, rt: Reg },
    Nor { rd: Reg, rs: Reg, rt: Reg },
    Slt { rd: Reg, rs: Reg, rt: Reg },
    Sltu { rd: Reg, rs: Reg, rt: Reg },
    // --- I-type ALU ---
    Addi { rt: Reg, rs: Reg, imm: i16 },
    Slti { rt: Reg, rs: Reg, imm: i16 },
    Sltiu { rt: Reg, rs: Reg, imm: i16 },
    Andi { rt: Reg, rs: Reg, imm: u16 },
    Ori { rt: Reg, rs: Reg, imm: u16 },
    Xori { rt: Reg, rs: Reg, imm: u16 },
    Lui { rt: Reg, imm: u16 },
    // --- Loads and stores: address = base + sign-extended offset ---
    Lb { rt: Reg, off: i16, base: Reg },
    Lh { rt: Reg, off: i16, base: Reg },
    Lw { rt: Reg, off: i16, base: Reg },
    Lbu { rt: Reg, off: i16, base: Reg },
    Lhu { rt: Reg, off: i16, base: Reg },
    Sb { rt: Reg, off: i16, base: Reg },
    Sh { rt: Reg, off: i16, base: Reg },
    Sw { rt: Reg, off: i16, base: Reg },
    // --- Branches: target = pc + 4 + (off << 2) ---
    Beq { rs: Reg, rt: Reg, off: i16 },
    Bne { rs: Reg, rt: Reg, off: i16 },
    Blez { rs: Reg, off: i16 },
    Bgtz { rs: Reg, off: i16 },
    Bltz { rs: Reg, off: i16 },
    Bgez { rs: Reg, off: i16 },
    // --- Jumps: target is a 26-bit word index ---
    J { target: u32 },
    Jal { target: u32 },
}

mod op {
    pub const RTYPE: u32 = 0x00;
    pub const REGIMM: u32 = 0x01;
    pub const J: u32 = 0x02;
    pub const JAL: u32 = 0x03;
    pub const BEQ: u32 = 0x04;
    pub const BNE: u32 = 0x05;
    pub const BLEZ: u32 = 0x06;
    pub const BGTZ: u32 = 0x07;
    pub const ADDI: u32 = 0x08;
    pub const SLTI: u32 = 0x0A;
    pub const SLTIU: u32 = 0x0B;
    pub const ANDI: u32 = 0x0C;
    pub const ORI: u32 = 0x0D;
    pub const XORI: u32 = 0x0E;
    pub const LUI: u32 = 0x0F;
    pub const LB: u32 = 0x20;
    pub const LH: u32 = 0x21;
    pub const LW: u32 = 0x23;
    pub const LBU: u32 = 0x24;
    pub const LHU: u32 = 0x25;
    pub const SB: u32 = 0x28;
    pub const SH: u32 = 0x29;
    pub const SW: u32 = 0x2B;
}

mod funct {
    pub const SLL: u32 = 0x00;
    pub const SRL: u32 = 0x02;
    pub const SRA: u32 = 0x03;
    pub const SLLV: u32 = 0x04;
    pub const SRLV: u32 = 0x06;
    pub const SRAV: u32 = 0x07;
    pub const JR: u32 = 0x08;
    pub const JALR: u32 = 0x09;
    pub const SYSCALL: u32 = 0x0C;
    pub const BREAK: u32 = 0x0D;
    pub const MUL: u32 = 0x18;
    pub const DIV: u32 = 0x1A;
    pub const REM: u32 = 0x1B;
    pub const ADD: u32 = 0x20;
    pub const ADDU: u32 = 0x21;
    pub const SUB: u32 = 0x22;
    pub const SUBU: u32 = 0x23;
    pub const AND: u32 = 0x24;
    pub const OR: u32 = 0x25;
    pub const XOR: u32 = 0x26;
    pub const NOR: u32 = 0x27;
    pub const SLT: u32 = 0x2A;
    pub const SLTU: u32 = 0x2B;
}

/// Error returned by [`Inst::decode`] for words that are not valid SP32
/// instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The primary opcode field is not assigned.
    UnknownOpcode { word: u32, opcode: u8 },
    /// An R-type word carries an unassigned funct field.
    UnknownFunct { word: u32, funct: u8 },
    /// A field that the format requires to be zero is non-zero.
    NonZeroField { word: u32 },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::UnknownOpcode { word, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} in word {word:#010x}")
            }
            DecodeError::UnknownFunct { word, funct } => {
                write!(f, "unknown funct {funct:#04x} in word {word:#010x}")
            }
            DecodeError::NonZeroField { word } => {
                write!(f, "non-zero must-be-zero field in word {word:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

fn enc_r(rs: Reg, rt: Reg, rd: Reg, sh: u8, funct: u32) -> u32 {
    ((rs.index() as u32) << 21)
        | ((rt.index() as u32) << 16)
        | ((rd.index() as u32) << 11)
        | (((sh & 0x1F) as u32) << 6)
        | funct
}

fn enc_i(opcode: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (opcode << 26) | ((rs.index() as u32) << 21) | ((rt.index() as u32) << 16) | imm as u32
}

impl Inst {
    /// A canonical no-op (`sll $zero, $zero, 0`), encoding to the all-zero word.
    pub const NOP: Inst = Inst::Sll {
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        sh: 0,
    };

    /// Encodes the instruction to its 32-bit binary form.
    pub fn encode(self) -> u32 {
        use Inst::*;
        let z = Reg::ZERO;
        match self {
            Sll { rd, rt, sh } => enc_r(z, rt, rd, sh, funct::SLL),
            Srl { rd, rt, sh } => enc_r(z, rt, rd, sh, funct::SRL),
            Sra { rd, rt, sh } => enc_r(z, rt, rd, sh, funct::SRA),
            Sllv { rd, rt, rs } => enc_r(rs, rt, rd, 0, funct::SLLV),
            Srlv { rd, rt, rs } => enc_r(rs, rt, rd, 0, funct::SRLV),
            Srav { rd, rt, rs } => enc_r(rs, rt, rd, 0, funct::SRAV),
            Jr { rs } => enc_r(rs, z, z, 0, funct::JR),
            Jalr { rd, rs } => enc_r(rs, z, rd, 0, funct::JALR),
            Syscall => funct::SYSCALL,
            Break => funct::BREAK,
            Mul { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::MUL),
            Div { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::DIV),
            Rem { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::REM),
            Add { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::ADD),
            Addu { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::ADDU),
            Sub { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::SUB),
            Subu { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::SUBU),
            And { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::AND),
            Or { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::OR),
            Xor { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::XOR),
            Nor { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::NOR),
            Slt { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::SLT),
            Sltu { rd, rs, rt } => enc_r(rs, rt, rd, 0, funct::SLTU),
            Addi { rt, rs, imm } => enc_i(op::ADDI, rs, rt, imm as u16),
            Slti { rt, rs, imm } => enc_i(op::SLTI, rs, rt, imm as u16),
            Sltiu { rt, rs, imm } => enc_i(op::SLTIU, rs, rt, imm as u16),
            Andi { rt, rs, imm } => enc_i(op::ANDI, rs, rt, imm),
            Ori { rt, rs, imm } => enc_i(op::ORI, rs, rt, imm),
            Xori { rt, rs, imm } => enc_i(op::XORI, rs, rt, imm),
            Lui { rt, imm } => enc_i(op::LUI, z, rt, imm),
            Lb { rt, off, base } => enc_i(op::LB, base, rt, off as u16),
            Lh { rt, off, base } => enc_i(op::LH, base, rt, off as u16),
            Lw { rt, off, base } => enc_i(op::LW, base, rt, off as u16),
            Lbu { rt, off, base } => enc_i(op::LBU, base, rt, off as u16),
            Lhu { rt, off, base } => enc_i(op::LHU, base, rt, off as u16),
            Sb { rt, off, base } => enc_i(op::SB, base, rt, off as u16),
            Sh { rt, off, base } => enc_i(op::SH, base, rt, off as u16),
            Sw { rt, off, base } => enc_i(op::SW, base, rt, off as u16),
            Beq { rs, rt, off } => enc_i(op::BEQ, rs, rt, off as u16),
            Bne { rs, rt, off } => enc_i(op::BNE, rs, rt, off as u16),
            Blez { rs, off } => enc_i(op::BLEZ, rs, z, off as u16),
            Bgtz { rs, off } => enc_i(op::BGTZ, rs, z, off as u16),
            Bltz { rs, off } => enc_i(op::REGIMM, rs, z, off as u16),
            Bgez { rs, off } => enc_i(op::REGIMM, rs, Reg::AT, off as u16),
            J { target } => (op::J << 26) | (target & 0x03FF_FFFF),
            Jal { target } => (op::JAL << 26) | (target & 0x03FF_FFFF),
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unassigned opcodes or functs and for
    /// non-zero must-be-zero fields; the decoder accepts exactly the image of
    /// [`Inst::encode`].
    pub fn decode(word: u32) -> Result<Inst, DecodeError> {
        let opcode = word >> 26;
        let rs = Reg::from_bits(word >> 21);
        let rt = Reg::from_bits(word >> 16);
        let rd = Reg::from_bits(word >> 11);
        let sh = ((word >> 6) & 0x1F) as u8;
        let imm = (word & 0xFFFF) as u16;
        let simm = imm as i16;
        let nonzero = |cond: bool| -> Result<(), DecodeError> {
            if cond {
                Err(DecodeError::NonZeroField { word })
            } else {
                Ok(())
            }
        };
        use Inst::*;
        let inst = match opcode {
            op::RTYPE => {
                let f = word & 0x3F;
                match f {
                    funct::SLL => {
                        nonzero(rs != Reg::ZERO)?;
                        Sll { rd, rt, sh }
                    }
                    funct::SRL => {
                        nonzero(rs != Reg::ZERO)?;
                        Srl { rd, rt, sh }
                    }
                    funct::SRA => {
                        nonzero(rs != Reg::ZERO)?;
                        Sra { rd, rt, sh }
                    }
                    funct::SLLV => {
                        nonzero(sh != 0)?;
                        Sllv { rd, rt, rs }
                    }
                    funct::SRLV => {
                        nonzero(sh != 0)?;
                        Srlv { rd, rt, rs }
                    }
                    funct::SRAV => {
                        nonzero(sh != 0)?;
                        Srav { rd, rt, rs }
                    }
                    funct::JR => {
                        nonzero(rt != Reg::ZERO || rd != Reg::ZERO || sh != 0)?;
                        Jr { rs }
                    }
                    funct::JALR => {
                        nonzero(rt != Reg::ZERO || sh != 0)?;
                        Jalr { rd, rs }
                    }
                    funct::SYSCALL => {
                        nonzero(word >> 6 != 0)?;
                        Syscall
                    }
                    funct::BREAK => {
                        nonzero(word >> 6 != 0)?;
                        Break
                    }
                    funct::MUL => {
                        nonzero(sh != 0)?;
                        Mul { rd, rs, rt }
                    }
                    funct::DIV => {
                        nonzero(sh != 0)?;
                        Div { rd, rs, rt }
                    }
                    funct::REM => {
                        nonzero(sh != 0)?;
                        Rem { rd, rs, rt }
                    }
                    funct::ADD => {
                        nonzero(sh != 0)?;
                        Add { rd, rs, rt }
                    }
                    funct::ADDU => {
                        nonzero(sh != 0)?;
                        Addu { rd, rs, rt }
                    }
                    funct::SUB => {
                        nonzero(sh != 0)?;
                        Sub { rd, rs, rt }
                    }
                    funct::SUBU => {
                        nonzero(sh != 0)?;
                        Subu { rd, rs, rt }
                    }
                    funct::AND => {
                        nonzero(sh != 0)?;
                        And { rd, rs, rt }
                    }
                    funct::OR => {
                        nonzero(sh != 0)?;
                        Or { rd, rs, rt }
                    }
                    funct::XOR => {
                        nonzero(sh != 0)?;
                        Xor { rd, rs, rt }
                    }
                    funct::NOR => {
                        nonzero(sh != 0)?;
                        Nor { rd, rs, rt }
                    }
                    funct::SLT => {
                        nonzero(sh != 0)?;
                        Slt { rd, rs, rt }
                    }
                    funct::SLTU => {
                        nonzero(sh != 0)?;
                        Sltu { rd, rs, rt }
                    }
                    _ => {
                        return Err(DecodeError::UnknownFunct {
                            word,
                            funct: f as u8,
                        })
                    }
                }
            }
            op::REGIMM => match rt {
                Reg::ZERO => Bltz { rs, off: simm },
                Reg::AT => Bgez { rs, off: simm },
                _ => return Err(DecodeError::NonZeroField { word }),
            },
            op::J => J {
                target: word & 0x03FF_FFFF,
            },
            op::JAL => Jal {
                target: word & 0x03FF_FFFF,
            },
            op::BEQ => Beq { rs, rt, off: simm },
            op::BNE => Bne { rs, rt, off: simm },
            op::BLEZ => {
                nonzero(rt != Reg::ZERO)?;
                Blez { rs, off: simm }
            }
            op::BGTZ => {
                nonzero(rt != Reg::ZERO)?;
                Bgtz { rs, off: simm }
            }
            op::ADDI => Addi { rt, rs, imm: simm },
            op::SLTI => Slti { rt, rs, imm: simm },
            op::SLTIU => Sltiu { rt, rs, imm: simm },
            op::ANDI => Andi { rt, rs, imm },
            op::ORI => Ori { rt, rs, imm },
            op::XORI => Xori { rt, rs, imm },
            op::LUI => {
                nonzero(rs != Reg::ZERO)?;
                Lui { rt, imm }
            }
            op::LB => Lb {
                rt,
                off: simm,
                base: rs,
            },
            op::LH => Lh {
                rt,
                off: simm,
                base: rs,
            },
            op::LW => Lw {
                rt,
                off: simm,
                base: rs,
            },
            op::LBU => Lbu {
                rt,
                off: simm,
                base: rs,
            },
            op::LHU => Lhu {
                rt,
                off: simm,
                base: rs,
            },
            op::SB => Sb {
                rt,
                off: simm,
                base: rs,
            },
            op::SH => Sh {
                rt,
                off: simm,
                base: rs,
            },
            op::SW => Sw {
                rt,
                off: simm,
                base: rs,
            },
            _ => {
                return Err(DecodeError::UnknownOpcode {
                    word,
                    opcode: opcode as u8,
                })
            }
        };
        Ok(inst)
    }

    /// Whether this is a conditional branch (PC-relative, two-way).
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Inst::Beq { .. }
                | Inst::Bne { .. }
                | Inst::Blez { .. }
                | Inst::Bgtz { .. }
                | Inst::Bltz { .. }
                | Inst::Bgez { .. }
        )
    }

    /// Whether this is an unconditional direct jump (`j`/`jal`).
    pub fn is_direct_jump(self) -> bool {
        matches!(self, Inst::J { .. } | Inst::Jal { .. })
    }

    /// Whether this is an indirect jump through a register (`jr`/`jalr`).
    pub fn is_indirect_jump(self) -> bool {
        matches!(self, Inst::Jr { .. } | Inst::Jalr { .. })
    }

    /// Whether this instruction may redirect control flow (branch, jump, or
    /// `syscall`, which can terminate the program).
    pub fn is_control_transfer(self) -> bool {
        self.is_branch()
            || self.is_direct_jump()
            || self.is_indirect_jump()
            || matches!(self, Inst::Syscall | Inst::Break)
    }

    /// Whether control can fall through to the next sequential instruction.
    ///
    /// False only for unconditional transfers (`j`, `jr`) — `jal`/`jalr`
    /// return eventually, but for *intra-procedural* control-flow purposes the
    /// next word is still reachable after the call returns, so they report
    /// `true`.
    pub fn falls_through(self) -> bool {
        !matches!(self, Inst::J { .. } | Inst::Jr { .. })
    }

    /// The branch target address, if this is a conditional branch at `pc`.
    pub fn branch_target(self, pc: u32) -> Option<u32> {
        let off = match self {
            Inst::Beq { off, .. }
            | Inst::Bne { off, .. }
            | Inst::Blez { off, .. }
            | Inst::Bgtz { off, .. }
            | Inst::Bltz { off, .. }
            | Inst::Bgez { off, .. } => off,
            _ => return None,
        };
        Some(pc.wrapping_add(4).wrapping_add(((off as i32) << 2) as u32))
    }

    /// The absolute jump target address, if this is a direct jump.
    pub fn jump_target(self) -> Option<u32> {
        match self {
            Inst::J { target } | Inst::Jal { target } => Some(target << 2),
            _ => None,
        }
    }

    /// Whether the instruction reads memory.
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Inst::Lb { .. }
                | Inst::Lh { .. }
                | Inst::Lw { .. }
                | Inst::Lbu { .. }
                | Inst::Lhu { .. }
        )
    }

    /// Whether the instruction writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, Inst::Sb { .. } | Inst::Sh { .. } | Inst::Sw { .. })
    }

    /// The register this instruction writes, if any.
    ///
    /// Writes to `$zero` are still reported; callers that care about
    /// architectural effect should filter them.
    pub fn def(self) -> Option<Reg> {
        use Inst::*;
        match self {
            Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Sllv { rd, .. }
            | Srlv { rd, .. }
            | Srav { rd, .. }
            | Jalr { rd, .. }
            | Mul { rd, .. }
            | Div { rd, .. }
            | Rem { rd, .. }
            | Add { rd, .. }
            | Addu { rd, .. }
            | Sub { rd, .. }
            | Subu { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Nor { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. } => Some(rd),
            Addi { rt, .. }
            | Slti { rt, .. }
            | Sltiu { rt, .. }
            | Andi { rt, .. }
            | Ori { rt, .. }
            | Xori { rt, .. }
            | Lui { rt, .. }
            | Lb { rt, .. }
            | Lh { rt, .. }
            | Lw { rt, .. }
            | Lbu { rt, .. }
            | Lhu { rt, .. } => Some(rt),
            Jal { .. } => Some(Reg::RA),
            _ => None,
        }
    }

    /// The registers this instruction reads (up to two).
    pub fn uses(self) -> [Option<Reg>; 2] {
        use Inst::*;
        match self {
            Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => [Some(rt), None],
            Sllv { rt, rs, .. } | Srlv { rt, rs, .. } | Srav { rt, rs, .. } => [Some(rt), Some(rs)],
            Jr { rs } | Jalr { rs, .. } => [Some(rs), None],
            Syscall => [Some(Reg::V0), Some(Reg::A0)],
            Break | Lui { .. } | J { .. } | Jal { .. } => [None, None],
            Mul { rs, rt, .. }
            | Div { rs, rt, .. }
            | Rem { rs, rt, .. }
            | Add { rs, rt, .. }
            | Addu { rs, rt, .. }
            | Sub { rs, rt, .. }
            | Subu { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Nor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. } => [Some(rs), Some(rt)],
            Addi { rs, .. }
            | Slti { rs, .. }
            | Sltiu { rs, .. }
            | Andi { rs, .. }
            | Ori { rs, .. }
            | Xori { rs, .. } => [Some(rs), None],
            Lb { base, .. }
            | Lh { base, .. }
            | Lw { base, .. }
            | Lbu { base, .. }
            | Lhu { base, .. } => [Some(base), None],
            Sb { rt, base, .. } | Sh { rt, base, .. } | Sw { rt, base, .. } => {
                [Some(base), Some(rt)]
            }
            Beq { rs, rt, .. } | Bne { rs, rt, .. } => [Some(rs), Some(rt)],
            Blez { rs, .. } | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } => {
                [Some(rs), None]
            }
        }
    }

    /// The mnemonic, as printed by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        use Inst::*;
        match self {
            Sll { .. } => "sll",
            Srl { .. } => "srl",
            Sra { .. } => "sra",
            Sllv { .. } => "sllv",
            Srlv { .. } => "srlv",
            Srav { .. } => "srav",
            Jr { .. } => "jr",
            Jalr { .. } => "jalr",
            Syscall => "syscall",
            Break => "break",
            Mul { .. } => "mul",
            Div { .. } => "div",
            Rem { .. } => "rem",
            Add { .. } => "add",
            Addu { .. } => "addu",
            Sub { .. } => "sub",
            Subu { .. } => "subu",
            And { .. } => "and",
            Or { .. } => "or",
            Xor { .. } => "xor",
            Nor { .. } => "nor",
            Slt { .. } => "slt",
            Sltu { .. } => "sltu",
            Addi { .. } => "addi",
            Slti { .. } => "slti",
            Sltiu { .. } => "sltiu",
            Andi { .. } => "andi",
            Ori { .. } => "ori",
            Xori { .. } => "xori",
            Lui { .. } => "lui",
            Lb { .. } => "lb",
            Lh { .. } => "lh",
            Lw { .. } => "lw",
            Lbu { .. } => "lbu",
            Lhu { .. } => "lhu",
            Sb { .. } => "sb",
            Sh { .. } => "sh",
            Sw { .. } => "sw",
            Beq { .. } => "beq",
            Bne { .. } => "bne",
            Blez { .. } => "blez",
            Bgtz { .. } => "bgtz",
            Bltz { .. } => "bltz",
            Bgez { .. } => "bgez",
            J { .. } => "j",
            Jal { .. } => "jal",
        }
    }
}

impl fmt::Display for Inst {
    /// Disassembles to assembler-compatible text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        let m = self.mnemonic();
        match *self {
            Sll { rd, rt, sh } | Srl { rd, rt, sh } | Sra { rd, rt, sh } => {
                write!(f, "{m} {rd}, {rt}, {sh}")
            }
            Sllv { rd, rt, rs } | Srlv { rd, rt, rs } | Srav { rd, rt, rs } => {
                write!(f, "{m} {rd}, {rt}, {rs}")
            }
            Jr { rs } => write!(f, "{m} {rs}"),
            Jalr { rd, rs } => write!(f, "{m} {rd}, {rs}"),
            Syscall | Break => write!(f, "{m}"),
            Mul { rd, rs, rt }
            | Div { rd, rs, rt }
            | Rem { rd, rs, rt }
            | Add { rd, rs, rt }
            | Addu { rd, rs, rt }
            | Sub { rd, rs, rt }
            | Subu { rd, rs, rt }
            | And { rd, rs, rt }
            | Or { rd, rs, rt }
            | Xor { rd, rs, rt }
            | Nor { rd, rs, rt }
            | Slt { rd, rs, rt }
            | Sltu { rd, rs, rt } => write!(f, "{m} {rd}, {rs}, {rt}"),
            Addi { rt, rs, imm } | Slti { rt, rs, imm } | Sltiu { rt, rs, imm } => {
                write!(f, "{m} {rt}, {rs}, {imm}")
            }
            Andi { rt, rs, imm } | Ori { rt, rs, imm } | Xori { rt, rs, imm } => {
                write!(f, "{m} {rt}, {rs}, {imm}")
            }
            Lui { rt, imm } => write!(f, "{m} {rt}, {imm}"),
            Lb { rt, off, base }
            | Lh { rt, off, base }
            | Lw { rt, off, base }
            | Lbu { rt, off, base }
            | Lhu { rt, off, base }
            | Sb { rt, off, base }
            | Sh { rt, off, base }
            | Sw { rt, off, base } => {
                write!(f, "{m} {rt}, {off}({base})")
            }
            Beq { rs, rt, off } | Bne { rs, rt, off } => write!(f, "{m} {rs}, {rt}, {off}"),
            Blez { rs, off } | Bgtz { rs, off } | Bltz { rs, off } | Bgez { rs, off } => {
                write!(f, "{m} {rs}, {off}")
            }
            J { target } | Jal { target } => write!(f, "{m} {:#x}", target << 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Inst> {
        use Inst::*;
        let (a, b, c) = (Reg::T0, Reg::S1, Reg::A2);
        vec![
            Sll {
                rd: a,
                rt: b,
                sh: 7,
            },
            Srl {
                rd: a,
                rt: b,
                sh: 31,
            },
            Sra {
                rd: a,
                rt: b,
                sh: 1,
            },
            Sllv {
                rd: a,
                rt: b,
                rs: c,
            },
            Srlv {
                rd: a,
                rt: b,
                rs: c,
            },
            Srav {
                rd: a,
                rt: b,
                rs: c,
            },
            Jr { rs: Reg::RA },
            Jalr { rd: Reg::RA, rs: a },
            Syscall,
            Break,
            Mul {
                rd: a,
                rs: b,
                rt: c,
            },
            Div {
                rd: a,
                rs: b,
                rt: c,
            },
            Rem {
                rd: a,
                rs: b,
                rt: c,
            },
            Add {
                rd: a,
                rs: b,
                rt: c,
            },
            Addu {
                rd: a,
                rs: b,
                rt: c,
            },
            Sub {
                rd: a,
                rs: b,
                rt: c,
            },
            Subu {
                rd: a,
                rs: b,
                rt: c,
            },
            And {
                rd: a,
                rs: b,
                rt: c,
            },
            Or {
                rd: a,
                rs: b,
                rt: c,
            },
            Xor {
                rd: a,
                rs: b,
                rt: c,
            },
            Nor {
                rd: a,
                rs: b,
                rt: c,
            },
            Slt {
                rd: a,
                rs: b,
                rt: c,
            },
            Sltu {
                rd: a,
                rs: b,
                rt: c,
            },
            Addi {
                rt: a,
                rs: b,
                imm: -3,
            },
            Slti {
                rt: a,
                rs: b,
                imm: 100,
            },
            Sltiu {
                rt: a,
                rs: b,
                imm: -1,
            },
            Andi {
                rt: a,
                rs: b,
                imm: 0xFFFF,
            },
            Ori {
                rt: a,
                rs: b,
                imm: 0x8000,
            },
            Xori {
                rt: a,
                rs: b,
                imm: 1,
            },
            Lui { rt: a, imm: 0x1001 },
            Lb {
                rt: a,
                off: -4,
                base: b,
            },
            Lh {
                rt: a,
                off: 2,
                base: b,
            },
            Lw {
                rt: a,
                off: 0,
                base: Reg::SP,
            },
            Lbu {
                rt: a,
                off: 1,
                base: b,
            },
            Lhu {
                rt: a,
                off: 6,
                base: b,
            },
            Sb {
                rt: a,
                off: -1,
                base: b,
            },
            Sh {
                rt: a,
                off: 8,
                base: b,
            },
            Sw {
                rt: a,
                off: 4,
                base: Reg::SP,
            },
            Beq {
                rs: a,
                rt: b,
                off: -2,
            },
            Bne {
                rs: a,
                rt: b,
                off: 5,
            },
            Blez { rs: a, off: 3 },
            Bgtz { rs: a, off: -8 },
            Bltz { rs: a, off: 12 },
            Bgez { rs: a, off: -12 },
            J { target: 0x10_0000 },
            Jal { target: 0x3FF_FFFF },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in sample_instructions() {
            let word = inst.encode();
            assert_eq!(Inst::decode(word), Ok(inst), "word {word:#010x}");
        }
    }

    #[test]
    fn nop_is_all_zero() {
        assert_eq!(Inst::NOP.encode(), 0);
        assert_eq!(Inst::decode(0), Ok(Inst::NOP));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let word = 0x3F << 26;
        assert_eq!(
            Inst::decode(word),
            Err(DecodeError::UnknownOpcode { word, opcode: 0x3F })
        );
    }

    #[test]
    fn unknown_funct_rejected() {
        let word = 0x3F;
        assert_eq!(
            Inst::decode(word),
            Err(DecodeError::UnknownFunct { word, funct: 0x3F })
        );
    }

    #[test]
    fn nonzero_required_zero_field_rejected() {
        // sll with rs != 0
        let word = enc_r(Reg::T0, Reg::T1, Reg::T2, 3, funct::SLL);
        assert_eq!(Inst::decode(word), Err(DecodeError::NonZeroField { word }));
        // syscall with stray bits
        let word = (1 << 6) | funct::SYSCALL;
        assert_eq!(Inst::decode(word), Err(DecodeError::NonZeroField { word }));
    }

    #[test]
    fn branch_target_arithmetic() {
        let b = Inst::Beq {
            rs: Reg::T0,
            rt: Reg::ZERO,
            off: -2,
        };
        // pc + 4 + (-2 << 2) = pc - 4
        assert_eq!(b.branch_target(0x0040_0010), Some(0x0040_000C));
        let f = Inst::Bne {
            rs: Reg::T0,
            rt: Reg::ZERO,
            off: 3,
        };
        assert_eq!(f.branch_target(0x0040_0000), Some(0x0040_0010));
    }

    #[test]
    fn jump_target_shifts_word_index() {
        assert_eq!(Inst::J { target: 0x10_0000 }.jump_target(), Some(0x40_0000));
        assert_eq!(Inst::Jal { target: 1 }.jump_target(), Some(4));
        assert_eq!(Inst::Syscall.jump_target(), None);
    }

    #[test]
    fn classification_predicates() {
        let beq = Inst::Beq {
            rs: Reg::T0,
            rt: Reg::T1,
            off: 1,
        };
        assert!(beq.is_branch());
        assert!(beq.is_control_transfer());
        assert!(beq.falls_through());
        let j = Inst::J { target: 0 };
        assert!(j.is_direct_jump());
        assert!(!j.falls_through());
        let jal = Inst::Jal { target: 0 };
        assert!(jal.falls_through());
        let jr = Inst::Jr { rs: Reg::RA };
        assert!(jr.is_indirect_jump());
        assert!(!jr.falls_through());
        assert!(Inst::Syscall.is_control_transfer());
        let lw = Inst::Lw {
            rt: Reg::T0,
            off: 0,
            base: Reg::SP,
        };
        assert!(lw.is_load() && !lw.is_store());
        let sw = Inst::Sw {
            rt: Reg::T0,
            off: 0,
            base: Reg::SP,
        };
        assert!(sw.is_store() && !sw.is_load());
    }

    #[test]
    fn def_and_uses() {
        let add = Inst::Add {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        };
        assert_eq!(add.def(), Some(Reg::T0));
        assert_eq!(add.uses(), [Some(Reg::T1), Some(Reg::T2)]);
        assert_eq!(Inst::Jal { target: 0 }.def(), Some(Reg::RA));
        assert_eq!(Inst::Jr { rs: Reg::RA }.def(), None);
        let sw = Inst::Sw {
            rt: Reg::T3,
            off: 0,
            base: Reg::SP,
        };
        assert_eq!(sw.def(), None);
        assert_eq!(sw.uses(), [Some(Reg::SP), Some(Reg::T3)]);
    }

    #[test]
    fn display_formats() {
        let inst = Inst::Addu {
            rd: Reg::ZERO,
            rs: Reg::T3,
            rt: Reg::S5,
        };
        assert_eq!(inst.to_string(), "addu $zero, $t3, $s5");
        let lw = Inst::Lw {
            rt: Reg::A0,
            off: -8,
            base: Reg::FP,
        };
        assert_eq!(lw.to_string(), "lw $a0, -8($fp)");
        assert_eq!(Inst::Syscall.to_string(), "syscall");
        assert_eq!(Inst::J { target: 4 }.to_string(), "j 0x10");
    }

    #[test]
    fn decode_is_exhaustive_over_encode_space() {
        // Every decodable word must re-encode to itself (decoder accepts
        // exactly the image of encode).
        let mut checked = 0u32;
        for hi in 0..64u32 {
            for sample in [0u32, 0x0155_5555, 0x02AA_AAAA, 0x03FF_FFFF] {
                let word = (hi << 26) | sample;
                if let Ok(inst) = Inst::decode(word) {
                    assert_eq!(inst.encode(), word, "word {word:#010x} decoded to {inst}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }
}
