//! [`Rng64`]: a small deterministic PRNG for the whole workspace.
//!
//! The toolchain needs randomness in three places — placement shuffling,
//! guard-salt generation and attack-mutation sampling — and in all three the
//! requirement is *reproducibility from a seed*, not cryptographic strength.
//! Keeping the generator in-repo (rather than depending on an external
//! crate) keeps the workspace buildable offline and pins the exact stream
//! across toolchain versions, so protected images and experiment tables are
//! bit-stable.
//!
//! The core is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
//! counter stepped by the golden-gamma constant and scrambled by a
//! variance-maximising finaliser. It passes BigCrush, has period 2^64, and
//! every seed — including 0 — yields an independent-looking stream.

/// A seedable deterministic pseudo-random generator (SplitMix64).
///
/// # Example
///
/// ```
/// use flexprot_isa::Rng64;
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(Rng64::new(8).next_u64() != Rng64::new(7).next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed; every seed is valid.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniform bits (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, n)` via Lemire's multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng64::below(0)");
        // Debiased multiply-shift: rejection keeps the distribution exact
        // even when n does not divide 2^64.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng64::range_inclusive({lo}, {hi})");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// The next uniform byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// The next uniform `i16`.
    pub fn next_i16(&mut self) -> i16 {
        (self.next_u64() >> 48) as u16 as i16
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A fresh generator seeded from this one (SplitMix's split operation).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the SplitMix64 description
        // (state += golden gamma, then finalise).
        let mut rng = Rng64::new(0);
        let first = rng.next_u64();
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng64::new(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut rng = Rng64::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..200 {
            match rng.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::new(4);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = Rng64::new(6);
        let mut a = parent.fork();
        let mut b = parent.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
