//! The program image: segments, symbols and relocations.
//!
//! An [`Image`] is the unit of exchange across the whole codesign toolchain:
//! the assembler produces one, the protection passes rewrite one, attacks
//! mutate one, and the simulator loads one.
//!
//! The crucial feature for a *rewriting* toolchain is the relocation table.
//! Every address-bearing field that the assembler emitted is recorded as a
//! [`Reloc`], so a later pass that moves code (e.g. register-guard insertion)
//! can re-patch every jump target, branch offset and `lui`/`ori` address pair
//! after re-layout. This mirrors real codesign/link-time protection tools,
//! which deliberately keep relocation metadata alive past linking.

use std::collections::BTreeMap;
use std::fmt;

use crate::inst::{DecodeError, Inst};
use crate::layout::{DATA_BASE, TEXT_BASE, WORD_BYTES};

/// Identifies which segment an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Executable code.
    Text,
    /// Static data.
    Data,
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Segment::Text => "text",
            Segment::Data => "data",
        })
    }
}

/// The kind of address-bearing instruction field a relocation patches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocKind {
    /// Upper 16 bits of an absolute address, in a `lui` immediate.
    Hi16,
    /// Lower 16 bits of an absolute address, in an `ori`/`addi`/load/store
    /// immediate.
    Lo16,
    /// 26-bit word-index target of `j`/`jal`.
    Jump26,
    /// 16-bit signed PC-relative word offset of a conditional branch.
    Branch16,
}

impl fmt::Display for RelocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RelocKind::Hi16 => "HI16",
            RelocKind::Lo16 => "LO16",
            RelocKind::Jump26 => "J26",
            RelocKind::Branch16 => "BR16",
        })
    }
}

/// One relocation record: "text word `text_index` contains a `kind` field
/// referring to absolute address `target`".
///
/// `target` is the *original* absolute byte address the field refers to.
/// After a rewriting pass relocates code, targets inside the text segment
/// are remapped through the pass's address map and the field re-encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reloc {
    /// Index of the patched word within the text segment.
    pub text_index: usize,
    /// Which field of that word is patched.
    pub kind: RelocKind,
    /// Absolute byte address the field refers to.
    pub target: u32,
}

/// A loadable, rewritable SP32 program.
///
/// # Example
///
/// ```
/// use flexprot_isa::{Image, Inst, Reg};
///
/// let image = Image::from_text(vec![
///     Inst::Addi { rt: Reg::V0, rs: Reg::ZERO, imm: 10 }.encode(), // exit service
///     Inst::Syscall.encode(),
/// ]);
/// assert_eq!(image.text.len(), 2);
/// assert_eq!(image.entry, image.text_base);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Address of the first instruction to execute.
    pub entry: u32,
    /// Base address of the text segment.
    pub text_base: u32,
    /// Text segment contents, one encoded instruction per word.
    pub text: Vec<u32>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Data segment contents (byte-addressed, little-endian words).
    pub data: Vec<u8>,
    /// Symbol table: label name → absolute address.
    pub symbols: BTreeMap<String, u32>,
    /// Relocation records for every address-bearing text field.
    pub relocs: Vec<Reloc>,
}

impl Image {
    /// Creates an image holding only the given text words at the default
    /// [`TEXT_BASE`], with the entry at the first word.
    pub fn from_text(text: Vec<u32>) -> Image {
        Image {
            entry: TEXT_BASE,
            text_base: TEXT_BASE,
            text,
            data_base: DATA_BASE,
            data: Vec::new(),
            symbols: BTreeMap::new(),
            relocs: Vec::new(),
        }
    }

    /// The byte address one past the last text word.
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * WORD_BYTES
    }

    /// Whether `addr` falls inside the text segment.
    pub fn contains_text_addr(&self, addr: u32) -> bool {
        addr >= self.text_base && addr < self.text_end()
    }

    /// Converts a text byte address to its word index.
    ///
    /// Returns `None` when the address is unaligned or out of range.
    pub fn text_index_of(&self, addr: u32) -> Option<usize> {
        if !self.contains_text_addr(addr) || !addr.is_multiple_of(WORD_BYTES) {
            return None;
        }
        Some(((addr - self.text_base) / WORD_BYTES) as usize)
    }

    /// Converts a text word index to its byte address.
    pub fn addr_of_index(&self, index: usize) -> u32 {
        self.text_base + (index as u32) * WORD_BYTES
    }

    /// Looks up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Word indices that every control-flow recovery must treat as
    /// basic-block leaders regardless of instruction semantics: the first
    /// text word, the entry point, and every symbol that lands in text
    /// (symbols are potential indirect-branch targets). Sorted, deduplicated,
    /// empty for an empty text segment.
    pub fn anchor_indices(&self) -> Vec<usize> {
        if self.text.is_empty() {
            return Vec::new();
        }
        let mut anchors = vec![0];
        anchors.extend(self.text_index_of(self.entry));
        anchors.extend(self.symbols.values().filter_map(|&a| self.text_index_of(a)));
        anchors.sort_unstable();
        anchors.dedup();
        anchors
    }

    /// Decodes every text word, yielding `(address, result)` pairs.
    pub fn decode_text(&self) -> impl Iterator<Item = (u32, Result<Inst, DecodeError>)> + '_ {
        self.text
            .iter()
            .enumerate()
            .map(|(i, &w)| (self.addr_of_index(i), Inst::decode(w)))
    }

    /// Disassembles the text segment into assembler-compatible lines,
    /// rendering undecodable words as `.word` directives.
    pub fn disassemble(&self) -> String {
        let mut rev: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            rev.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (addr, decoded) in self.decode_text() {
            if let Some(names) = rev.get(&addr) {
                for name in names {
                    out.push_str(name);
                    out.push_str(":\n");
                }
            }
            match decoded {
                Ok(inst) => out.push_str(&format!("    {inst:<40} # {addr:#010x}\n")),
                Err(_) => {
                    let word = self.text[self.text_index_of(addr).expect("in range")];
                    out.push_str(&format!(
                        "    .word {word:#010x}{:<21} # {addr:#010x}\n",
                        ""
                    ))
                }
            }
        }
        out
    }

    /// Total static size in bytes (text + data).
    pub fn static_size(&self) -> usize {
        self.text.len() * WORD_BYTES as usize + self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn tiny_image() -> Image {
        let mut img = Image::from_text(vec![
            Inst::Addi {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            }
            .encode(),
            Inst::Syscall.encode(),
        ]);
        img.symbols.insert("main".to_owned(), img.text_base);
        img
    }

    #[test]
    fn address_index_round_trip() {
        let img = tiny_image();
        for i in 0..img.text.len() {
            let addr = img.addr_of_index(i);
            assert_eq!(img.text_index_of(addr), Some(i));
        }
    }

    #[test]
    fn bounds_and_alignment_rejected() {
        let img = tiny_image();
        assert_eq!(img.text_index_of(img.text_base - 4), None);
        assert_eq!(img.text_index_of(img.text_end()), None);
        assert_eq!(img.text_index_of(img.text_base + 1), None);
        assert!(img.contains_text_addr(img.text_base));
        assert!(!img.contains_text_addr(img.text_end()));
    }

    #[test]
    fn disassembly_contains_labels_and_mnemonics() {
        let disasm = tiny_image().disassemble();
        assert!(disasm.contains("main:"));
        assert!(disasm.contains("addi $v0, $zero, 10"));
        assert!(disasm.contains("syscall"));
    }

    #[test]
    fn disassembly_renders_bad_words_as_data() {
        let mut img = tiny_image();
        img.text.push(0xFFFF_FFFF);
        assert!(img.disassemble().contains(".word 0xffffffff"));
    }

    #[test]
    fn static_size_counts_both_segments() {
        let mut img = tiny_image();
        img.data = vec![0; 10];
        assert_eq!(img.static_size(), 2 * 4 + 10);
    }
}
