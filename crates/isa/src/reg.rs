//! General-purpose register names and calling conventions.

use std::fmt;
use std::str::FromStr;

/// One of the 32 SP32 general-purpose registers.
///
/// `$zero` (`r0`) is hardwired to zero: writes to it retire normally but are
/// architecturally invisible. The register-guard protection exploits this to
/// embed signature symbols in executable-but-inert instructions.
///
/// The software calling convention mirrors MIPS o32:
///
/// | Register | Role |
/// |----------|------|
/// | `$zero`  | constant zero |
/// | `$at`    | assembler temporary |
/// | `$v0-$v1`| return values, syscall selector |
/// | `$a0-$a3`| arguments |
/// | `$t0-$t9`| caller-saved temporaries |
/// | `$s0-$s7`| callee-saved |
/// | `$k0-$k1`| reserved (unused by the toolchain) |
/// | `$gp`    | global pointer (unused) |
/// | `$sp`    | stack pointer |
/// | `$fp`    | frame pointer |
/// | `$ra`    | return address |
///
/// # Example
///
/// ```
/// use flexprot_isa::Reg;
/// assert_eq!(Reg::from_index(4), Some(Reg::A0));
/// assert_eq!(Reg::A0.to_string(), "$a0");
/// assert_eq!("$sp".parse::<Reg>()?, Reg::SP);
/// # Ok::<(), flexprot_isa::reg::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    pub const ZERO: Reg = Reg(0);
    pub const AT: Reg = Reg(1);
    pub const V0: Reg = Reg(2);
    pub const V1: Reg = Reg(3);
    pub const A0: Reg = Reg(4);
    pub const A1: Reg = Reg(5);
    pub const A2: Reg = Reg(6);
    pub const A3: Reg = Reg(7);
    pub const T0: Reg = Reg(8);
    pub const T1: Reg = Reg(9);
    pub const T2: Reg = Reg(10);
    pub const T3: Reg = Reg(11);
    pub const T4: Reg = Reg(12);
    pub const T5: Reg = Reg(13);
    pub const T6: Reg = Reg(14);
    pub const T7: Reg = Reg(15);
    pub const S0: Reg = Reg(16);
    pub const S1: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    pub const T8: Reg = Reg(24);
    pub const T9: Reg = Reg(25);
    pub const K0: Reg = Reg(26);
    pub const K1: Reg = Reg(27);
    pub const GP: Reg = Reg(28);
    pub const SP: Reg = Reg(29);
    pub const FP: Reg = Reg(30);
    pub const RA: Reg = Reg(31);

    /// Creates a register from its numeric index.
    ///
    /// Returns `None` if `index >= 32`.
    pub fn from_index(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// Creates a register from the low five bits of `bits`, discarding the rest.
    ///
    /// Useful when unpacking instruction fields, which are five bits wide by
    /// construction.
    pub fn from_bits(bits: u32) -> Reg {
        Reg((bits & 0x1F) as u8)
    }

    /// The numeric index, in `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// The canonical ABI name, without the leading `$`.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `$name`, `name`, `$rN` or `rN` forms.
    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        let bare = s.strip_prefix('$').unwrap_or(s);
        if let Some(reg) = Reg::all().find(|r| r.name() == bare) {
            return Ok(reg);
        }
        if let Some(num) = bare.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) {
            if let Some(reg) = Reg::from_index(num) {
                return Ok(reg);
            }
        }
        Err(ParseRegError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for i in 0..32 {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(r.index(), i);
        }
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn from_bits_masks_high_bits() {
        assert_eq!(Reg::from_bits(0x20), Reg::ZERO);
        assert_eq!(Reg::from_bits(0x3F), Reg::RA);
        assert_eq!(Reg::from_bits(4), Reg::A0);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Reg::all().map(Reg::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn parse_accepts_all_forms() {
        assert_eq!("$t3".parse::<Reg>().unwrap(), Reg::T3);
        assert_eq!("t3".parse::<Reg>().unwrap(), Reg::T3);
        assert_eq!("$r31".parse::<Reg>().unwrap(), Reg::RA);
        assert_eq!("r0".parse::<Reg>().unwrap(), Reg::ZERO);
        assert!("$bogus".parse::<Reg>().is_err());
        assert!("r32".parse::<Reg>().is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for r in Reg::all() {
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn abi_aliases_match_expected_indices() {
        assert_eq!(Reg::V0.index(), 2);
        assert_eq!(Reg::A0.index(), 4);
        assert_eq!(Reg::T0.index(), 8);
        assert_eq!(Reg::S0.index(), 16);
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::RA.index(), 31);
    }
}
