//! SP32: a small 32-bit RISC instruction set architecture.
//!
//! SP32 is the target ISA of the `flexprot` hardware/software codesign
//! protection toolchain. It is deliberately MIPS-flavoured: 32 general-purpose
//! registers with `r0` hardwired to zero, fixed-width 32-bit instruction
//! encodings, 16-bit immediates, PC-relative conditional branches and 26-bit
//! absolute jumps. Those properties are exactly what the protection passes
//! rely on:
//!
//! * fixed-width words make binary rewriting (guard insertion, relocation
//!   patching) and fetch-path encryption word-aligned and deterministic;
//! * the architectural no-op semantics of writes to `r0` let *register
//!   guards* hide keyed signatures in the register-operand fields of
//!   instructions that execute as no-ops.
//!
//! The crate provides:
//!
//! * [`Reg`] — register names and conventions,
//! * [`Inst`] — the structured instruction type with [`Inst::encode`] and
//!   [`Inst::decode`],
//! * [`Image`] — the program image (text/data segments, symbols and the
//!   relocation table that makes post-link rewriting safe),
//! * a disassembler via the [`std::fmt::Display`] impl on [`Inst`].
//!
//! # Example
//!
//! ```
//! use flexprot_isa::{Inst, Reg};
//!
//! let inst = Inst::Addi { rt: Reg::T0, rs: Reg::ZERO, imm: 42 };
//! let word = inst.encode();
//! assert_eq!(Inst::decode(word)?, inst);
//! assert_eq!(inst.to_string(), "addi $t0, $zero, 42");
//! # Ok::<(), flexprot_isa::DecodeError>(())
//! ```

pub mod image;
pub mod inst;
pub mod layout;
pub mod reg;
pub mod rng;
pub mod serialize;

pub use image::{Image, Reloc, RelocKind, Segment};
pub use inst::{DecodeError, Inst};
pub use layout::{DATA_BASE, STACK_TOP, TEXT_BASE, WORD_BYTES};
pub use reg::Reg;
pub use rng::Rng64;
pub use serialize::ImageFormatError;
