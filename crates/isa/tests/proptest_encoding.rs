//! Property tests for the instruction codec.

use flexprot_isa::{Inst, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::from_index(i).expect("in range"))
}

/// Strategy over every instruction form.
fn arb_inst() -> impl Strategy<Value = Inst> {
    let r = arb_reg;
    prop_oneof![
        (r(), r(), 0u8..32).prop_map(|(rd, rt, sh)| Inst::Sll { rd, rt, sh }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, sh)| Inst::Srl { rd, rt, sh }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, sh)| Inst::Sra { rd, rt, sh }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Inst::Sllv { rd, rt, rs }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Inst::Srlv { rd, rt, rs }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Inst::Srav { rd, rt, rs }),
        r().prop_map(|rs| Inst::Jr { rs }),
        (r(), r()).prop_map(|(rd, rs)| Inst::Jalr { rd, rs }),
        Just(Inst::Syscall),
        Just(Inst::Break),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Mul { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Div { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Rem { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Add { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Addu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Sub { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Subu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::And { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Or { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Xor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Nor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Slt { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Sltu { rd, rs, rt }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Inst::Addi { rt, rs, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Inst::Slti { rt, rs, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Inst::Sltiu { rt, rs, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Inst::Andi { rt, rs, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Inst::Ori { rt, rs, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Inst::Xori { rt, rs, imm }),
        (r(), any::<u16>()).prop_map(|(rt, imm)| Inst::Lui { rt, imm }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Lb { rt, off, base }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Lh { rt, off, base }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Lw { rt, off, base }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Lbu { rt, off, base }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Lhu { rt, off, base }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Sb { rt, off, base }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Sh { rt, off, base }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Sw { rt, off, base }),
        (r(), r(), any::<i16>()).prop_map(|(rs, rt, off)| Inst::Beq { rs, rt, off }),
        (r(), r(), any::<i16>()).prop_map(|(rs, rt, off)| Inst::Bne { rs, rt, off }),
        (r(), any::<i16>()).prop_map(|(rs, off)| Inst::Blez { rs, off }),
        (r(), any::<i16>()).prop_map(|(rs, off)| Inst::Bgtz { rs, off }),
        (r(), any::<i16>()).prop_map(|(rs, off)| Inst::Bltz { rs, off }),
        (r(), any::<i16>()).prop_map(|(rs, off)| Inst::Bgez { rs, off }),
        (0u32..(1 << 26)).prop_map(|target| Inst::J { target }),
        (0u32..(1 << 26)).prop_map(|target| Inst::Jal { target }),
    ]
}

proptest! {
    /// Every constructible instruction survives encode→decode.
    #[test]
    fn encode_decode_round_trip(inst in arb_inst()) {
        let word = inst.encode();
        prop_assert_eq!(Inst::decode(word), Ok(inst));
    }

    /// The decoder accepts exactly the image of the encoder: any decodable
    /// word re-encodes to itself.
    #[test]
    fn decoder_is_exact(word in any::<u32>()) {
        if let Ok(inst) = Inst::decode(word) {
            prop_assert_eq!(inst.encode(), word);
        }
    }

    /// Branch-target arithmetic inverts offset encoding.
    #[test]
    fn branch_target_round_trip(off in any::<i16>(), pc_words in 0u32..(1 << 20)) {
        let pc = 0x0040_0000 + pc_words * 4;
        let inst = Inst::Beq { rs: Reg::T0, rt: Reg::T1, off };
        let target = inst.branch_target(pc).expect("branch");
        let recovered = (i64::from(target) - i64::from(pc) - 4) / 4;
        prop_assert_eq!(recovered, i64::from(off));
    }

    /// `def`/`uses` never return out-of-range registers and stay stable
    /// across an encode/decode cycle.
    #[test]
    fn def_uses_stable(inst in arb_inst()) {
        let decoded = Inst::decode(inst.encode()).expect("round trip");
        prop_assert_eq!(decoded.def(), inst.def());
        prop_assert_eq!(decoded.uses(), inst.uses());
    }

    /// Display output is non-empty and starts with the mnemonic.
    #[test]
    fn display_leads_with_mnemonic(inst in arb_inst()) {
        let text = inst.to_string();
        prop_assert!(text.starts_with(inst.mnemonic()));
    }
}
