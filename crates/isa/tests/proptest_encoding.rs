//! Property tests for the instruction codec, driven by the in-repo
//! deterministic PRNG (no external dependencies, reproducible by seed).

use flexprot_isa::{Inst, Reg, Rng64};

fn reg(rng: &mut Rng64) -> Reg {
    Reg::from_index(rng.below(32) as u8).expect("in range")
}

/// Samples uniformly over every instruction form.
fn arb_inst(rng: &mut Rng64) -> Inst {
    let sh = |rng: &mut Rng64| rng.below(32) as u8;
    let u16 = |rng: &mut Rng64| rng.next_u32() as u16;
    let target = |rng: &mut Rng64| rng.below(1 << 26) as u32;
    match rng.below(46) {
        0 => Inst::Sll {
            rd: reg(rng),
            rt: reg(rng),
            sh: sh(rng),
        },
        1 => Inst::Srl {
            rd: reg(rng),
            rt: reg(rng),
            sh: sh(rng),
        },
        2 => Inst::Sra {
            rd: reg(rng),
            rt: reg(rng),
            sh: sh(rng),
        },
        3 => Inst::Sllv {
            rd: reg(rng),
            rt: reg(rng),
            rs: reg(rng),
        },
        4 => Inst::Srlv {
            rd: reg(rng),
            rt: reg(rng),
            rs: reg(rng),
        },
        5 => Inst::Srav {
            rd: reg(rng),
            rt: reg(rng),
            rs: reg(rng),
        },
        6 => Inst::Jr { rs: reg(rng) },
        7 => Inst::Jalr {
            rd: reg(rng),
            rs: reg(rng),
        },
        8 => Inst::Syscall,
        9 => Inst::Break,
        10 => Inst::Mul {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        11 => Inst::Div {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        12 => Inst::Rem {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        13 => Inst::Add {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        14 => Inst::Addu {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        15 => Inst::Sub {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        16 => Inst::Subu {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        17 => Inst::And {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        18 => Inst::Or {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        19 => Inst::Xor {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        20 => Inst::Nor {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        21 => Inst::Slt {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        22 => Inst::Sltu {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        23 => Inst::Addi {
            rt: reg(rng),
            rs: reg(rng),
            imm: rng.next_i16(),
        },
        24 => Inst::Slti {
            rt: reg(rng),
            rs: reg(rng),
            imm: rng.next_i16(),
        },
        25 => Inst::Sltiu {
            rt: reg(rng),
            rs: reg(rng),
            imm: rng.next_i16(),
        },
        26 => Inst::Andi {
            rt: reg(rng),
            rs: reg(rng),
            imm: u16(rng),
        },
        27 => Inst::Ori {
            rt: reg(rng),
            rs: reg(rng),
            imm: u16(rng),
        },
        28 => Inst::Xori {
            rt: reg(rng),
            rs: reg(rng),
            imm: u16(rng),
        },
        29 => Inst::Lui {
            rt: reg(rng),
            imm: u16(rng),
        },
        30 => Inst::Lb {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        31 => Inst::Lh {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        32 => Inst::Lw {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        33 => Inst::Lbu {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        34 => Inst::Lhu {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        35 => Inst::Sb {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        36 => Inst::Sh {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        37 => Inst::Sw {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        38 => Inst::Beq {
            rs: reg(rng),
            rt: reg(rng),
            off: rng.next_i16(),
        },
        39 => Inst::Bne {
            rs: reg(rng),
            rt: reg(rng),
            off: rng.next_i16(),
        },
        40 => Inst::Blez {
            rs: reg(rng),
            off: rng.next_i16(),
        },
        41 => Inst::Bgtz {
            rs: reg(rng),
            off: rng.next_i16(),
        },
        42 => Inst::Bltz {
            rs: reg(rng),
            off: rng.next_i16(),
        },
        43 => Inst::Bgez {
            rs: reg(rng),
            off: rng.next_i16(),
        },
        44 => Inst::J {
            target: target(rng),
        },
        _ => Inst::Jal {
            target: target(rng),
        },
    }
}

/// Every constructible instruction survives encode→decode.
#[test]
fn encode_decode_round_trip() {
    let mut rng = Rng64::new(0xE2C0_DE01);
    for _ in 0..4000 {
        let inst = arb_inst(&mut rng);
        let word = inst.encode();
        assert_eq!(Inst::decode(word), Ok(inst), "word {word:#010x}");
    }
}

/// The decoder accepts exactly the image of the encoder: any decodable
/// word re-encodes to itself.
#[test]
fn decoder_is_exact() {
    let mut rng = Rng64::new(0xE2C0_DE02);
    for _ in 0..40_000 {
        let word = rng.next_u32();
        if let Ok(inst) = Inst::decode(word) {
            assert_eq!(inst.encode(), word, "{inst}");
        }
    }
}

/// Branch-target arithmetic inverts offset encoding.
#[test]
fn branch_target_round_trip() {
    let mut rng = Rng64::new(0xE2C0_DE03);
    for _ in 0..4000 {
        let off = rng.next_i16();
        let pc = 0x0040_0000 + rng.below(1 << 20) as u32 * 4;
        let inst = Inst::Beq {
            rs: Reg::T0,
            rt: Reg::T1,
            off,
        };
        let target = inst.branch_target(pc).expect("branch");
        let recovered = (i64::from(target) - i64::from(pc) - 4) / 4;
        assert_eq!(recovered, i64::from(off));
    }
}

/// `def`/`uses` never return out-of-range registers and stay stable
/// across an encode/decode cycle.
#[test]
fn def_uses_stable() {
    let mut rng = Rng64::new(0xE2C0_DE04);
    for _ in 0..4000 {
        let inst = arb_inst(&mut rng);
        let decoded = Inst::decode(inst.encode()).expect("round trip");
        assert_eq!(decoded.def(), inst.def());
        assert_eq!(decoded.uses(), inst.uses());
    }
}

/// Display output is non-empty and starts with the mnemonic.
#[test]
fn display_leads_with_mnemonic() {
    let mut rng = Rng64::new(0xE2C0_DE05);
    for _ in 0..4000 {
        let inst = arb_inst(&mut rng);
        assert!(inst.to_string().starts_with(inst.mnemonic()));
    }
}
