//! Minimal micro-benchmark harness for the `benches/` targets.
//!
//! The experiment tables are produced by the `experiments` binary; the
//! bench targets only need wall-clock timings of isolated operations, so
//! this self-contained harness (calibrated iteration count, fixed sample
//! count, min/median/mean report) replaces an external benchmarking
//! dependency. Run with `cargo bench -p flexprot-bench`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample timing state handed to the closure under measurement.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `f` repeatedly, collecting per-iteration timings.
    ///
    /// The iteration count is calibrated until one sample takes ≳2 ms, then
    /// a fixed number of samples is recorded.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up (fills caches, faults pages)
        self.iters = 1;
        loop {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            if start.elapsed() >= Duration::from_millis(2) || self.iters >= 1 << 20 {
                break;
            }
            self.iters *= 2;
        }
        const SAMPLES: usize = 10;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters as u32);
        }
    }
}

/// The registry each bench target drives: collects named measurements and
/// prints one summary line per benchmark.
#[derive(Default)]
pub struct Bench;

impl Bench {
    /// Creates the harness.
    pub fn new() -> Bench {
        Bench
    }

    /// Measures `f` (which must call [`Bencher::iter`]) and prints the
    /// timing summary for `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: 1,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.samples.clone();
        sorted.sort_unstable();
        let (min, median) = match sorted.len() {
            0 => (Duration::ZERO, Duration::ZERO),
            n => (sorted[0], sorted[n / 2]),
        };
        let mean = sorted
            .iter()
            .sum::<Duration>()
            .checked_div(sorted.len().max(1) as u32)
            .unwrap_or(Duration::ZERO);
        println!(
            "{name:<40} min {:>12} median {:>12} mean {:>12} ({} iters/sample)",
            format_duration(min),
            format_duration(median),
            format_duration(mean),
            bencher.iters,
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Bench::new();
        let mut calls = 0u64;
        c.bench_function("micro/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 10, "iter must actually loop, got {calls}");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(format_duration(Duration::from_secs(5)), "5.00 s");
    }
}
