//! Experiment runners for every table and figure of the evaluation.
//!
//! Each `tN_*`/`fN_*` function regenerates one artifact of the
//! reconstructed DATE-2004 evaluation (see `DESIGN.md` for the index and
//! `EXPERIMENTS.md` for recorded results):
//!
//! | id | artifact |
//! |----|----------|
//! | T1 | workload characterization |
//! | T2 | static code-size overhead vs guard density |
//! | F1 | runtime overhead vs guard density |
//! | F2 | runtime overhead vs decrypt latency (serial/pipelined) |
//! | F3 | runtime overhead vs I-cache size |
//! | T3 | tamper-detection coverage matrix |
//! | F4 | flexibility Pareto: coverage vs overhead budget |
//! | T4 | placement-policy ablation |
//! | F5 | estimator accuracy |
//! | T5 | re-protection diversity |
//! | T6 | static stealth metrics |
//! | F6 | detection-latency distribution |
//!
//! Run them all with `cargo run --release -p flexprot-bench --bin
//! experiments` (add `--quick` for a fast subset).

pub mod micro;
pub mod table;

use flexprot_attack::{evaluate, Attack};
use flexprot_core::{
    optimize, protect, EncryptConfig, GuardConfig, OptimizerConfig, Placement, Profile, Protected,
    ProtectionConfig, Selection,
};
use flexprot_isa::Image;
use flexprot_secmon::DecryptModel;
use flexprot_sim::{CacheConfig, Machine, Outcome, RunResult, SimConfig};
use flexprot_trace::Recorder;
use flexprot_workloads::Workload;

pub use table::Table;

/// Master keys used across experiments (fixed for reproducibility).
pub const GUARD_KEY: u64 = 0x0BAD_C0DE_CAFE_F00D;
/// Encryption master key.
pub const ENC_KEY: u64 = 0x5EED_5EED_5EED_5EED;

/// Global experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Reduced workload set and trial counts for smoke runs.
    pub quick: bool,
}

impl Params {
    /// The workloads an experiment iterates over.
    pub fn workloads(&self) -> Vec<Workload> {
        let all = flexprot_workloads::all();
        if self.quick {
            all.into_iter()
                .filter(|w| matches!(w.name, "rle" | "qsort" | "dijkstra"))
                .collect()
        } else {
            all
        }
    }

    /// Lighter-weight kernels used for the attack matrix (many trials).
    pub fn attack_workloads(&self) -> Vec<Workload> {
        let names: &[&str] = if self.quick {
            &["rle"]
        } else {
            &["rle", "strsearch", "adpcm"]
        };
        flexprot_workloads::all()
            .into_iter()
            .filter(|w| names.contains(&w.name))
            .collect()
    }

    /// Guard densities swept in T2/F1.
    pub fn densities(&self) -> Vec<f64> {
        if self.quick {
            vec![0.25, 1.0]
        } else {
            vec![0.1, 0.25, 0.5, 0.75, 1.0]
        }
    }

    /// Attack trials per (workload, config, attack) cell in T3.
    pub fn trials(&self) -> u32 {
        if self.quick {
            6
        } else {
            20
        }
    }
}

/// A workload's baseline artifacts, shared by several experiments.
pub struct Baseline {
    /// The unprotected image.
    pub image: Image,
    /// Its clean run under `sim`.
    pub run: RunResult,
    /// Its execution profile.
    pub profile: Profile,
}

/// Runs the unprotected baseline with profiling.
///
/// # Panics
///
/// Panics when the workload does not exit cleanly with its reference
/// output — the substrate would be broken.
pub fn baseline(workload: &Workload, sim: &SimConfig) -> Baseline {
    let image = workload.image();
    let (profile, run) = Profile::collect(&image, sim);
    assert_eq!(run.outcome, Outcome::Exit(0), "{} crashed", workload.name);
    assert_eq!(
        run.output,
        workload.expected_output(),
        "{} output mismatch",
        workload.name
    );
    Baseline {
        image,
        run,
        profile,
    }
}

/// Relative overhead in percent.
pub fn overhead_pct(base_cycles: u64, cycles: u64) -> f64 {
    (cycles as f64 - base_cycles as f64) / base_cycles as f64 * 100.0
}

fn fmt_pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Protects and runs, asserting semantic preservation.
fn run_protected(workload: &Workload, protected: &Protected, sim: &SimConfig) -> RunResult {
    let result = protected.run(sim.clone());
    assert_eq!(
        result.outcome,
        Outcome::Exit(0),
        "{} failed under protection",
        workload.name
    );
    assert_eq!(
        result.output,
        workload.expected_output(),
        "{} output corrupted by protection",
        workload.name
    );
    result
}

/// Cycle components of one run, read from the trace histograms: the pure
/// memory miss path versus the stall attributable to the decrypt unit.
#[derive(Debug, Clone, Copy)]
pub struct CycleBreakdown {
    /// Cycles spent on I-cache line fills (memory latency + burst), before
    /// any monitor penalty.
    pub miss_fill_cycles: u64,
    /// Extra fill cycles charged by the secure monitor's decrypt unit.
    pub decrypt_stall_cycles: u64,
}

/// Runs a protected image with a [`Recorder`] attached and splits its
/// cycles into miss-path and decrypt-stall components (histogram sums).
///
/// Asserts semantic preservation like [`run_protected`].
fn run_protected_traced(
    workload: &Workload,
    protected: &Protected,
    sim: &SimConfig,
) -> (RunResult, CycleBreakdown) {
    let (sink, recorder) = Recorder::new().shared();
    let result = protected.run_traced(sim.clone(), &sink);
    assert_eq!(
        result.outcome,
        Outcome::Exit(0),
        "{} failed under protection",
        workload.name
    );
    assert_eq!(
        result.output,
        workload.expected_output(),
        "{} output corrupted by protection",
        workload.name
    );
    let recorder = recorder.borrow();
    let metrics = recorder.metrics();
    let breakdown = CycleBreakdown {
        miss_fill_cycles: metrics
            .histogram("icache_fill_cycles")
            .map_or(0, |h| h.sum()),
        decrypt_stall_cycles: metrics
            .histogram("decrypt_stall_cycles")
            .map_or(0, |h| h.sum()),
    };
    (result, breakdown)
}

fn guard_config(density: f64, placement: Placement) -> GuardConfig {
    GuardConfig {
        key: GUARD_KEY,
        seed: 7,
        placement,
        selection: Selection::Density(density),
        enforce_spacing: true,
    }
}

/// T1 — workload characterization.
pub fn t1_characterize(params: &Params) -> Table {
    let sim = SimConfig::default();
    let mut table = Table::new(
        "T1",
        "Workload characterization (baseline, default caches)",
        &[
            "workload",
            "text-words",
            "data-bytes",
            "dyn-instrs",
            "cycles",
            "CPI",
            "icache-miss%",
            "dcache-miss%",
        ],
    );
    for w in params.workloads() {
        let b = baseline(&w, &sim);
        table.push(vec![
            w.name.to_owned(),
            b.image.text.len().to_string(),
            b.image.data.len().to_string(),
            b.run.stats.instructions.to_string(),
            b.run.stats.cycles.to_string(),
            format!("{:.3}", b.run.stats.cpi()),
            format!("{:.3}", b.run.stats.icache_miss_rate() * 100.0),
            format!("{:.3}", b.run.stats.dcache_miss_rate() * 100.0),
        ]);
    }
    table
}

/// T2 — static code-size overhead vs guard density.
pub fn t2_size_overhead(params: &Params) -> Table {
    let mut headers = vec!["workload".to_owned(), "words".to_owned()];
    for d in params.densities() {
        headers.push(format!("+%@d={d}"));
    }
    let mut table = Table::with_headers(
        "T2",
        "Static code-size overhead (%) vs guard density",
        headers,
    );
    for w in params.workloads() {
        let image = w.image();
        let mut row = vec![w.name.to_owned(), image.text.len().to_string()];
        for d in params.densities() {
            let config = ProtectionConfig::new().with_guards(guard_config(d, Placement::Uniform));
            let protected = protect(&image, &config, None).expect("protect");
            row.push(fmt_pct(protected.report.size_overhead_fraction() * 100.0));
        }
        table.push(row);
    }
    table
}

/// F1 — runtime overhead vs guard density.
pub fn f1_guard_density(params: &Params) -> Table {
    let sim = SimConfig::default();
    let mut headers = vec!["workload".to_owned()];
    for d in params.densities() {
        headers.push(format!("+%@d={d}"));
    }
    let mut table = Table::with_headers(
        "F1",
        "Runtime overhead (%) vs guard density (guards only, uniform placement)",
        headers,
    );
    for w in params.workloads() {
        let b = baseline(&w, &sim);
        let mut row = vec![w.name.to_owned()];
        for d in params.densities() {
            let config = ProtectionConfig::new().with_guards(guard_config(d, Placement::Uniform));
            let protected = protect(&b.image, &config, Some(&b.profile)).expect("protect");
            let r = run_protected(&w, &protected, &sim);
            row.push(fmt_pct(overhead_pct(b.run.stats.cycles, r.stats.cycles)));
        }
        table.push(row);
    }
    table
}

/// F2 — runtime overhead vs decrypt latency (whole-program encryption).
pub fn f2_decrypt_latency(params: &Params) -> Table {
    let sim = SimConfig::default();
    let cpws: &[u64] = if params.quick {
        &[2, 8]
    } else {
        &[0, 1, 2, 4, 8]
    };
    let mut headers = vec!["workload".to_owned()];
    for &c in cpws {
        headers.push(format!("serial@{c}"));
        headers.push(format!("pipe@{c}"));
    }
    // Trace-derived breakdown columns are appended AFTER the overhead block
    // so the established column positions stay stable.
    for &c in cpws {
        for mode in ["ser", "pipe"] {
            headers.push(format!("dstall%@{c}{mode}"));
            headers.push(format!("miss%@{c}{mode}"));
        }
    }
    let mut table = Table::with_headers(
        "F2",
        "Runtime overhead (%) vs decrypt cycles/word (whole-program encryption)",
        headers,
    );
    for w in params.workloads() {
        let b = baseline(&w, &sim);
        let mut row = vec![w.name.to_owned()];
        let mut breakdown = Vec::new();
        for &cpw in cpws {
            for pipelined in [false, true] {
                let model = DecryptModel {
                    cycles_per_word: cpw,
                    startup: 4,
                    pipelined,
                };
                let enc = EncryptConfig {
                    model,
                    ..EncryptConfig::whole_program(ENC_KEY)
                };
                let config = ProtectionConfig::new().with_encryption(enc);
                let protected = protect(&b.image, &config, None).expect("protect");
                let (r, split) = run_protected_traced(&w, &protected, &sim);
                row.push(fmt_pct(overhead_pct(b.run.stats.cycles, r.stats.cycles)));
                let base = b.run.stats.cycles as f64;
                breakdown.push(fmt_pct(split.decrypt_stall_cycles as f64 / base * 100.0));
                breakdown.push(fmt_pct(split.miss_fill_cycles as f64 / base * 100.0));
            }
        }
        row.extend(breakdown);
        table.push(row);
    }
    table
}

/// F3 — runtime overhead of encryption vs I-cache size.
pub fn f3_icache_sweep(params: &Params) -> Table {
    let sizes: &[u32] = if params.quick {
        &[256, 4096]
    } else {
        &[128, 256, 512, 1024, 2048, 4096, 8192]
    };
    let mut headers = vec!["workload".to_owned()];
    for &s in sizes {
        headers.push(format!("+%@{s}B"));
        headers.push(format!("miss%@{s}B"));
    }
    // Trace-derived breakdown columns, appended at the row end (see F2).
    for &s in sizes {
        headers.push(format!("dstall%@{s}B"));
        headers.push(format!("fill%@{s}B"));
    }
    let mut table = Table::with_headers(
        "F3",
        "Encryption overhead (%) and baseline miss rate vs I-cache size",
        headers,
    );
    for w in params.workloads() {
        let mut row = vec![w.name.to_owned()];
        let mut breakdown = Vec::new();
        for &size in sizes {
            let sim = SimConfig {
                icache: CacheConfig {
                    size_bytes: size,
                    line_bytes: 32,
                    ways: 2,
                },
                ..SimConfig::default()
            };
            let b = baseline(&w, &sim);
            let config =
                ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(ENC_KEY));
            let protected = protect(&b.image, &config, None).expect("protect");
            let (r, split) = run_protected_traced(&w, &protected, &sim);
            row.push(fmt_pct(overhead_pct(b.run.stats.cycles, r.stats.cycles)));
            row.push(format!("{:.3}", b.run.stats.icache_miss_rate() * 100.0));
            let base = b.run.stats.cycles as f64;
            breakdown.push(fmt_pct(split.decrypt_stall_cycles as f64 / base * 100.0));
            breakdown.push(fmt_pct(split.miss_fill_cycles as f64 / base * 100.0));
        }
        row.extend(breakdown);
        table.push(row);
    }
    table
}

/// The four protection configurations of the T3 matrix.
pub fn t3_configs() -> Vec<(&'static str, ProtectionConfig)> {
    vec![
        ("none", ProtectionConfig::new()),
        (
            "guards",
            ProtectionConfig::new().with_guards(guard_config(1.0, Placement::Uniform)),
        ),
        (
            "enc",
            ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(ENC_KEY)),
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(guard_config(1.0, Placement::Uniform))
                .with_encryption(EncryptConfig::whole_program(ENC_KEY)),
        ),
    ]
}

/// T3 — tamper-detection coverage matrix.
pub fn t3_detection(params: &Params) -> Table {
    let mut table = Table::new(
        "T3",
        "Tamper-detection coverage (aggregated over attack workloads)",
        &[
            "config",
            "attack",
            "applied",
            "detected",
            "faulted",
            "wrong-out",
            "benign",
            "det-rate%",
            "atk-success%",
            "mean-latency",
        ],
    );
    for (config_name, config) in t3_configs() {
        for attack in Attack::all() {
            let mut agg = flexprot_attack::AttackSummary::default();
            for w in params.attack_workloads() {
                let image = w.image();
                let base = Machine::new(&image, SimConfig::default()).run();
                let protected = protect(&image, &config, None).expect("protect");
                let sim = SimConfig {
                    max_instructions: base.stats.instructions * 4 + 10_000,
                    ..SimConfig::default()
                };
                let s = evaluate(
                    &protected,
                    &w.expected_output(),
                    attack,
                    params.trials(),
                    0xA77A_C4E5,
                    &sim,
                );
                agg.merge(&s);
            }
            table.push(vec![
                config_name.to_owned(),
                attack.name().to_owned(),
                agg.applied.to_string(),
                agg.detected.to_string(),
                agg.faulted.to_string(),
                agg.wrong_output.to_string(),
                agg.benign.to_string(),
                fmt_pct(agg.detection_rate() * 100.0),
                fmt_pct(agg.attacker_success_rate() * 100.0),
                agg.mean_latency()
                    .map_or_else(|| "-".to_owned(), |l| format!("{l:.0}")),
            ]);
        }
    }
    table
}

/// F4 — the flexibility Pareto frontier: coverage vs overhead budget.
pub fn f4_pareto(params: &Params) -> Table {
    let sim = SimConfig::default();
    let budgets: &[f64] = if params.quick {
        &[0.02, 0.2]
    } else {
        &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5]
    };
    let mut table = Table::new(
        "F4",
        "Profile-guided budget optimizer: coverage vs measured overhead",
        &[
            "workload",
            "budget%",
            "coverage",
            "est+%",
            "measured+%",
            "guards",
            "enc-fns",
        ],
    );
    for w in params.workloads() {
        let b = baseline(&w, &sim);
        let cfg = flexprot_core::Cfg::recover(&b.image).expect("cfg");
        for &budget in budgets {
            let opt = OptimizerConfig {
                budget_fraction: budget,
                ..OptimizerConfig::default()
            };
            let plan = optimize(&b.image, &cfg, &b.profile, &opt);
            // The optimizer costs exactly the policy selection, so the
            // spacing-enforcement extras (which it cannot see) are disabled
            // here; signature checks alone carry the integrity story.
            let config = ProtectionConfig::from_plan(
                &plan,
                GuardConfig {
                    enforce_spacing: false,
                    ..guard_config(0.0, Placement::ColdestFirst)
                },
                EncryptConfig::whole_program(ENC_KEY),
            );
            let protected = protect(&b.image, &config, Some(&b.profile)).expect("protect");
            let r = run_protected(&w, &protected, &sim);
            let enc_fns = plan.functions.values().filter(|f| f.encrypt).count();
            table.push(vec![
                w.name.to_owned(),
                fmt_pct(budget * 100.0),
                format!("{:.3}", plan.coverage),
                fmt_pct(plan.est_extra_cycles as f64 / b.run.stats.cycles as f64 * 100.0),
                fmt_pct(overhead_pct(b.run.stats.cycles, r.stats.cycles)),
                protected.report.guards_inserted.to_string(),
                enc_fns.to_string(),
            ]);
        }
    }
    table
}

/// T4 — placement-policy ablation at matched density.
pub fn t4_placement(params: &Params) -> Table {
    let sim = SimConfig::default();
    let density = 0.3;
    let policies = [
        ("uniform", Placement::Uniform),
        ("random", Placement::Random),
        ("coldest", Placement::ColdestFirst),
        ("loop-hdr", Placement::LoopHeaders),
    ];
    let mut headers = vec!["workload".to_owned()];
    for (name, _) in policies {
        headers.push(format!("+%{name}"));
    }
    let mut table = Table::with_headers(
        "T4",
        "Runtime overhead (%) by placement policy (density 0.3)",
        headers,
    );
    for w in params.workloads() {
        let b = baseline(&w, &sim);
        let mut row = vec![w.name.to_owned()];
        for (_, placement) in policies {
            let config = ProtectionConfig::new().with_guards(guard_config(density, placement));
            let protected = protect(&b.image, &config, Some(&b.profile)).expect("protect");
            let r = run_protected(&w, &protected, &sim);
            row.push(fmt_pct(overhead_pct(b.run.stats.cycles, r.stats.cycles)));
        }
        table.push(row);
    }
    table
}

/// F5 — estimator accuracy: predicted vs measured overhead.
pub fn f5_estimator(params: &Params) -> Table {
    let sim = SimConfig::default();
    let mut table = Table::new(
        "F5",
        "Estimator accuracy: predicted vs measured overhead (%)",
        &["workload", "config", "est+%", "measured+%", "abs-err"],
    );
    let line_words = SimConfig::default().icache.line_words();
    for w in params.workloads() {
        let b = baseline(&w, &sim);
        let cfg = flexprot_core::Cfg::recover(&b.image).expect("cfg");
        let cases: Vec<(&str, ProtectionConfig)> = vec![
            (
                "guards d=0.25",
                ProtectionConfig::new().with_guards(guard_config(0.25, Placement::Uniform)),
            ),
            (
                "guards d=1.0",
                ProtectionConfig::new().with_guards(guard_config(1.0, Placement::Uniform)),
            ),
            (
                "enc program",
                ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(ENC_KEY)),
            ),
        ];
        for (name, config) in cases {
            // Estimate on the baseline layout, mirroring the pass's actual
            // selection (including loop-header enforcement).
            let selected = match &config.guards {
                Some(g) => flexprot_core::select_guard_blocks(&b.image, &cfg, g, Some(&b.profile))
                    .expect("selection"),
                None => Default::default(),
            };
            let ranges: Vec<(u32, u32)> = if config.encryption.is_some() {
                vec![(b.image.text_base, b.image.text_end())]
            } else {
                vec![]
            };
            let est = flexprot_core::estimate(
                &b.image,
                &cfg,
                &selected,
                &ranges,
                DecryptModel::baseline(),
                line_words,
                &b.profile,
            );
            let protected = protect(&b.image, &config, Some(&b.profile)).expect("protect");
            let r = run_protected(&w, &protected, &sim);
            let est_pct = est.overhead_fraction() * 100.0;
            let meas_pct = overhead_pct(b.run.stats.cycles, r.stats.cycles);
            table.push(vec![
                w.name.to_owned(),
                name.to_owned(),
                fmt_pct(est_pct),
                fmt_pct(meas_pct),
                fmt_pct((est_pct - meas_pct).abs()),
            ]);
        }
    }
    table
}

/// T5 — protection diversity: how different two independent protections of
/// the same program look (anti-pattern-matching property).
pub fn t5_diversity(params: &Params) -> Table {
    let mut table = Table::new(
        "T5",
        "Re-protection diversity: fraction of differing text words",
        &["workload", "guards-reseed%", "enc-rekey%", "combined%"],
    );
    for w in params.workloads() {
        let image = w.image();
        let guarded = |seed: u64| {
            let config = ProtectionConfig::new().with_guards(GuardConfig {
                seed,
                key: GUARD_KEY ^ seed,
                ..guard_config(0.5, Placement::Uniform)
            });
            protect(&image, &config, None).expect("protect").image
        };
        let encrypted = |key: u64| {
            let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(key));
            protect(&image, &config, None).expect("protect").image
        };
        let combined = |seed: u64| {
            let config = ProtectionConfig::new()
                .with_guards(GuardConfig {
                    seed,
                    key: GUARD_KEY ^ seed,
                    ..guard_config(0.5, Placement::Uniform)
                })
                .with_encryption(EncryptConfig::whole_program(ENC_KEY ^ seed));
            protect(&image, &config, None).expect("protect").image
        };
        let diversity = flexprot_attack::analysis::word_diversity;
        table.push(vec![
            w.name.to_owned(),
            fmt_pct(diversity(&guarded(1), &guarded(2)) * 100.0),
            fmt_pct(diversity(&encrypted(1), &encrypted(2)) * 100.0),
            fmt_pct(diversity(&combined(1), &combined(2)) * 100.0),
        ]);
    }
    table
}

/// T6 — stealth: what an attacker's static scanner sees.
pub fn t6_stealth(params: &Params) -> Table {
    use flexprot_attack::analysis::{guard_like_runs, text_entropy_bits, undecodable_fraction};
    let mut table = Table::new(
        "T6",
        "Static stealth metrics (guard-run scanner, entropy, decodability)",
        &[
            "workload",
            "config",
            "guard-runs",
            "entropy-b/B",
            "undecodable%",
        ],
    );
    for w in params.workloads() {
        let image = w.image();
        let cases: Vec<(&str, Image)> = vec![
            ("plain", image.clone()),
            (
                "guards",
                protect(
                    &image,
                    &ProtectionConfig::new().with_guards(guard_config(1.0, Placement::Uniform)),
                    None,
                )
                .expect("protect")
                .image,
            ),
            (
                "guards+enc",
                protect(
                    &image,
                    &ProtectionConfig::new()
                        .with_guards(guard_config(1.0, Placement::Uniform))
                        .with_encryption(EncryptConfig::whole_program(ENC_KEY)),
                    None,
                )
                .expect("protect")
                .image,
            ),
        ];
        for (name, img) in cases {
            table.push(vec![
                w.name.to_owned(),
                name.to_owned(),
                guard_like_runs(&img, 4).to_string(),
                format!("{:.3}", text_entropy_bits(&img)),
                fmt_pct(undecodable_fraction(&img) * 100.0),
            ]);
        }
    }
    table
}

/// F6 — detection-latency distribution under full guards.
pub fn f6_latency(params: &Params) -> Table {
    let mut table = Table::new(
        "F6",
        "Detection latency distribution (instructions; guards, density 1.0)",
        &["attack", "detections", "min", "p50", "p90", "max", "mean"],
    );
    let config = ProtectionConfig::new().with_guards(guard_config(1.0, Placement::Uniform));
    for attack in Attack::all() {
        let mut agg = flexprot_attack::AttackSummary::default();
        for w in params.attack_workloads() {
            let image = w.image();
            let base = Machine::new(&image, SimConfig::default()).run();
            let protected = protect(&image, &config, None).expect("protect");
            let sim = SimConfig {
                max_instructions: base.stats.instructions * 4 + 10_000,
                ..SimConfig::default()
            };
            agg.merge(&evaluate(
                &protected,
                &w.expected_output(),
                attack,
                params.trials(),
                0xF6,
                &sim,
            ));
        }
        let q = |v: f64| {
            agg.latency_quantile(v)
                .map_or_else(|| "-".to_owned(), |x| x.to_string())
        };
        table.push(vec![
            attack.name().to_owned(),
            agg.detected.to_string(),
            q(0.0),
            q(0.5),
            q(0.9),
            q(1.0),
            agg.mean_latency()
                .map_or_else(|| "-".to_owned(), |m| format!("{m:.0}")),
        ]);
    }
    table
}

/// Runs every experiment in order.
pub fn run_all(params: &Params) -> Vec<Table> {
    vec![
        t1_characterize(params),
        t2_size_overhead(params),
        f1_guard_density(params),
        f2_decrypt_latency(params),
        f3_icache_sweep(params),
        t3_detection(params),
        f4_pareto(params),
        t4_placement(params),
        f5_estimator(params),
        t5_diversity(params),
        t6_stealth(params),
        f6_latency(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Params = Params { quick: true };

    #[test]
    fn t1_rows_cover_quick_workloads() {
        let t = t1_characterize(&QUICK);
        assert_eq!(t.rows.len(), QUICK.workloads().len());
    }

    #[test]
    fn f1_overheads_increase_with_density() {
        let t = f1_guard_density(&QUICK);
        for row in &t.rows {
            let low: f64 = row[1].parse().unwrap();
            let high: f64 = row[2].parse().unwrap();
            assert!(high >= low, "row {row:?}");
            assert!(low >= 0.0);
        }
    }

    #[test]
    fn f2_serial_costs_at_least_pipelined() {
        let t = f2_decrypt_latency(&QUICK);
        for row in &t.rows {
            // columns: name, serial@2, pipe@2, serial@8, pipe@8
            let serial8: f64 = row[3].parse().unwrap();
            let pipe8: f64 = row[4].parse().unwrap();
            assert!(serial8 >= pipe8 - 0.01, "row {row:?}");
        }
    }

    #[test]
    fn f2_breakdown_attributes_overhead_to_decrypt_stall() {
        let t = f2_decrypt_latency(&QUICK);
        for row in &t.rows {
            // Columns: name, serial@2, pipe@2, serial@8, pipe@8, then the
            // appended (dstall, miss) pairs for 2ser/2pipe/8ser/8pipe.
            let serial8: f64 = row[3].parse().unwrap();
            let dstall8: f64 = row[9].parse().unwrap();
            let miss8: f64 = row[10].parse().unwrap();
            // Whole-program encryption changes no layout, so the entire
            // overhead is decrypt stall — the trace must reconcile.
            assert!((serial8 - dstall8).abs() < 0.02, "row {row:?}");
            assert!(miss8 > 0.0, "row {row:?}");
        }
    }

    #[test]
    fn f3_breakdown_shrinks_with_larger_icache() {
        let t = f3_icache_sweep(&QUICK);
        for row in &t.rows {
            // Columns: name, +%@256B, miss%@256B, +%@4096B, miss%@4096B,
            // then appended dstall%/fill% per size.
            let dstall_small: f64 = row[5].parse().unwrap();
            let fill_small: f64 = row[6].parse().unwrap();
            let dstall_large: f64 = row[7].parse().unwrap();
            let fill_large: f64 = row[8].parse().unwrap();
            assert!(dstall_large <= dstall_small + 0.01, "row {row:?}");
            assert!(fill_large <= fill_small + 0.01, "row {row:?}");
        }
    }

    #[test]
    fn t3_guards_beat_none_on_bitflips() {
        let t = t3_detection(&QUICK);
        let rate = |config: &str, attack: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == config && r[1] == attack)
                .map(|r| r[7].parse().unwrap())
                .unwrap()
        };
        assert!(rate("guards", "bit-flip") >= rate("none", "bit-flip"));
        assert!(rate("guards+enc", "code-inject") >= rate("none", "code-inject"));
    }
}
