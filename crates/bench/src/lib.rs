//! Experiment runners for every table and figure of the evaluation.
//!
//! Each `tN_*`/`fN_*` function regenerates one artifact of the
//! reconstructed DATE-2004 evaluation (see `DESIGN.md` for the index and
//! `EXPERIMENTS.md` for recorded results):
//!
//! | id | artifact |
//! |----|----------|
//! | T1 | workload characterization |
//! | T2 | static code-size overhead vs guard density |
//! | F1 | runtime overhead vs guard density |
//! | F2 | runtime overhead vs decrypt latency (serial/pipelined) |
//! | F3 | runtime overhead vs I-cache size |
//! | T3 | tamper-detection coverage matrix |
//! | F4 | flexibility Pareto: coverage vs overhead budget |
//! | T4 | placement-policy ablation |
//! | F5 | estimator accuracy |
//! | T5 | re-protection diversity |
//! | T6 | static stealth metrics |
//! | F6 | detection-latency distribution |
//! | T9 | static-oracle precision/recall vs dynamic detection |
//! | T10 | guard-network targeted attack vs random baseline |
//! | T12 | translation validator vs static oracle cross-check |
//! | T13 | validator refusal attribution by typed reason |
//!
//! Every runner takes a shared [`Engine`]: its grid cells fan out over the
//! engine's worker pool, compiled images / profiled baselines / protected
//! binaries come from the engine's [artifact cache](flexprot_exec::ArtifactCache),
//! and per-cell trace metrics merge into the engine's aggregate document.
//! Tables and the aggregate metrics are byte-identical whatever the worker
//! count.
//!
//! Run them all with `cargo run --release -p flexprot-bench --bin
//! experiments` (add `--quick` for a fast subset, `--jobs N` to size the
//! worker pool).

pub mod micro;
pub mod table;

use flexprot_attack::{Attack, AttackSummary};
use flexprot_core::{
    optimize, EncryptConfig, GuardConfig, OptimizerConfig, Placement, ProtectionConfig, Selection,
};
use flexprot_exec::{AttackSpec, Engine, Job};
use flexprot_secmon::DecryptModel;
use flexprot_sim::{CacheConfig, SimConfig};
use flexprot_workloads::Workload;

pub use flexprot_exec::{Baseline, CycleBreakdown};
pub use table::Table;

/// Master keys used across experiments (fixed for reproducibility).
pub const GUARD_KEY: u64 = 0x0BAD_C0DE_CAFE_F00D;
/// Encryption master key.
pub const ENC_KEY: u64 = 0x5EED_5EED_5EED_5EED;

/// Global experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Reduced workload set and trial counts for smoke runs.
    pub quick: bool,
}

impl Params {
    /// The workloads an experiment iterates over.
    pub fn workloads(&self) -> Vec<Workload> {
        let all = flexprot_workloads::all();
        if self.quick {
            all.into_iter()
                .filter(|w| matches!(w.name, "rle" | "qsort" | "dijkstra"))
                .collect()
        } else {
            all
        }
    }

    /// Lighter-weight kernels used for the attack matrix (many trials).
    pub fn attack_workloads(&self) -> Vec<Workload> {
        let names: &[&str] = if self.quick {
            &["rle"]
        } else {
            &["rle", "strsearch", "adpcm"]
        };
        flexprot_workloads::all()
            .into_iter()
            .filter(|w| names.contains(&w.name))
            .collect()
    }

    /// Guard densities swept in T2/F1.
    pub fn densities(&self) -> Vec<f64> {
        if self.quick {
            vec![0.25, 1.0]
        } else {
            vec![0.1, 0.25, 0.5, 0.75, 1.0]
        }
    }

    /// Attack trials per (workload, config, attack) cell in T3.
    pub fn trials(&self) -> u32 {
        if self.quick {
            6
        } else {
            20
        }
    }
}

/// Relative overhead in percent.
pub fn overhead_pct(base_cycles: u64, cycles: u64) -> f64 {
    (cycles as f64 - base_cycles as f64) / base_cycles as f64 * 100.0
}

fn fmt_pct(v: f64) -> String {
    format!("{v:.2}")
}

fn guard_config(density: f64, placement: Placement) -> GuardConfig {
    GuardConfig {
        key: GUARD_KEY,
        seed: 7,
        placement,
        selection: Selection::Density(density),
        enforce_spacing: true,
    }
}

/// T1 — workload characterization.
pub fn t1_characterize(params: &Params, engine: &Engine) -> Table {
    let sim = SimConfig::default();
    let mut table = Table::new(
        "T1",
        "Workload characterization (baseline, default caches)",
        &[
            "workload",
            "text-words",
            "data-bytes",
            "dyn-instrs",
            "cycles",
            "CPI",
            "icache-miss%",
            "dcache-miss%",
        ],
    );
    let rows = engine.run_jobs(&params.workloads(), |ctx, w| {
        let b = ctx.baseline(w, &sim);
        vec![
            w.name.to_owned(),
            b.image.text.len().to_string(),
            b.image.data.len().to_string(),
            b.run.stats.instructions.to_string(),
            b.run.stats.cycles.to_string(),
            format!("{:.3}", b.run.stats.cpi()),
            format!("{:.3}", b.run.stats.icache_miss_rate() * 100.0),
            format!("{:.3}", b.run.stats.dcache_miss_rate() * 100.0),
        ]
    });
    for row in rows {
        table.push(row);
    }
    table
}

/// T2 — static code-size overhead vs guard density.
pub fn t2_size_overhead(params: &Params, engine: &Engine) -> Table {
    let workloads = params.workloads();
    let densities = params.densities();
    let mut headers = vec!["workload".to_owned(), "words".to_owned()];
    for d in &densities {
        headers.push(format!("+%@d={d}"));
    }
    let mut table = Table::with_headers(
        "T2",
        "Static code-size overhead (%) vs guard density",
        headers,
    );
    let mut jobs = Vec::new();
    for &w in &workloads {
        for &d in &densities {
            let config = ProtectionConfig::new().with_guards(guard_config(d, Placement::Uniform));
            jobs.push(Job::new(w, config));
        }
    }
    let cells = engine.run_jobs(&jobs, |ctx, job| {
        let protected = ctx.protected(job).expect("protect");
        fmt_pct(protected.report.size_overhead_fraction() * 100.0)
    });
    for (w, chunk) in workloads.iter().zip(cells.chunks(densities.len())) {
        let words = engine.cache().image(w).text.len();
        let mut row = vec![w.name.to_owned(), words.to_string()];
        row.extend(chunk.iter().cloned());
        table.push(row);
    }
    table
}

/// F1 — runtime overhead vs guard density.
pub fn f1_guard_density(params: &Params, engine: &Engine) -> Table {
    let workloads = params.workloads();
    let densities = params.densities();
    let mut headers = vec!["workload".to_owned()];
    for d in &densities {
        headers.push(format!("+%@d={d}"));
    }
    let mut table = Table::with_headers(
        "F1",
        "Runtime overhead (%) vs guard density (guards only, uniform placement)",
        headers,
    );
    let mut jobs = Vec::new();
    for &w in &workloads {
        for &d in &densities {
            let config = ProtectionConfig::new().with_guards(guard_config(d, Placement::Uniform));
            jobs.push(Job::new(w, config).profiled());
        }
    }
    let cells = engine.run_jobs(&jobs, |ctx, job| fmt_pct(ctx.run_cell(job).overhead_pct()));
    for (w, chunk) in workloads.iter().zip(cells.chunks(densities.len())) {
        let mut row = vec![w.name.to_owned()];
        row.extend(chunk.iter().cloned());
        table.push(row);
    }
    table
}

/// F2 — runtime overhead vs decrypt latency (whole-program encryption).
pub fn f2_decrypt_latency(params: &Params, engine: &Engine) -> Table {
    let workloads = params.workloads();
    let cpws: &[u64] = if params.quick {
        &[2, 8]
    } else {
        &[0, 1, 2, 4, 8]
    };
    let mut specs = Vec::new();
    for &cpw in cpws {
        for pipelined in [false, true] {
            specs.push((cpw, pipelined));
        }
    }
    let mut headers = vec!["workload".to_owned()];
    for &c in cpws {
        headers.push(format!("serial@{c}"));
        headers.push(format!("pipe@{c}"));
    }
    // Trace-derived breakdown columns are appended AFTER the overhead block
    // so the established column positions stay stable.
    for &c in cpws {
        for mode in ["ser", "pipe"] {
            headers.push(format!("dstall%@{c}{mode}"));
            headers.push(format!("miss%@{c}{mode}"));
        }
    }
    let mut table = Table::with_headers(
        "F2",
        "Runtime overhead (%) vs decrypt cycles/word (whole-program encryption)",
        headers,
    );
    let mut jobs = Vec::new();
    for &w in &workloads {
        for &(cpw, pipelined) in &specs {
            let model = DecryptModel {
                cycles_per_word: cpw,
                startup: 4,
                pipelined,
            };
            let enc = EncryptConfig {
                model,
                ..EncryptConfig::whole_program(ENC_KEY)
            };
            jobs.push(Job::new(w, ProtectionConfig::new().with_encryption(enc)));
        }
    }
    let cells = engine.run_jobs(&jobs, |ctx, job| {
        let cell = ctx.run_cell(job);
        let base = cell.baseline.run.stats.cycles as f64;
        (
            fmt_pct(cell.overhead_pct()),
            fmt_pct(cell.breakdown.decrypt_stall_cycles as f64 / base * 100.0),
            fmt_pct(cell.breakdown.miss_fill_cycles as f64 / base * 100.0),
        )
    });
    for (w, chunk) in workloads.iter().zip(cells.chunks(specs.len())) {
        let mut row = vec![w.name.to_owned()];
        for (overhead, _, _) in chunk {
            row.push(overhead.clone());
        }
        for (_, dstall, miss) in chunk {
            row.push(dstall.clone());
            row.push(miss.clone());
        }
        table.push(row);
    }
    table
}

/// F3 — runtime overhead of encryption vs I-cache size.
pub fn f3_icache_sweep(params: &Params, engine: &Engine) -> Table {
    let workloads = params.workloads();
    let sizes: &[u32] = if params.quick {
        &[256, 4096]
    } else {
        &[128, 256, 512, 1024, 2048, 4096, 8192]
    };
    let mut headers = vec!["workload".to_owned()];
    for &s in sizes {
        headers.push(format!("+%@{s}B"));
        headers.push(format!("miss%@{s}B"));
    }
    // Trace-derived breakdown columns, appended at the row end (see F2).
    for &s in sizes {
        headers.push(format!("dstall%@{s}B"));
        headers.push(format!("fill%@{s}B"));
    }
    let mut table = Table::with_headers(
        "F3",
        "Encryption overhead (%) and baseline miss rate vs I-cache size",
        headers,
    );
    let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(ENC_KEY));
    let mut jobs = Vec::new();
    for &w in &workloads {
        for &size in sizes {
            let sim = SimConfig {
                icache: CacheConfig {
                    size_bytes: size,
                    line_bytes: 32,
                    ways: 2,
                },
                ..SimConfig::default()
            };
            jobs.push(Job::new(w, config.clone()).with_sim(sim));
        }
    }
    let cells = engine.run_jobs(&jobs, |ctx, job| {
        let cell = ctx.run_cell(job);
        let base = cell.baseline.run.stats.cycles as f64;
        (
            fmt_pct(cell.overhead_pct()),
            format!("{:.3}", cell.baseline.run.stats.icache_miss_rate() * 100.0),
            fmt_pct(cell.breakdown.decrypt_stall_cycles as f64 / base * 100.0),
            fmt_pct(cell.breakdown.miss_fill_cycles as f64 / base * 100.0),
        )
    });
    for (w, chunk) in workloads.iter().zip(cells.chunks(sizes.len())) {
        let mut row = vec![w.name.to_owned()];
        for (overhead, miss_rate, _, _) in chunk {
            row.push(overhead.clone());
            row.push(miss_rate.clone());
        }
        for (_, _, dstall, fill) in chunk {
            row.push(dstall.clone());
            row.push(fill.clone());
        }
        table.push(row);
    }
    table
}

/// The four protection configurations of the T3 matrix.
pub fn t3_configs() -> Vec<(&'static str, ProtectionConfig)> {
    vec![
        ("none", ProtectionConfig::new()),
        (
            "guards",
            ProtectionConfig::new().with_guards(guard_config(1.0, Placement::Uniform)),
        ),
        (
            "enc",
            ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(ENC_KEY)),
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(guard_config(1.0, Placement::Uniform))
                .with_encryption(EncryptConfig::whole_program(ENC_KEY)),
        ),
    ]
}

/// T3 — tamper-detection coverage matrix.
pub fn t3_detection(params: &Params, engine: &Engine) -> Table {
    let attack_workloads = params.attack_workloads();
    let mut table = Table::new(
        "T3",
        "Tamper-detection coverage (aggregated over attack workloads)",
        &[
            "config",
            "attack",
            "applied",
            "detected",
            "faulted",
            "wrong-out",
            "benign",
            "det-rate%",
            "atk-success%",
            "mean-latency",
        ],
    );
    let mut labels = Vec::new();
    let mut jobs = Vec::new();
    for (config_name, config) in t3_configs() {
        for attack in Attack::all() {
            labels.push((config_name, attack));
            for &w in &attack_workloads {
                jobs.push(Job::new(w, config.clone()).with_attack(AttackSpec {
                    attack,
                    trials: params.trials(),
                    seed: 0xA77A_C4E5,
                }));
            }
        }
    }
    let summaries = engine.run_jobs(&jobs, |ctx, job| ctx.attack_cell(job));
    for ((config_name, attack), chunk) in
        labels.iter().zip(summaries.chunks(attack_workloads.len()))
    {
        let mut agg = AttackSummary::default();
        for summary in chunk {
            agg.merge(summary);
        }
        table.push(vec![
            (*config_name).to_owned(),
            attack.name().to_owned(),
            agg.applied.to_string(),
            agg.detected.to_string(),
            agg.faulted.to_string(),
            agg.wrong_output.to_string(),
            agg.benign.to_string(),
            fmt_pct(agg.detection_rate() * 100.0),
            fmt_pct(agg.attacker_success_rate() * 100.0),
            agg.mean_latency()
                .map_or_else(|| "-".to_owned(), |l| format!("{l:.0}")),
        ]);
    }
    table
}

/// F4 — the flexibility Pareto frontier: coverage vs overhead budget.
pub fn f4_pareto(params: &Params, engine: &Engine) -> Table {
    let sim = SimConfig::default();
    let budgets: &[f64] = if params.quick {
        &[0.02, 0.2]
    } else {
        &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5]
    };
    let mut table = Table::new(
        "F4",
        "Profile-guided budget optimizer: coverage vs measured overhead",
        &[
            "workload",
            "budget%",
            "coverage",
            "est+%",
            "measured+%",
            "guards",
            "enc-fns",
        ],
    );
    let mut cells = Vec::new();
    for &w in &params.workloads() {
        for &budget in budgets {
            cells.push((w, budget));
        }
    }
    let rows = engine.run_jobs(&cells, |ctx, &(w, budget)| {
        let b = ctx.baseline(&w, &sim);
        let cfg = flexprot_core::Cfg::recover(&b.image).expect("cfg");
        let opt = OptimizerConfig {
            budget_fraction: budget,
            ..OptimizerConfig::default()
        };
        let plan = optimize(&b.image, &cfg, &b.profile, &opt);
        // The optimizer costs exactly the policy selection, so the
        // spacing-enforcement extras (which it cannot see) are disabled
        // here; signature checks alone carry the integrity story.
        let config = ProtectionConfig::from_plan(
            &plan,
            GuardConfig {
                enforce_spacing: false,
                ..guard_config(0.0, Placement::ColdestFirst)
            },
            EncryptConfig::whole_program(ENC_KEY),
        );
        let cell = ctx.run_cell(&Job::new(w, config).profiled());
        let enc_fns = plan.functions.values().filter(|f| f.encrypt).count();
        vec![
            w.name.to_owned(),
            fmt_pct(budget * 100.0),
            format!("{:.3}", plan.coverage),
            fmt_pct(plan.est_extra_cycles as f64 / b.run.stats.cycles as f64 * 100.0),
            fmt_pct(cell.overhead_pct()),
            cell.protected.report.guards_inserted.to_string(),
            enc_fns.to_string(),
        ]
    });
    for row in rows {
        table.push(row);
    }
    table
}

/// T4 — placement-policy ablation at matched density.
pub fn t4_placement(params: &Params, engine: &Engine) -> Table {
    let workloads = params.workloads();
    let density = 0.3;
    let policies = [
        ("uniform", Placement::Uniform),
        ("random", Placement::Random),
        ("coldest", Placement::ColdestFirst),
        ("loop-hdr", Placement::LoopHeaders),
    ];
    let mut headers = vec!["workload".to_owned()];
    for (name, _) in policies {
        headers.push(format!("+%{name}"));
    }
    let mut table = Table::with_headers(
        "T4",
        "Runtime overhead (%) by placement policy (density 0.3)",
        headers,
    );
    let mut jobs = Vec::new();
    for &w in &workloads {
        for (_, placement) in policies {
            let config = ProtectionConfig::new().with_guards(guard_config(density, placement));
            jobs.push(Job::new(w, config).profiled());
        }
    }
    let cells = engine.run_jobs(&jobs, |ctx, job| fmt_pct(ctx.run_cell(job).overhead_pct()));
    for (w, chunk) in workloads.iter().zip(cells.chunks(policies.len())) {
        let mut row = vec![w.name.to_owned()];
        row.extend(chunk.iter().cloned());
        table.push(row);
    }
    table
}

/// F5 — estimator accuracy: predicted vs measured overhead.
pub fn f5_estimator(params: &Params, engine: &Engine) -> Table {
    let sim = SimConfig::default();
    let mut table = Table::new(
        "F5",
        "Estimator accuracy: predicted vs measured overhead (%)",
        &["workload", "config", "est+%", "measured+%", "abs-err"],
    );
    let line_words = SimConfig::default().icache.line_words();
    let cases: Vec<(&'static str, ProtectionConfig)> = vec![
        (
            "guards d=0.25",
            ProtectionConfig::new().with_guards(guard_config(0.25, Placement::Uniform)),
        ),
        (
            "guards d=1.0",
            ProtectionConfig::new().with_guards(guard_config(1.0, Placement::Uniform)),
        ),
        (
            "enc program",
            ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(ENC_KEY)),
        ),
    ];
    let mut cells = Vec::new();
    for &w in &params.workloads() {
        for (name, config) in &cases {
            cells.push((w, *name, config.clone()));
        }
    }
    let rows = engine.run_jobs(&cells, |ctx, (w, name, config)| {
        let b = ctx.baseline(w, &sim);
        let cfg = flexprot_core::Cfg::recover(&b.image).expect("cfg");
        // Estimate on the baseline layout, mirroring the pass's actual
        // selection (including loop-header enforcement).
        let selected = match &config.guards {
            Some(g) => flexprot_core::select_guard_blocks(&b.image, &cfg, g, Some(&b.profile))
                .expect("selection"),
            None => Default::default(),
        };
        let ranges: Vec<(u32, u32)> = if config.encryption.is_some() {
            vec![(b.image.text_base, b.image.text_end())]
        } else {
            vec![]
        };
        let est = flexprot_core::estimate(
            &b.image,
            &cfg,
            &selected,
            &ranges,
            DecryptModel::baseline(),
            line_words,
            &b.profile,
        );
        let cell = ctx.run_cell(&Job::new(*w, config.clone()).profiled());
        let est_pct = est.overhead_fraction() * 100.0;
        let meas_pct = cell.overhead_pct();
        vec![
            w.name.to_owned(),
            (*name).to_owned(),
            fmt_pct(est_pct),
            fmt_pct(meas_pct),
            fmt_pct((est_pct - meas_pct).abs()),
        ]
    });
    for row in rows {
        table.push(row);
    }
    table
}

/// T5 — protection diversity: how different two independent protections of
/// the same program look (anti-pattern-matching property).
pub fn t5_diversity(params: &Params, engine: &Engine) -> Table {
    let mut table = Table::new(
        "T5",
        "Re-protection diversity: fraction of differing text words",
        &["workload", "guards-reseed%", "enc-rekey%", "combined%"],
    );
    let rows = engine.run_jobs(&params.workloads(), |ctx, w| {
        let cache = ctx.cache();
        let guarded = |seed: u64| {
            let config = ProtectionConfig::new().with_guards(GuardConfig {
                seed,
                key: GUARD_KEY ^ seed,
                ..guard_config(0.5, Placement::Uniform)
            });
            cache.protected(w, &config, None).expect("protect")
        };
        let encrypted = |key: u64| {
            let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(key));
            cache.protected(w, &config, None).expect("protect")
        };
        let combined = |seed: u64| {
            let config = ProtectionConfig::new()
                .with_guards(GuardConfig {
                    seed,
                    key: GUARD_KEY ^ seed,
                    ..guard_config(0.5, Placement::Uniform)
                })
                .with_encryption(EncryptConfig::whole_program(ENC_KEY ^ seed));
            cache.protected(w, &config, None).expect("protect")
        };
        let diversity = flexprot_attack::analysis::word_diversity;
        let (g1, g2) = (guarded(1), guarded(2));
        let (e1, e2) = (encrypted(1), encrypted(2));
        let (c1, c2) = (combined(1), combined(2));
        vec![
            w.name.to_owned(),
            fmt_pct(diversity(&g1.image, &g2.image) * 100.0),
            fmt_pct(diversity(&e1.image, &e2.image) * 100.0),
            fmt_pct(diversity(&c1.image, &c2.image) * 100.0),
        ]
    });
    for row in rows {
        table.push(row);
    }
    table
}

/// T6 — stealth: what an attacker's static scanner sees.
pub fn t6_stealth(params: &Params, engine: &Engine) -> Table {
    use flexprot_attack::analysis::{guard_like_runs, text_entropy_bits, undecodable_fraction};
    let mut table = Table::new(
        "T6",
        "Static stealth metrics (guard-run scanner, entropy, decodability)",
        &[
            "workload",
            "config",
            "guard-runs",
            "entropy-b/B",
            "undecodable%",
        ],
    );
    let rows = engine.run_jobs(&params.workloads(), |ctx, w| {
        let cache = ctx.cache();
        let image = cache.image(w);
        let guards_cfg = ProtectionConfig::new().with_guards(guard_config(1.0, Placement::Uniform));
        let both_cfg = guards_cfg
            .clone()
            .with_encryption(EncryptConfig::whole_program(ENC_KEY));
        let guarded = cache.protected(w, &guards_cfg, None).expect("protect");
        let both = cache.protected(w, &both_cfg, None).expect("protect");
        let cases = [
            ("plain", image.as_ref()),
            ("guards", &guarded.image),
            ("guards+enc", &both.image),
        ];
        cases
            .iter()
            .map(|(name, img)| {
                vec![
                    w.name.to_owned(),
                    (*name).to_owned(),
                    guard_like_runs(img, 4).to_string(),
                    format!("{:.3}", text_entropy_bits(img)),
                    fmt_pct(undecodable_fraction(img) * 100.0),
                ]
            })
            .collect::<Vec<_>>()
    });
    for row in rows.into_iter().flatten() {
        table.push(row);
    }
    table
}

/// F6 — detection-latency distribution under full guards.
pub fn f6_latency(params: &Params, engine: &Engine) -> Table {
    let attack_workloads = params.attack_workloads();
    let mut table = Table::new(
        "F6",
        "Detection latency distribution (instructions; guards, density 1.0)",
        &["attack", "detections", "min", "p50", "p90", "max", "mean"],
    );
    let config = ProtectionConfig::new().with_guards(guard_config(1.0, Placement::Uniform));
    let mut jobs = Vec::new();
    for attack in Attack::all() {
        for &w in &attack_workloads {
            jobs.push(Job::new(w, config.clone()).with_attack(AttackSpec {
                attack,
                trials: params.trials(),
                seed: 0xF6,
            }));
        }
    }
    let summaries = engine.run_jobs(&jobs, |ctx, job| ctx.attack_cell(job));
    for (attack, chunk) in Attack::all()
        .into_iter()
        .zip(summaries.chunks(attack_workloads.len()))
    {
        let mut agg = AttackSummary::default();
        for summary in chunk {
            agg.merge(summary);
        }
        let q = |v: f64| {
            agg.latency_quantile(v)
                .map_or_else(|| "-".to_owned(), |x| x.to_string())
        };
        table.push(vec![
            attack.name().to_owned(),
            agg.detected.to_string(),
            q(0.0),
            q(0.5),
            q(0.9),
            q(1.0),
            agg.mean_latency()
                .map_or_else(|| "-".to_owned(), |m| format!("{m:.0}")),
        ]);
    }
    table
}

/// T9 — static-oracle accuracy: the verifier's tamper-surface map as a
/// predictor of dynamic detection.
///
/// Reuses the T3 attack grid; the harness already scores every applied
/// trial against the [`flexprot_attack::StaticOracle`] built from the
/// protected image's surface map, so this table only aggregates the
/// confusion matrices. A trial counts when its dynamic outcome is
/// effective (not benign/inapplicable): positive = the stack caught it
/// (detected or faulted), predicted positive = the oracle said it would.
pub fn t9_static_oracle(params: &Params, engine: &Engine) -> Table {
    let attack_workloads = params.attack_workloads();
    let mut table = Table::new(
        "T9",
        "Static tamper-surface oracle vs dynamic ground truth",
        &[
            "config",
            "attack",
            "effective",
            "tp",
            "fp",
            "fn",
            "tn",
            "precision",
            "recall",
        ],
    );
    let mut labels = Vec::new();
    let mut jobs = Vec::new();
    for (config_name, config) in t3_configs() {
        for attack in Attack::all() {
            labels.push((config_name, attack));
            for &w in &attack_workloads {
                jobs.push(Job::new(w, config.clone()).with_attack(AttackSpec {
                    attack,
                    trials: params.trials(),
                    seed: 0xA77A_C4E5,
                }));
            }
        }
    }
    let summaries = engine.run_jobs(&jobs, |ctx, job| ctx.attack_cell(job));
    for ((config_name, attack), chunk) in
        labels.iter().zip(summaries.chunks(attack_workloads.len()))
    {
        let mut agg = AttackSummary::default();
        for summary in chunk {
            agg.merge(summary);
        }
        table.push(vec![
            (*config_name).to_owned(),
            attack.name().to_owned(),
            agg.oracle_trials().to_string(),
            agg.oracle_true_pos.to_string(),
            agg.oracle_false_pos.to_string(),
            agg.oracle_false_neg.to_string(),
            agg.oracle_true_neg.to_string(),
            format!("{:.3}", agg.oracle_precision()),
            format!("{:.3}", agg.oracle_recall()),
        ]);
    }
    table
}

/// T10 — what the guard-network analysis buys the attacker.
///
/// For each attack workload and guard density, runs the plan-driven
/// single-word NOP attacker (ranked by
/// [`flexprot_attack::StaticOracle::target_plan`]: cheapest defeat
/// closures first) against the uniformly random single-word baseline
/// with the same edit budget, next to the network shape that explains
/// the gap (sound guards, edges, minimum vertex cut). Both attackers
/// are deterministic given the seed, so the table is byte-identical
/// whatever the worker count.
pub fn t10_guardnet(params: &Params, _engine: &Engine) -> Table {
    let mut table = Table::new(
        "T10",
        "Guard-network targeted attack vs random single-word baseline",
        &[
            "workload",
            "density",
            "guards",
            "sound",
            "edges",
            "min_cut",
            "trials",
            "targeted_success",
            "random_success",
        ],
    );
    let trials = params.trials() * 5;
    let sim = SimConfig {
        max_instructions: 2_000_000,
        ..SimConfig::default()
    };
    for w in params.attack_workloads() {
        let expected = w.expected_output();
        for density in [0.25, 1.0] {
            let config =
                ProtectionConfig::new().with_guards(guard_config(density, Placement::Uniform));
            let protected = flexprot_core::protect(&w.image(), &config, None).expect("protect");
            let v = flexprot_verify::analyze(
                &protected.image,
                &protected.secmon,
                &flexprot_verify::LintPolicy::default(),
            );
            let targeted = flexprot_attack::evaluate_targeted(&protected, &expected, trials, &sim);
            let random = flexprot_attack::evaluate_random_nop(
                &protected,
                &expected,
                trials,
                0xA77A_C4E5,
                &sim,
            );
            table.push(vec![
                w.name.to_owned(),
                format!("{density}"),
                v.guardnet.nodes.len().to_string(),
                v.guardnet.sound_count().to_string(),
                v.guardnet.edges.to_string(),
                v.guardnet
                    .min_cut
                    .as_ref()
                    .map_or_else(|| "none".to_owned(), |cut| cut.len().to_string()),
                trials.to_string(),
                format!("{:.3}", targeted.attacker_success_rate()),
                format!("{:.3}", random.attacker_success_rate()),
            ]);
        }
    }
    table
}

/// T12 — translation validator vs static oracle cross-check.
///
/// For each attack workload and T3 protection config, runs a
/// deterministic single-word mutation campaign
/// ([`flexprot_attack::cross_check`]) and scores every mutated image
/// against both independent analyses: the translation validator's
/// semantic verdict (proven / inequivalent / refused) and the static
/// oracle's detection prediction. The two must mesh — an edit the
/// validator proves inequivalent is either an oracle-predicted detection
/// (`caught`) or lands on the tamper surface the oracle already reports
/// (`known_gap`); the `unexplained` column counts disagreements off the
/// surface and must be zero everywhere. The cells fan out over the
/// engine's worker pool and the table is byte-identical whatever the
/// worker count.
pub fn t12_crosscheck(params: &Params, engine: &Engine) -> Table {
    let mut table = Table::new(
        "T12",
        "Translation validator vs static oracle cross-check",
        &[
            "config",
            "workload",
            "trials",
            "inequivalent",
            "refused",
            "predicted",
            "caught",
            "known_gap",
            "harmless_caught",
            "benign",
            "unexplained",
        ],
    );
    let trials = params.trials() * 4;
    let mut jobs = Vec::new();
    for (config_name, config) in t3_configs() {
        for &w in &params.attack_workloads() {
            jobs.push((config_name, w, config.clone()));
        }
    }
    let summaries = engine.run_jobs(&jobs, |_ctx, (_, w, config)| {
        let base = w.image();
        let protected = flexprot_core::protect(&base, config, None).expect("protect");
        let mut rng = flexprot_isa::Rng64::new(0xC405_5EED);
        flexprot_attack::cross_check(&base, &protected, trials, &mut rng)
    });
    for ((config_name, w, _), s) in jobs.iter().zip(&summaries) {
        table.push(vec![
            (*config_name).to_owned(),
            w.name.to_owned(),
            s.trials.to_string(),
            s.inequivalent.to_string(),
            s.refused.to_string(),
            s.predicted.to_string(),
            s.caught_damage.to_string(),
            s.known_gaps.to_string(),
            s.harmless_caught.to_string(),
            s.benign.to_string(),
            s.unexplained.to_string(),
        ]);
    }
    table
}

/// T13 — validator refusal attribution by typed reason.
///
/// Re-scores the T12 mutation campaign through the refusal lens: every
/// `Refused` verdict the memory-sensitive validator still returns is
/// attributed to exactly one stable [`flexprot_verify::RefusalReason`]
/// code, so the table proves there are no unexplained refusals left —
/// `refused` must equal the sum of the three reason columns in every row
/// (the `unattributed` column pins that difference at zero). The `proven`
/// column counts mutations the sharper domain proves outright
/// (semantically transparent edits, e.g. resigned guard words), which is
/// the precision the alias analysis buys: under the store-blind domain
/// these were blanket refusals.
pub fn t13_refusal_reasons(params: &Params, engine: &Engine) -> Table {
    let mut table = Table::new(
        "T13",
        "Validator refusal attribution by typed reason",
        &[
            "config",
            "workload",
            "trials",
            "proven",
            "inequivalent",
            "refused",
            "store_writes_memory",
            "store_may_alias_text",
            "branch_undecided",
            "unattributed",
        ],
    );
    let trials = params.trials() * 4;
    let mut jobs = Vec::new();
    for (config_name, config) in t3_configs() {
        for &w in &params.attack_workloads() {
            jobs.push((config_name, w, config.clone()));
        }
    }
    let summaries = engine.run_jobs(&jobs, |_ctx, (_, w, config)| {
        let base = w.image();
        let protected = flexprot_core::protect(&base, config, None).expect("protect");
        let mut rng = flexprot_isa::Rng64::new(0xC405_5EED);
        flexprot_attack::cross_check(&base, &protected, trials, &mut rng)
    });
    for ((config_name, w, _), s) in jobs.iter().zip(&summaries) {
        let attributed = s.refused_store_writes + s.refused_may_alias + s.refused_branch;
        table.push(vec![
            (*config_name).to_owned(),
            w.name.to_owned(),
            s.trials.to_string(),
            (s.trials - s.inequivalent - s.refused).to_string(),
            s.inequivalent.to_string(),
            s.refused.to_string(),
            s.refused_store_writes.to_string(),
            s.refused_may_alias.to_string(),
            s.refused_branch.to_string(),
            (s.refused - attributed).to_string(),
        ]);
    }
    table
}

/// Runs every experiment in order over a shared engine (artifacts built by
/// one experiment are reused by the next).
pub fn run_all(params: &Params, engine: &Engine) -> Vec<Table> {
    vec![
        t1_characterize(params, engine),
        t2_size_overhead(params, engine),
        f1_guard_density(params, engine),
        f2_decrypt_latency(params, engine),
        f3_icache_sweep(params, engine),
        t3_detection(params, engine),
        f4_pareto(params, engine),
        t4_placement(params, engine),
        f5_estimator(params, engine),
        t5_diversity(params, engine),
        t6_stealth(params, engine),
        f6_latency(params, engine),
        t9_static_oracle(params, engine),
        t10_guardnet(params, engine),
        t12_crosscheck(params, engine),
        t13_refusal_reasons(params, engine),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Params = Params { quick: true };

    fn engine() -> Engine {
        Engine::new(2)
    }

    #[test]
    fn t1_rows_cover_quick_workloads() {
        let t = t1_characterize(&QUICK, &engine());
        assert_eq!(t.rows.len(), QUICK.workloads().len());
    }

    #[test]
    fn f1_overheads_increase_with_density() {
        let t = f1_guard_density(&QUICK, &engine());
        for row in &t.rows {
            let low: f64 = row[1].parse().unwrap();
            let high: f64 = row[2].parse().unwrap();
            assert!(high >= low, "row {row:?}");
            assert!(low >= 0.0);
        }
    }

    #[test]
    fn f2_serial_costs_at_least_pipelined() {
        let t = f2_decrypt_latency(&QUICK, &engine());
        for row in &t.rows {
            // columns: name, serial@2, pipe@2, serial@8, pipe@8
            let serial8: f64 = row[3].parse().unwrap();
            let pipe8: f64 = row[4].parse().unwrap();
            assert!(serial8 >= pipe8 - 0.01, "row {row:?}");
        }
    }

    #[test]
    fn f2_breakdown_attributes_overhead_to_decrypt_stall() {
        let t = f2_decrypt_latency(&QUICK, &engine());
        for row in &t.rows {
            // Columns: name, serial@2, pipe@2, serial@8, pipe@8, then the
            // appended (dstall, miss) pairs for 2ser/2pipe/8ser/8pipe.
            let serial8: f64 = row[3].parse().unwrap();
            let dstall8: f64 = row[9].parse().unwrap();
            let miss8: f64 = row[10].parse().unwrap();
            // Whole-program encryption changes no layout, so the entire
            // overhead is decrypt stall — the trace must reconcile.
            assert!((serial8 - dstall8).abs() < 0.02, "row {row:?}");
            assert!(miss8 > 0.0, "row {row:?}");
        }
    }

    #[test]
    fn f3_breakdown_shrinks_with_larger_icache() {
        let t = f3_icache_sweep(&QUICK, &engine());
        for row in &t.rows {
            // Columns: name, +%@256B, miss%@256B, +%@4096B, miss%@4096B,
            // then appended dstall%/fill% per size.
            let dstall_small: f64 = row[5].parse().unwrap();
            let fill_small: f64 = row[6].parse().unwrap();
            let dstall_large: f64 = row[7].parse().unwrap();
            let fill_large: f64 = row[8].parse().unwrap();
            assert!(dstall_large <= dstall_small + 0.01, "row {row:?}");
            assert!(fill_large <= fill_small + 0.01, "row {row:?}");
        }
    }

    #[test]
    fn t3_guards_beat_none_on_bitflips() {
        let t = t3_detection(&QUICK, &engine());
        let rate = |config: &str, attack: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == config && r[1] == attack)
                .map(|r| r[7].parse().unwrap())
                .unwrap()
        };
        assert!(rate("guards", "bit-flip") >= rate("none", "bit-flip"));
        assert!(rate("guards+enc", "code-inject") >= rate("none", "code-inject"));
    }

    #[test]
    fn t9_oracle_is_accurate_on_protected_configs() {
        let t = t9_static_oracle(&QUICK, &engine());
        // Aggregate the confusion matrices over every protected config
        // (the "none" rows characterise the unprotected baseline, where
        // only decode faults are predictable).
        let (mut tp, mut fp, mut fneg, mut effective) = (0u64, 0u64, 0u64, 0u64);
        for row in t.rows.iter().filter(|r| r[0] != "none") {
            effective += row[2].parse::<u64>().unwrap();
            tp += row[3].parse::<u64>().unwrap();
            fp += row[4].parse::<u64>().unwrap();
            fneg += row[5].parse::<u64>().unwrap();
        }
        assert!(effective > 0, "{t}");
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fneg).max(1) as f64;
        assert!(precision >= 0.9, "precision {precision:.3}\n{t}");
        assert!(recall >= 0.9, "recall {recall:.3}\n{t}");
    }

    #[test]
    fn t12_crosscheck_has_zero_unexplained_disagreements() {
        let t = t12_crosscheck(&QUICK, &engine());
        // Quick mode: rle crossed with the four T3 configs.
        assert_eq!(t.rows.len(), 4, "{t}");
        for row in &t.rows {
            // trials are conserved across the agreement classes.
            let trials: u32 = row[2].parse().unwrap();
            let classes: u32 = row[6..=10].iter().map(|c| c.parse::<u32>().unwrap()).sum();
            assert_eq!(trials, classes, "{t}");
            // The acceptance criterion: zero unexplained disagreements.
            assert_eq!(row[10], "0", "{t}");
            // Random single-word edits do real damage everywhere.
            assert!(row[3].parse::<u32>().unwrap() > 0, "{t}");
        }
        // Known gaps exist only where coverage has holes: the fully
        // guarded+encrypted config leaves none.
        let strong = t.rows.iter().find(|r| r[0] == "guards+enc").unwrap();
        assert_eq!(strong[7], "0", "{t}");
    }

    #[test]
    fn t13_attributes_every_refusal_to_a_typed_reason() {
        let t = t13_refusal_reasons(&QUICK, &engine());
        assert_eq!(t.rows.len(), 4, "{t}");
        for row in &t.rows {
            // Verdicts are conserved: proven + inequivalent + refused.
            let trials: u32 = row[2].parse().unwrap();
            let verdicts: u32 = row[3..=5].iter().map(|c| c.parse::<u32>().unwrap()).sum();
            assert_eq!(trials, verdicts, "{t}");
            // The acceptance criterion: zero unattributed refusals.
            assert_eq!(row[9], "0", "{t}");
            let refused: u32 = row[5].parse().unwrap();
            let reasons: u32 = row[6..=8].iter().map(|c| c.parse::<u32>().unwrap()).sum();
            assert_eq!(refused, reasons, "{t}");
        }
    }

    #[test]
    fn t10_targeting_beats_random_on_the_weak_config() {
        let t = t10_guardnet(&QUICK, &engine());
        // Quick mode: rle at densities 0.25 and 1.0.
        assert_eq!(t.rows.len(), 2);
        let weak = &t.rows[0];
        assert_eq!(weak[1], "0.25");
        // The emitter's windows are disjoint, so the network is edgeless
        // and already disconnected: cut size 0.
        assert_eq!(weak[4], "0");
        assert_eq!(weak[5], "0");
        let targeted: f64 = weak[7].parse().unwrap();
        let random: f64 = weak[8].parse().unwrap();
        assert!(targeted > random, "{t}");
    }

    #[test]
    fn shared_engine_reuses_artifacts_across_experiments() {
        let engine = engine();
        t2_size_overhead(&QUICK, &engine);
        let after_t2 = engine.cache().stats();
        // F1 sweeps the same (workload, density) grid, so every protected
        // build and compiled image is already cached.
        f1_guard_density(&QUICK, &engine);
        let after_f1 = engine.cache().stats();
        assert!(
            after_f1.hits > after_t2.hits,
            "F1 must hit artifacts T2 built: {after_t2:?} -> {after_f1:?}"
        );
    }
}
