//! Regenerates every table and figure of the evaluation.
//!
//! ```text
//! cargo run --release -p flexprot-bench --bin experiments [-- OPTIONS]
//!
//! Options:
//!   --quick        reduced workloads/trials (CI smoke run)
//!   --only <ID>    run a single experiment (T1..T6, F1..F6)
//!   --csv <DIR>    additionally write one CSV per table into DIR
//! ```

use std::io::Write;

use flexprot_bench::{Params, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--only" => {
                i += 1;
                only = args.get(i).cloned();
                if only.is_none() {
                    eprintln!("--only requires an experiment id");
                    std::process::exit(2);
                }
            }
            "--csv" => {
                i += 1;
                csv_dir = args.get(i).cloned();
                if csv_dir.is_none() {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let params = Params { quick };
    type Runner = fn(&Params) -> Table;
    let experiments: Vec<(&str, Runner)> = vec![
        ("T1", flexprot_bench::t1_characterize as Runner),
        ("T2", flexprot_bench::t2_size_overhead),
        ("F1", flexprot_bench::f1_guard_density),
        ("F2", flexprot_bench::f2_decrypt_latency),
        ("F3", flexprot_bench::f3_icache_sweep),
        ("T3", flexprot_bench::t3_detection),
        ("F4", flexprot_bench::f4_pareto),
        ("T4", flexprot_bench::t4_placement),
        ("F5", flexprot_bench::f5_estimator),
        ("T5", flexprot_bench::t5_diversity),
        ("T6", flexprot_bench::t6_stealth),
        ("F6", flexprot_bench::f6_latency),
    ];

    for (id, run) in experiments {
        if let Some(ref filter) = only {
            if !filter.eq_ignore_ascii_case(id) {
                continue;
            }
        }
        let start = std::time::Instant::now();
        let table = run(&params);
        println!("{table}");
        println!("({id} finished in {:.1}s)\n", start.elapsed().as_secs_f64());
        if let Some(ref dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", id.to_lowercase());
            let mut file = std::fs::File::create(&path).expect("create csv");
            file.write_all(table.to_csv().as_bytes())
                .expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}
