//! Regenerates every table and figure of the evaluation.
//!
//! ```text
//! cargo run --release -p flexprot-bench --bin experiments [-- OPTIONS]
//!
//! Options:
//!   --quick           reduced workloads/trials (CI smoke run)
//!   --only <ID>       run a single experiment (T1..T6, T9, T10, T12, T13, F1..F6)
//!   --jobs <N>        worker threads (default: FLEXPROT_JOBS or CPU count)
//!   --csv <DIR>       write one CSV per table into DIR (default: results)
//!   --no-csv          skip CSV output
//!   --metrics <PATH>  write the engine's aggregate metrics JSON to PATH
//!   --timings <PATH>  write per-table wall time (CSV: table,seconds) to PATH
//! ```
//!
//! Tables go to stdout; timing and engine summaries go to stderr, so
//! stdout is diff-clean across `--jobs` values (the engine guarantees
//! identical tables and metrics whatever the worker count). `--timings`
//! deliberately takes its own path rather than landing in the `--csv`
//! directory: wall times are machine-dependent and must never leak into
//! the deterministic table output that CI diffs.

use std::io::Write;

use flexprot_bench::{Params, Table};
use flexprot_exec::Engine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut csv_dir: Option<String> = Some("results".to_owned());
    let mut jobs: Option<usize> = None;
    let mut metrics_path: Option<String> = None;
    let mut timings_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--only" => {
                i += 1;
                only = args.get(i).cloned();
                if only.is_none() {
                    eprintln!("--only requires an experiment id");
                    std::process::exit(2);
                }
            }
            "--jobs" => {
                i += 1;
                jobs = args.get(i).and_then(|v| v.parse().ok());
                if jobs.is_none() {
                    eprintln!("--jobs requires a worker count");
                    std::process::exit(2);
                }
            }
            "--csv" => {
                i += 1;
                csv_dir = args.get(i).cloned();
                if csv_dir.is_none() {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                }
            }
            "--no-csv" => csv_dir = None,
            "--metrics" => {
                i += 1;
                metrics_path = args.get(i).cloned();
                if metrics_path.is_none() {
                    eprintln!("--metrics requires a path");
                    std::process::exit(2);
                }
            }
            "--timings" => {
                i += 1;
                timings_path = args.get(i).cloned();
                if timings_path.is_none() {
                    eprintln!("--timings requires a path");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let params = Params { quick };
    let engine = match jobs {
        Some(n) => Engine::new(n),
        None => Engine::with_default_jobs(),
    };
    type Runner = fn(&Params, &Engine) -> Table;
    let experiments: Vec<(&str, Runner)> = vec![
        ("T1", flexprot_bench::t1_characterize as Runner),
        ("T2", flexprot_bench::t2_size_overhead),
        ("F1", flexprot_bench::f1_guard_density),
        ("F2", flexprot_bench::f2_decrypt_latency),
        ("F3", flexprot_bench::f3_icache_sweep),
        ("T3", flexprot_bench::t3_detection),
        ("F4", flexprot_bench::f4_pareto),
        ("T4", flexprot_bench::t4_placement),
        ("F5", flexprot_bench::f5_estimator),
        ("T5", flexprot_bench::t5_diversity),
        ("T6", flexprot_bench::t6_stealth),
        ("F6", flexprot_bench::f6_latency),
        ("T9", flexprot_bench::t9_static_oracle),
        ("T10", flexprot_bench::t10_guardnet),
        ("T12", flexprot_bench::t12_crosscheck),
        ("T13", flexprot_bench::t13_refusal_reasons),
    ];

    let wall = std::time::Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for (id, run) in experiments {
        if let Some(ref filter) = only {
            if !filter.eq_ignore_ascii_case(id) {
                continue;
            }
        }
        let start = std::time::Instant::now();
        let table = run(&params, &engine);
        let secs = start.elapsed().as_secs_f64();
        println!("{table}");
        eprintln!("({id} finished in {secs:.1}s)");
        timings.push((id.to_owned(), secs));
        if let Some(ref dir) = csv_dir {
            let path = table.save_csv(dir).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }

    let stats = engine.cache().stats();
    eprintln!(
        "engine: {} workers, {} jobs, cache {} hits / {} misses, {:.1}s total",
        engine.workers(),
        engine.metrics().counter("exec_jobs_completed"),
        stats.hits,
        stats.misses,
        wall.elapsed().as_secs_f64()
    );
    if let Some(path) = timings_path {
        let mut out = String::from("table,seconds\n");
        for (id, secs) in &timings {
            out.push_str(&format!("{id},{secs:.3}\n"));
        }
        out.push_str(&format!("total,{:.3}\n", wall.elapsed().as_secs_f64()));
        std::fs::write(&path, out).expect("write timings file");
        eprintln!("wrote {path}");
    }
    if let Some(path) = metrics_path {
        let mut file = std::fs::File::create(&path).expect("create metrics file");
        file.write_all(engine.metrics().to_json().as_bytes())
            .expect("write metrics");
        file.write_all(b"\n").expect("write metrics");
        eprintln!("wrote {path}");
    }
}
