//! Plain-text/CSV result tables.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One experiment's result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id, e.g. `"F1"`.
    pub id: &'static str,
    /// Human-readable caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table from `&str` headers.
    pub fn new(id: &'static str, title: &str, headers: &[&str]) -> Table {
        Table::with_headers(id, title, headers.iter().map(|h| (*h).to_owned()).collect())
    }

    /// Creates an empty table from owned headers.
    pub fn with_headers(id: &'static str, title: &str, headers: Vec<String>) -> Table {
        Table {
            id,
            title: title.to_owned(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row arity does not match the headers.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `<dir>/<id lowercase>.csv`, creating
    /// `dir` if needed, and returns the written path.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write failures.
    pub fn save_csv(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id.to_lowercase()));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T9", "demo", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["long-name".into(), "22".into()]);
        t
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[2], "long-name,22");
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        assert!(text.contains("[T9] demo"));
        assert!(text.contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        sample().push(vec!["only-one".into()]);
    }

    #[test]
    fn save_csv_writes_id_named_file() {
        let dir = std::env::temp_dir().join("flexprot-table-save-csv-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = sample().save_csv(&dir).expect("save csv");
        assert!(path.ends_with("t9.csv"));
        let written = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(written, sample().to_csv());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
