//! The engine's headline guarantee: a sweep's rendered tables and
//! aggregate metrics JSON are byte-identical whatever the worker count.

use flexprot_bench::{f1_guard_density, t2_size_overhead, t3_detection, Params};
use flexprot_exec::Engine;

const QUICK: Params = Params { quick: true };

fn sweep(engine: &Engine) -> String {
    let mut out = String::new();
    out.push_str(&t2_size_overhead(&QUICK, engine).to_string());
    out.push_str(&f1_guard_density(&QUICK, engine).to_string());
    out.push_str(&t3_detection(&QUICK, engine).to_string());
    out
}

#[test]
fn tables_and_metrics_are_identical_across_worker_counts() {
    let serial = Engine::new(1);
    let parallel = Engine::new(4);
    let serial_tables = sweep(&serial);
    let parallel_tables = sweep(&parallel);
    assert_eq!(
        serial_tables, parallel_tables,
        "rendered tables must not depend on the worker count"
    );
    assert_eq!(
        serial.metrics().to_json(),
        parallel.metrics().to_json(),
        "aggregate metrics JSON must not depend on the worker count"
    );
}

#[test]
fn csv_rendering_is_identical_across_worker_counts() {
    let serial = Engine::new(1);
    let parallel = Engine::new(3);
    assert_eq!(
        t2_size_overhead(&QUICK, &serial).to_csv(),
        t2_size_overhead(&QUICK, &parallel).to_csv()
    );
    assert_eq!(
        f1_guard_density(&QUICK, &serial).to_csv(),
        f1_guard_density(&QUICK, &parallel).to_csv()
    );
}

#[test]
fn artifact_cache_is_exercised_and_scheduling_independent() {
    let serial = Engine::new(1);
    let parallel = Engine::new(4);
    sweep(&serial);
    sweep(&parallel);
    let s = serial.cache().stats();
    let p = parallel.cache().stats();
    assert!(s.hits > 0, "the sweep must share artifacts: {s:?}");
    assert_eq!(
        s, p,
        "hit/miss accounting must not depend on the worker count"
    );
    assert_eq!(
        serial.metrics().counter("exec_cache_hits"),
        s.hits,
        "engine metrics must surface the cache counters"
    );
}
