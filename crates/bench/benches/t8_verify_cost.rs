//! T8 bench: static-analyzer cost per image size.
//!
//! Measures the full `flexprot-verify` pass (flow recovery, the five
//! structural checks, and the dataflow stack — CFG, dominators, liveness,
//! coverage, surface map) over protected workloads of increasing text
//! size, so regressions in the worklist framework show up as wall-clock.

use flexprot_bench::micro::{black_box, Bench};
use flexprot_core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
use flexprot_verify::LintPolicy;

fn bench(c: &mut Bench) {
    let config = ProtectionConfig::new()
        .with_guards(GuardConfig {
            key: 0x0BAD_C0DE_CAFE_F00D,
            ..GuardConfig::with_density(1.0)
        })
        .with_encryption(EncryptConfig::whole_program(0x5EED_5EED_5EED_5EED));
    // Small, medium and large kernels, so the scaling of the analyses is
    // visible across one run of the bench.
    for name in ["rle", "fir", "callgrid"] {
        let image = flexprot_workloads::by_name(name).expect("kernel").image();
        let protected = protect(&image, &config, None).expect("protect");
        let words = protected.image.text.len();
        c.bench_function(&format!("t8/verify_{name}_{words}w"), |b| {
            b.iter(|| {
                flexprot_verify::analyze(
                    black_box(&protected.image),
                    black_box(&protected.secmon),
                    &LintPolicy::default(),
                )
            })
        });
        c.bench_function(&format!("t8/surface_{name}_{words}w"), |b| {
            b.iter(|| {
                flexprot_verify::surface(black_box(&protected.image), black_box(&protected.secmon))
            })
        });
    }
}

fn main() {
    bench(&mut Bench::new());
}
