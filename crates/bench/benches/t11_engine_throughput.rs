//! T11 bench: simulator throughput, predecoded engine vs the reference
//! interpreter.
//!
//! Runs the six protection-matrix programs (three MiniC kernels, three
//! assembly workloads) to completion under the guards+encryption cell on
//! both simulator cores and reports instructions per second and the
//! speedup. The two engines execute the identical committed-instruction
//! stream (pinned by the differential suites), so the wall-clock ratio
//! is exactly the throughput ratio.
//!
//! Not part of the `experiments` tables: wall time is machine-dependent
//! and must stay out of the deterministic CSV output that CI diffs.

use std::time::{Duration, Instant};

use flexprot_core::{protect, EncryptConfig, GuardConfig, Protected, ProtectionConfig};
use flexprot_sim::{EngineKind, Outcome, SimConfig};

const GUARD_KEY: u64 = 0x0BAD_C0DE_CAFE_F00D;
const ENC_KEY: u64 = 0x5EED_5EED_5EED_5EED;
const SAMPLES: usize = 7;

fn matrix_images() -> Vec<(String, flexprot_isa::Image)> {
    let mut images = Vec::new();
    for (name, source) in [
        ("queens", flexprot_cc::kernels::QUEENS),
        ("sieve", flexprot_cc::kernels::SIEVE),
        ("collatz", flexprot_cc::kernels::COLLATZ),
    ] {
        let image = flexprot_cc::compile_to_image(source).expect("kernel compiles");
        images.push((name.to_owned(), image));
    }
    for name in ["rle", "bitcount", "fir"] {
        let workload = flexprot_workloads::by_name(name).expect("kernel");
        images.push((name.to_owned(), workload.image()));
    }
    images
}

/// Median wall time of a full run under `engine`, and the instruction
/// count (identical across engines by construction).
fn measure(protected: &Protected, engine: EngineKind) -> (Duration, u64) {
    let sim = SimConfig::default().with_engine(engine);
    let warm = protected.run(sim.clone());
    assert_eq!(warm.outcome, Outcome::Exit(0), "bench program must exit");
    let instructions = warm.stats.instructions;
    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let r = protected.run(sim.clone());
            let elapsed = start.elapsed();
            assert_eq!(r.stats.instructions, instructions);
            elapsed
        })
        .collect();
    samples.sort_unstable();
    (samples[SAMPLES / 2], instructions)
}

fn main() {
    let config = ProtectionConfig::new()
        .with_guards(GuardConfig {
            key: GUARD_KEY,
            ..GuardConfig::with_density(1.0)
        })
        .with_encryption(EncryptConfig::whole_program(ENC_KEY));
    println!(
        "{:<10} {:>12} {:>16} {:>16} {:>9}",
        "program", "insts", "reference i/s", "predecoded i/s", "speedup"
    );
    let mut at_least_2x = 0;
    let mut total = 0;
    for (name, image) in matrix_images() {
        let protected = protect(&image, &config, None).expect("protect");
        let (ref_time, insts) = measure(&protected, EngineKind::Reference);
        let (fast_time, _) = measure(&protected, EngineKind::Predecoded);
        let ips = |d: Duration| insts as f64 / d.as_secs_f64();
        let speedup = ref_time.as_secs_f64() / fast_time.as_secs_f64();
        println!(
            "{name:<10} {insts:>12} {:>16.0} {:>16.0} {speedup:>8.2}x",
            ips(ref_time),
            ips(fast_time),
        );
        total += 1;
        if speedup >= 2.0 {
            at_least_2x += 1;
        }
    }
    println!("{at_least_2x}/{total} programs at >=2x speedup");
}
