//! T10 bench: guard-network analysis and attack-planning cost.
//!
//! Measures the static machinery behind the targeted attacker — building
//! the [`flexprot_attack::StaticOracle`] (surface map + coverage + guard
//! network with SCCs, articulation points and the minimum vertex cut)
//! and ranking every reachable word into a target plan — so regressions
//! in the graph algorithms or the defeat-closure pricing show up as
//! wall-clock.

use flexprot_attack::StaticOracle;
use flexprot_bench::micro::{black_box, Bench};
use flexprot_core::{protect, GuardConfig, ProtectionConfig};

fn bench(c: &mut Bench) {
    let config = ProtectionConfig::new().with_guards(GuardConfig {
        key: 0x0BAD_C0DE_CAFE_F00D,
        ..GuardConfig::with_density(1.0)
    });
    for name in ["rle", "fir", "callgrid"] {
        let image = flexprot_workloads::by_name(name).expect("kernel").image();
        let protected = protect(&image, &config, None).expect("protect");
        let words = protected.image.text.len();
        c.bench_function(&format!("t10/oracle_{name}_{words}w"), |b| {
            b.iter(|| StaticOracle::new(black_box(&protected.image), black_box(&protected.secmon)))
        });
        let oracle = StaticOracle::new(&protected.image, &protected.secmon);
        c.bench_function(&format!("t10/plan_{name}_{words}w"), |b| {
            b.iter(|| black_box(&oracle).target_plan())
        });
    }
}

fn main() {
    bench(&mut Bench::new());
}
