//! T7 bench: cost of the observability layer.
//!
//! Compares the protected-run simulation wall clock with the event sink
//! detached (the shipping configuration — must be indistinguishable from
//! the pre-trace simulator, <2% regression) and attached (full metric
//! aggregation), so the price of `--metrics` is measured, not guessed.

use flexprot_bench::micro::{black_box, Bench};
use flexprot_bench::{ENC_KEY, GUARD_KEY};
use flexprot_core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
use flexprot_sim::{Outcome, SimConfig};
use flexprot_trace::Recorder;

fn bench(c: &mut Bench) {
    let workload = flexprot_workloads::by_name("rle").expect("kernel");
    let image = workload.image();
    let config = ProtectionConfig::new()
        .with_guards(GuardConfig {
            key: GUARD_KEY,
            ..GuardConfig::with_density(1.0)
        })
        .with_encryption(EncryptConfig::whole_program(ENC_KEY));
    let protected = protect(&image, &config, None).unwrap();

    c.bench_function("t7/protected_sim_sink_detached", |b| {
        b.iter(|| {
            let r = protected.run(SimConfig::default());
            assert_eq!(r.outcome, Outcome::Exit(0));
            r.stats.cycles
        })
    });

    c.bench_function("t7/protected_sim_sink_attached", |b| {
        b.iter(|| {
            let (sink, recorder) = Recorder::new().shared();
            let r = protected.run_traced(SimConfig::default(), &sink);
            assert_eq!(r.outcome, Outcome::Exit(0));
            let committed = recorder
                .borrow()
                .metrics()
                .counter("instructions_committed");
            black_box((r.stats.cycles, committed))
        })
    });

    c.bench_function("t7/protected_sim_sink_attached_jsonl", |b| {
        b.iter(|| {
            let (sink, recorder) = Recorder::with_trace().shared();
            let r = protected.run_traced(SimConfig::default(), &sink);
            assert_eq!(r.outcome, Outcome::Exit(0));
            let lines = recorder.borrow().trace_lines().len();
            black_box((r.stats.cycles, lines))
        })
    });
}

fn main() {
    bench(&mut Bench::new());
}
