//! Property tests for the assembler, driven by the in-repo deterministic
//! PRNG: disassembly of arbitrary valid instruction sequences reassembles
//! to the identical binary.

use flexprot_isa::{Image, Inst, Reg, Rng64};

fn reg(rng: &mut Rng64) -> Reg {
    Reg::from_index(rng.below(32) as u8).expect("in range")
}

/// Samples instructions whose textual form is assembler-parseable
/// standalone (all of them are, by construction of the disassembler).
fn arb_inst(rng: &mut Rng64) -> Inst {
    match rng.below(15) {
        0 => Inst::Addu {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        1 => Inst::Nor {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        2 => Inst::Mul {
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        3 => Inst::Srl {
            rd: reg(rng),
            rt: reg(rng),
            sh: rng.below(32) as u8,
        },
        4 => Inst::Addi {
            rt: reg(rng),
            rs: reg(rng),
            imm: rng.next_i16(),
        },
        5 => Inst::Xori {
            rt: reg(rng),
            rs: reg(rng),
            imm: rng.next_u32() as u16,
        },
        6 => Inst::Lui {
            rt: reg(rng),
            imm: rng.next_u32() as u16,
        },
        7 => Inst::Lw {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        8 => Inst::Sb {
            rt: reg(rng),
            off: rng.next_i16(),
            base: reg(rng),
        },
        9 => Inst::Bne {
            rs: reg(rng),
            rt: reg(rng),
            off: rng.next_i16(),
        },
        10 => Inst::Bgez {
            rs: reg(rng),
            off: rng.next_i16(),
        },
        11 => Inst::J {
            target: rng.below(1 << 26) as u32,
        },
        12 => Inst::Jal {
            target: rng.below(1 << 26) as u32,
        },
        13 => Inst::Jr { rs: reg(rng) },
        _ => Inst::Syscall,
    }
}

fn arb_text(rng: &mut Rng64, max_len: usize) -> Vec<u32> {
    let len = rng.range_inclusive(1, max_len as u64) as usize;
    (0..len).map(|_| arb_inst(rng).encode()).collect()
}

/// disassemble ∘ assemble is the identity on text words.
#[test]
fn disasm_reassembles_identically() {
    let mut rng = Rng64::new(0xA5B1_0001);
    for _ in 0..256 {
        let image = Image::from_text(arb_text(&mut rng, 64));
        let disasm = image.disassemble();
        let reassembled = flexprot_asm::assemble(&disasm)
            .unwrap_or_else(|e| panic!("reassembly failed: {e}\n{disasm}"));
        assert_eq!(reassembled.text, image.text, "\n{disasm}");
    }
}

/// Assembling the same source twice is deterministic.
#[test]
fn assembly_is_deterministic() {
    let mut rng = Rng64::new(0xA5B1_0002);
    for _ in 0..128 {
        let image = Image::from_text(arb_text(&mut rng, 32));
        let disasm = image.disassemble();
        let a = flexprot_asm::assemble(&disasm).expect("first");
        let b = flexprot_asm::assemble(&disasm).expect("second");
        assert_eq!(a, b);
    }
}

/// Data directives lay out exactly the bytes the reference computes.
#[test]
fn word_directive_little_endian() {
    let mut rng = Rng64::new(0xA5B1_0003);
    for _ in 0..64 {
        let count = rng.range_inclusive(1, 15) as usize;
        let values: Vec<i32> = (0..count).map(|_| rng.next_u32() as i32).collect();
        let list = values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!(".data\nd: .word {list}\n.text\nmain: nop\n");
        let image = flexprot_asm::assemble(&src).expect("assemble");
        let mut expected = Vec::new();
        for v in &values {
            expected.extend_from_slice(&(*v as u32).to_le_bytes());
        }
        assert_eq!(image.data, expected);
    }
}
