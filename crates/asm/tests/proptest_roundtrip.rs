//! Property tests for the assembler: disassembly of arbitrary valid
//! instruction sequences reassembles to the identical binary.

use flexprot_isa::{Image, Inst, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::from_index(i).expect("in range"))
}

/// A strategy over instructions whose textual form is assembler-parseable
/// standalone (all of them are, by construction of the disassembler).
fn arb_inst() -> impl Strategy<Value = Inst> {
    let r = arb_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Addu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Nor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Mul { rd, rs, rt }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, sh)| Inst::Srl { rd, rt, sh }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Inst::Addi { rt, rs, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Inst::Xori { rt, rs, imm }),
        (r(), any::<u16>()).prop_map(|(rt, imm)| Inst::Lui { rt, imm }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Lw { rt, off, base }),
        (r(), any::<i16>(), r()).prop_map(|(rt, off, base)| Inst::Sb { rt, off, base }),
        (r(), r(), any::<i16>()).prop_map(|(rs, rt, off)| Inst::Bne { rs, rt, off }),
        (r(), any::<i16>()).prop_map(|(rs, off)| Inst::Bgez { rs, off }),
        (0u32..(1 << 26)).prop_map(|target| Inst::J { target }),
        (0u32..(1 << 26)).prop_map(|target| Inst::Jal { target }),
        r().prop_map(|rs| Inst::Jr { rs }),
        Just(Inst::Syscall),
    ]
}

proptest! {
    /// disassemble ∘ assemble is the identity on text words.
    #[test]
    fn disasm_reassembles_identically(insts in prop::collection::vec(arb_inst(), 1..64)) {
        let image = Image::from_text(insts.iter().map(|i| i.encode()).collect());
        let disasm = image.disassemble();
        let reassembled = flexprot_asm::assemble(&disasm)
            .unwrap_or_else(|e| panic!("reassembly failed: {e}\n{disasm}"));
        prop_assert_eq!(reassembled.text, image.text);
    }

    /// Assembling the same source twice is deterministic.
    #[test]
    fn assembly_is_deterministic(insts in prop::collection::vec(arb_inst(), 1..32)) {
        let image = Image::from_text(insts.iter().map(|i| i.encode()).collect());
        let disasm = image.disassemble();
        let a = flexprot_asm::assemble(&disasm).expect("first");
        let b = flexprot_asm::assemble(&disasm).expect("second");
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Data directives lay out exactly the bytes the reference computes.
    #[test]
    fn word_directive_little_endian(values in prop::collection::vec(any::<i32>(), 1..16)) {
        let list = values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!(".data\nd: .word {list}\n.text\nmain: nop\n");
        let image = flexprot_asm::assemble(&src).expect("assemble");
        let mut expected = Vec::new();
        for v in &values {
            expected.extend_from_slice(&(*v as u32).to_le_bytes());
        }
        prop_assert_eq!(image.data, expected);
    }
}
