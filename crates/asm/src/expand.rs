//! Statement sizing and emission: pseudo-instruction expansion, encoding and
//! relocation generation.

use flexprot_isa::{Image, Inst, Reg, Reloc, RelocKind, WORD_BYTES};

use crate::error::AsmError;
use crate::parse::{Operand, Stmt};

/// Number of text words a statement occupies (pass 1).
pub fn stmt_words(stmt: &Stmt, line: usize) -> Result<u32, AsmError> {
    match stmt {
        Stmt::Globl(_) => Ok(0),
        Stmt::Op { mnemonic, operands } => op_words(mnemonic, operands, line),
        Stmt::SegText | Stmt::SegData => unreachable!("segment switches handled by caller"),
        _ => Err(AsmError::new(
            line,
            "data directive not allowed in .text segment",
        )),
    }
}

fn op_words(mnemonic: &str, operands: &[Operand], line: usize) -> Result<u32, AsmError> {
    Ok(match mnemonic {
        "li" => {
            let value = match operands.get(1) {
                Some(Operand::Imm(v)) => *v,
                _ => return Err(AsmError::new(line, "li expects `li $rd, imm`")),
            };
            if i16::try_from(value).is_ok() || u16::try_from(value).is_ok() {
                1
            } else {
                2
            }
        }
        "la" => 2,
        "bgt" | "blt" | "bge" | "ble" => 2,
        _ => 1,
    })
}

/// New data-segment size after a statement (pass 1).
pub fn data_size_after(stmt: &Stmt, current: u32, line: usize) -> Result<u32, AsmError> {
    match stmt {
        Stmt::Globl(_) => Ok(current),
        Stmt::Word(values) => Ok(align_to(current, 4) + 4 * values.len() as u32),
        Stmt::Half(values) => Ok(align_to(current, 2) + 2 * values.len() as u32),
        Stmt::Byte(values) => Ok(current + values.len() as u32),
        Stmt::Space(n) => Ok(current + n),
        Stmt::Align(n) => Ok(align_to(current, 1 << n)),
        Stmt::Bytes(bytes) => Ok(current + bytes.len() as u32),
        Stmt::Op { .. } => Err(AsmError::new(
            line,
            "instruction not allowed in .data segment",
        )),
        Stmt::SegText | Stmt::SegData => unreachable!("segment switches handled by caller"),
    }
}

fn align_to(value: u32, alignment: u32) -> u32 {
    value.div_ceil(alignment) * alignment
}

/// Emits a data statement's bytes (pass 2). Layout must match
/// [`data_size_after`].
pub fn emit_data(stmt: &Stmt, line: usize, data: &mut Vec<u8>) -> Result<(), AsmError> {
    let pad_to = |data: &mut Vec<u8>, alignment: u32| {
        let target = align_to(data.len() as u32, alignment) as usize;
        data.resize(target, 0);
    };
    let check = |line: usize, v: i64, bits: u32| -> Result<u64, AsmError> {
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << bits) - 1;
        if (min..=max).contains(&v) {
            Ok((v as u64) & ((1u64 << bits) - 1))
        } else {
            Err(AsmError::new(
                line,
                format!("value {v} does not fit in {bits} bits"),
            ))
        }
    };
    match stmt {
        Stmt::Globl(_) => {}
        Stmt::Word(values) => {
            pad_to(data, 4);
            for &v in values {
                let bits = check(line, v, 32)? as u32;
                data.extend_from_slice(&bits.to_le_bytes());
            }
        }
        Stmt::Half(values) => {
            pad_to(data, 2);
            for &v in values {
                let bits = check(line, v, 16)? as u16;
                data.extend_from_slice(&bits.to_le_bytes());
            }
        }
        Stmt::Byte(values) => {
            for &v in values {
                data.push(check(line, v, 8)? as u8);
            }
        }
        Stmt::Space(n) => data.resize(data.len() + *n as usize, 0),
        Stmt::Align(n) => pad_to(data, 1 << n),
        Stmt::Bytes(bytes) => data.extend_from_slice(bytes),
        _ => unreachable!("checked in pass 1"),
    }
    Ok(())
}

/// Emits a text statement's words and relocations (pass 2).
pub fn emit_text(stmt: &Stmt, line: usize, image: &mut Image) -> Result<(), AsmError> {
    match stmt {
        Stmt::Globl(_) => Ok(()),
        Stmt::Op { mnemonic, operands } => {
            let mut e = Emitter { image, line };
            e.op(mnemonic, operands)
        }
        _ => unreachable!("checked in pass 1"),
    }
}

struct Emitter<'a> {
    image: &'a mut Image,
    line: usize,
}

impl Emitter<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, AsmError> {
        Err(AsmError::new(self.line, message))
    }

    fn here(&self) -> u32 {
        self.image.text_base + self.image.text.len() as u32 * WORD_BYTES
    }

    fn push(&mut self, inst: Inst) {
        self.image.text.push(inst.encode());
    }

    fn push_reloc(&mut self, inst: Inst, kind: RelocKind, target: u32) {
        let text_index = self.image.text.len();
        self.image.text.push(inst.encode());
        self.image.relocs.push(Reloc {
            text_index,
            kind,
            target,
        });
    }

    fn reg(&self, operands: &[Operand], i: usize) -> Result<Reg, AsmError> {
        match operands.get(i) {
            Some(Operand::Reg(r)) => Ok(*r),
            Some(other) => self.err(format!(
                "operand {} must be a register, found {}",
                i + 1,
                other.kind()
            )),
            None => self.err(format!("missing operand {}", i + 1)),
        }
    }

    fn mem(&self, operands: &[Operand], i: usize) -> Result<(i16, Reg), AsmError> {
        match operands.get(i) {
            Some(Operand::Mem { off, base }) => {
                let off = i16::try_from(*off)
                    .map_err(|_| AsmError::new(self.line, format!("offset {off} out of range")))?;
                Ok((off, *base))
            }
            Some(other) => self.err(format!(
                "operand {} must be `off($base)`, found {}",
                i + 1,
                other.kind()
            )),
            None => self.err(format!("missing operand {}", i + 1)),
        }
    }

    fn imm(&self, operands: &[Operand], i: usize) -> Result<i64, AsmError> {
        match operands.get(i) {
            Some(Operand::Imm(v)) => Ok(*v),
            Some(other) => self.err(format!(
                "operand {} must be an immediate, found {}",
                i + 1,
                other.kind()
            )),
            None => self.err(format!("missing operand {}", i + 1)),
        }
    }

    fn simm16(&self, operands: &[Operand], i: usize) -> Result<i16, AsmError> {
        let v = self.imm(operands, i)?;
        i16::try_from(v)
            .map_err(|_| AsmError::new(self.line, format!("immediate {v} does not fit in i16")))
    }

    fn uimm16(&self, operands: &[Operand], i: usize) -> Result<u16, AsmError> {
        let v = self.imm(operands, i)?;
        u16::try_from(v)
            .map_err(|_| AsmError::new(self.line, format!("immediate {v} does not fit in u16")))
    }

    fn shamt(&self, operands: &[Operand], i: usize) -> Result<u8, AsmError> {
        let v = self.imm(operands, i)?;
        if (0..32).contains(&v) {
            Ok(v as u8)
        } else {
            self.err(format!("shift amount {v} out of range 0..32"))
        }
    }

    fn resolve(&self, name: &str) -> Result<u32, AsmError> {
        self.image
            .symbol(name)
            .ok_or_else(|| AsmError::new(self.line, format!("undefined label `{name}`")))
    }

    /// Branch offset (in words) from the *next* instruction to `target`.
    fn branch_off(&self, branch_addr: u32, target: u32) -> Result<i16, AsmError> {
        let delta = (i64::from(target) - i64::from(branch_addr) - 4) / 4;
        i16::try_from(delta).map_err(|_| {
            AsmError::new(
                self.line,
                format!("branch target {target:#x} out of 16-bit range"),
            )
        })
    }

    /// Resolves a branch destination operand to (offset, reloc target).
    fn branch_dest(
        &self,
        operands: &[Operand],
        i: usize,
        branch_addr: u32,
    ) -> Result<(i16, Option<u32>), AsmError> {
        match operands.get(i) {
            Some(Operand::Label(name)) => {
                let target = self.resolve(name)?;
                Ok((self.branch_off(branch_addr, target)?, Some(target)))
            }
            Some(Operand::Imm(v)) => {
                let off = i16::try_from(*v).map_err(|_| {
                    AsmError::new(self.line, format!("branch offset {v} does not fit in i16"))
                })?;
                Ok((off, None))
            }
            Some(other) => self.err(format!(
                "operand {} must be a label or offset, found {}",
                i + 1,
                other.kind()
            )),
            None => self.err(format!("missing operand {}", i + 1)),
        }
    }

    fn push_branch(
        &mut self,
        make: impl Fn(i16) -> Inst,
        operands: &[Operand],
        dest_index: usize,
    ) -> Result<(), AsmError> {
        let addr = self.here();
        let (off, target) = self.branch_dest(operands, dest_index, addr)?;
        match target {
            Some(target) => self.push_reloc(make(off), RelocKind::Branch16, target),
            None => self.push(make(off)),
        }
        Ok(())
    }

    fn jump_dest(&self, operands: &[Operand], i: usize) -> Result<(u32, Option<u32>), AsmError> {
        match operands.get(i) {
            Some(Operand::Label(name)) => {
                let target = self.resolve(name)?;
                Ok((target >> 2, Some(target)))
            }
            Some(Operand::Imm(v)) => {
                let addr = u32::try_from(*v).map_err(|_| {
                    AsmError::new(self.line, format!("jump target {v} out of range"))
                })?;
                Ok((addr >> 2, None))
            }
            Some(other) => self.err(format!(
                "operand {} must be a label or address, found {}",
                i + 1,
                other.kind()
            )),
            None => self.err(format!("missing operand {}", i + 1)),
        }
    }

    fn arity(&self, operands: &[Operand], n: usize) -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            self.err(format!("expected {n} operands, found {}", operands.len()))
        }
    }

    fn op(&mut self, mnemonic: &str, ops: &[Operand]) -> Result<(), AsmError> {
        type R3 = fn(Reg, Reg, Reg) -> Inst;
        let r3: Option<R3> = match mnemonic {
            "add" => Some(|rd, rs, rt| Inst::Add { rd, rs, rt }),
            "addu" => Some(|rd, rs, rt| Inst::Addu { rd, rs, rt }),
            "sub" => Some(|rd, rs, rt| Inst::Sub { rd, rs, rt }),
            "subu" => Some(|rd, rs, rt| Inst::Subu { rd, rs, rt }),
            "and" => Some(|rd, rs, rt| Inst::And { rd, rs, rt }),
            "or" => Some(|rd, rs, rt| Inst::Or { rd, rs, rt }),
            "xor" => Some(|rd, rs, rt| Inst::Xor { rd, rs, rt }),
            "nor" => Some(|rd, rs, rt| Inst::Nor { rd, rs, rt }),
            "slt" => Some(|rd, rs, rt| Inst::Slt { rd, rs, rt }),
            "sltu" => Some(|rd, rs, rt| Inst::Sltu { rd, rs, rt }),
            "mul" => Some(|rd, rs, rt| Inst::Mul { rd, rs, rt }),
            "div" => Some(|rd, rs, rt| Inst::Div { rd, rs, rt }),
            "rem" => Some(|rd, rs, rt| Inst::Rem { rd, rs, rt }),
            _ => None,
        };
        if let Some(make) = r3 {
            self.arity(ops, 3)?;
            let (rd, rs, rt) = (self.reg(ops, 0)?, self.reg(ops, 1)?, self.reg(ops, 2)?);
            self.push(make(rd, rs, rt));
            return Ok(());
        }

        match mnemonic {
            // --- shifts ---
            "sll" | "srl" | "sra" => {
                self.arity(ops, 3)?;
                let (rd, rt) = (self.reg(ops, 0)?, self.reg(ops, 1)?);
                let sh = self.shamt(ops, 2)?;
                self.push(match mnemonic {
                    "sll" => Inst::Sll { rd, rt, sh },
                    "srl" => Inst::Srl { rd, rt, sh },
                    _ => Inst::Sra { rd, rt, sh },
                });
            }
            "sllv" | "srlv" | "srav" => {
                self.arity(ops, 3)?;
                let (rd, rt, rs) = (self.reg(ops, 0)?, self.reg(ops, 1)?, self.reg(ops, 2)?);
                self.push(match mnemonic {
                    "sllv" => Inst::Sllv { rd, rt, rs },
                    "srlv" => Inst::Srlv { rd, rt, rs },
                    _ => Inst::Srav { rd, rt, rs },
                });
            }
            // --- immediate ALU ---
            "addi" | "slti" | "sltiu" => {
                self.arity(ops, 3)?;
                let (rt, rs) = (self.reg(ops, 0)?, self.reg(ops, 1)?);
                let imm = self.simm16(ops, 2)?;
                self.push(match mnemonic {
                    "addi" => Inst::Addi { rt, rs, imm },
                    "slti" => Inst::Slti { rt, rs, imm },
                    _ => Inst::Sltiu { rt, rs, imm },
                });
            }
            "andi" | "ori" | "xori" => {
                self.arity(ops, 3)?;
                let (rt, rs) = (self.reg(ops, 0)?, self.reg(ops, 1)?);
                let imm = self.uimm16(ops, 2)?;
                self.push(match mnemonic {
                    "andi" => Inst::Andi { rt, rs, imm },
                    "ori" => Inst::Ori { rt, rs, imm },
                    _ => Inst::Xori { rt, rs, imm },
                });
            }
            "lui" => {
                self.arity(ops, 2)?;
                let rt = self.reg(ops, 0)?;
                let imm = self.uimm16(ops, 1)?;
                self.push(Inst::Lui { rt, imm });
            }
            // --- memory ---
            "lb" | "lh" | "lw" | "lbu" | "lhu" | "sb" | "sh" | "sw" => {
                self.arity(ops, 2)?;
                let rt = self.reg(ops, 0)?;
                let (off, base) = self.mem(ops, 1)?;
                self.push(match mnemonic {
                    "lb" => Inst::Lb { rt, off, base },
                    "lh" => Inst::Lh { rt, off, base },
                    "lw" => Inst::Lw { rt, off, base },
                    "lbu" => Inst::Lbu { rt, off, base },
                    "lhu" => Inst::Lhu { rt, off, base },
                    "sb" => Inst::Sb { rt, off, base },
                    "sh" => Inst::Sh { rt, off, base },
                    _ => Inst::Sw { rt, off, base },
                });
            }
            // --- branches ---
            "beq" | "bne" => {
                self.arity(ops, 3)?;
                let (rs, rt) = (self.reg(ops, 0)?, self.reg(ops, 1)?);
                let make = move |off| match mnemonic {
                    "beq" => Inst::Beq { rs, rt, off },
                    _ => Inst::Bne { rs, rt, off },
                };
                self.push_branch(make, ops, 2)?;
            }
            "blez" | "bgtz" | "bltz" | "bgez" => {
                self.arity(ops, 2)?;
                let rs = self.reg(ops, 0)?;
                let make = move |off| match mnemonic {
                    "blez" => Inst::Blez { rs, off },
                    "bgtz" => Inst::Bgtz { rs, off },
                    "bltz" => Inst::Bltz { rs, off },
                    _ => Inst::Bgez { rs, off },
                };
                self.push_branch(make, ops, 1)?;
            }
            "beqz" | "bnez" => {
                self.arity(ops, 2)?;
                let rs = self.reg(ops, 0)?;
                let make = move |off| match mnemonic {
                    "beqz" => Inst::Beq {
                        rs,
                        rt: Reg::ZERO,
                        off,
                    },
                    _ => Inst::Bne {
                        rs,
                        rt: Reg::ZERO,
                        off,
                    },
                };
                self.push_branch(make, ops, 1)?;
            }
            "b" => {
                self.arity(ops, 1)?;
                let make = |off| Inst::Beq {
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    off,
                };
                self.push_branch(make, ops, 0)?;
            }
            "bgt" | "blt" | "bge" | "ble" => {
                self.arity(ops, 3)?;
                let (a, b) = (self.reg(ops, 0)?, self.reg(ops, 1)?);
                // bgt a,b  <=>  slt $at, b, a ; bne $at, $zero
                // blt a,b  <=>  slt $at, a, b ; bne
                // bge a,b  <=>  slt $at, a, b ; beq
                // ble a,b  <=>  slt $at, b, a ; beq
                let (rs, rt) = match mnemonic {
                    "bgt" | "ble" => (b, a),
                    _ => (a, b),
                };
                self.push(Inst::Slt {
                    rd: Reg::AT,
                    rs,
                    rt,
                });
                let taken_on_set = matches!(mnemonic, "bgt" | "blt");
                let make = move |off| {
                    if taken_on_set {
                        Inst::Bne {
                            rs: Reg::AT,
                            rt: Reg::ZERO,
                            off,
                        }
                    } else {
                        Inst::Beq {
                            rs: Reg::AT,
                            rt: Reg::ZERO,
                            off,
                        }
                    }
                };
                self.push_branch(make, ops, 2)?;
            }
            // --- jumps ---
            "j" | "jal" => {
                self.arity(ops, 1)?;
                let (target, reloc) = self.jump_dest(ops, 0)?;
                let inst = if mnemonic == "j" {
                    Inst::J { target }
                } else {
                    Inst::Jal { target }
                };
                match reloc {
                    Some(addr) => self.push_reloc(inst, RelocKind::Jump26, addr),
                    None => self.push(inst),
                }
            }
            "jr" => {
                self.arity(ops, 1)?;
                let rs = self.reg(ops, 0)?;
                self.push(Inst::Jr { rs });
            }
            "jalr" => {
                let (rd, rs) = match ops.len() {
                    1 => (Reg::RA, self.reg(ops, 0)?),
                    2 => (self.reg(ops, 0)?, self.reg(ops, 1)?),
                    n => return self.err(format!("jalr expects 1 or 2 operands, found {n}")),
                };
                self.push(Inst::Jalr { rd, rs });
            }
            // --- system ---
            "syscall" => {
                self.arity(ops, 0)?;
                self.push(Inst::Syscall);
            }
            "break" => {
                self.arity(ops, 0)?;
                self.push(Inst::Break);
            }
            "nop" => {
                self.arity(ops, 0)?;
                self.push(Inst::NOP);
            }
            // --- pseudo data movement ---
            "move" => {
                self.arity(ops, 2)?;
                let (rd, rs) = (self.reg(ops, 0)?, self.reg(ops, 1)?);
                self.push(Inst::Addu {
                    rd,
                    rs,
                    rt: Reg::ZERO,
                });
            }
            "not" => {
                self.arity(ops, 2)?;
                let (rd, rs) = (self.reg(ops, 0)?, self.reg(ops, 1)?);
                self.push(Inst::Nor {
                    rd,
                    rs,
                    rt: Reg::ZERO,
                });
            }
            "neg" => {
                self.arity(ops, 2)?;
                let (rd, rt) = (self.reg(ops, 0)?, self.reg(ops, 1)?);
                self.push(Inst::Sub {
                    rd,
                    rs: Reg::ZERO,
                    rt,
                });
            }
            "li" => {
                self.arity(ops, 2)?;
                let rt = self.reg(ops, 0)?;
                let value = self.imm(ops, 1)?;
                if let Ok(imm) = i16::try_from(value) {
                    self.push(Inst::Addi {
                        rt,
                        rs: Reg::ZERO,
                        imm,
                    });
                } else if let Ok(imm) = u16::try_from(value) {
                    self.push(Inst::Ori {
                        rt,
                        rs: Reg::ZERO,
                        imm,
                    });
                } else {
                    let bits = u32::try_from(value)
                        .or_else(|_| i32::try_from(value).map(|v| v as u32))
                        .map_err(|_| {
                            AsmError::new(self.line, format!("li value {value} exceeds 32 bits"))
                        })?;
                    self.push(Inst::Lui {
                        rt,
                        imm: (bits >> 16) as u16,
                    });
                    self.push(Inst::Ori {
                        rt,
                        rs: rt,
                        imm: (bits & 0xFFFF) as u16,
                    });
                }
            }
            "la" => {
                self.arity(ops, 2)?;
                let rt = self.reg(ops, 0)?;
                let name = match ops.get(1) {
                    Some(Operand::Label(name)) => name.clone(),
                    Some(other) => {
                        return self.err(format!("la expects a label, found {}", other.kind()))
                    }
                    None => return self.err("missing label operand"),
                };
                let target = self.resolve(&name)?;
                self.push_reloc(
                    Inst::Lui {
                        rt,
                        imm: (target >> 16) as u16,
                    },
                    RelocKind::Hi16,
                    target,
                );
                self.push_reloc(
                    Inst::Ori {
                        rt,
                        rs: rt,
                        imm: (target & 0xFFFF) as u16,
                    },
                    RelocKind::Lo16,
                    target,
                );
            }
            other => return self.err(format!("unknown mnemonic `{other}`")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_helper() {
        assert_eq!(align_to(0, 4), 0);
        assert_eq!(align_to(1, 4), 4);
        assert_eq!(align_to(4, 4), 4);
        assert_eq!(align_to(13, 2), 14);
    }
}
