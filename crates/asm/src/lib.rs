//! A two-pass assembler for the SP32 ISA.
//!
//! The assembler turns MIPS-flavoured assembly text into a
//! [`flexprot_isa::Image`], recording a relocation for every address-bearing
//! field it emits so that downstream binary-rewriting passes (guard
//! insertion) can move code safely.
//!
//! # Supported syntax
//!
//! * labels (`name:`), comments (`# …`), one statement per line;
//! * all native SP32 instructions with `$`-prefixed register operands;
//! * pseudo-instructions: `li`, `la`, `move`, `nop`, `not`, `neg`, `b`,
//!   `beqz`, `bnez`, `bgt`, `blt`, `bge`, `ble`;
//! * directives: `.text`, `.data`, `.globl`, `.word`, `.half`, `.byte`,
//!   `.space`, `.align`, `.ascii`, `.asciiz`.
//!
//! The entry point is the `main` symbol when defined, otherwise the first
//! text word.
//!
//! # Example
//!
//! ```
//! let image = flexprot_asm::assemble(r#"
//!         .text
//! main:   li   $t0, 7
//!         li   $v0, 1          # print_int service
//!         addu $a0, $t0, $zero
//!         syscall
//!         li   $v0, 10         # exit service
//!         syscall
//! "#)?;
//! assert!(image.symbols.contains_key("main"));
//! # Ok::<(), flexprot_asm::AsmError>(())
//! ```

mod error;
mod expand;
mod parse;

pub use error::AsmError;

use std::collections::BTreeMap;

use flexprot_isa::{Image, DATA_BASE, TEXT_BASE, WORD_BYTES};

use parse::{Line, Stmt};

/// Assembles SP32 source text into a program [`Image`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying a line number for syntax errors,
/// undefined or duplicate labels, out-of-range immediates and misused
/// directives.
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    let lines: Vec<Line> = parse::parse_source(source)?;

    // Pass 1: lay out statements, assign label addresses.
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut text_len_words: u32 = 0;
    let mut data_len_bytes: u32 = 0;
    let mut in_text = true;
    for line in &lines {
        let here = if in_text {
            TEXT_BASE + text_len_words * WORD_BYTES
        } else {
            DATA_BASE + data_len_bytes
        };
        for label in &line.labels {
            if symbols.insert(label.clone(), here).is_some() {
                return Err(AsmError::new(
                    line.number,
                    format!("duplicate label `{label}`"),
                ));
            }
        }
        match &line.stmt {
            Some(Stmt::SegText) => in_text = true,
            Some(Stmt::SegData) => in_text = false,
            Some(stmt) => {
                if in_text {
                    text_len_words += expand::stmt_words(stmt, line.number)?;
                } else {
                    data_len_bytes = expand::data_size_after(stmt, data_len_bytes, line.number)?;
                }
            }
            None => {}
        }
    }

    // Pass 2: emit words, data bytes and relocations.
    let mut image = Image::from_text(Vec::with_capacity(text_len_words as usize));
    image.symbols = symbols;
    let mut in_text = true;
    for line in &lines {
        match &line.stmt {
            Some(Stmt::SegText) => in_text = true,
            Some(Stmt::SegData) => in_text = false,
            Some(stmt) => {
                if in_text {
                    expand::emit_text(stmt, line.number, &mut image)?;
                } else {
                    expand::emit_data(stmt, line.number, &mut image.data)?;
                }
            }
            None => {}
        }
    }
    debug_assert_eq!(image.text.len() as u32, text_len_words);
    debug_assert_eq!(image.data.len() as u32, data_len_bytes);

    if let Some(&main) = image.symbols.get("main") {
        image.entry = main;
    }
    Ok(image)
}

/// Assembles source and panics with a readable message on failure.
///
/// Convenience for tests and statically-known-good embedded kernels.
///
/// # Panics
///
/// Panics if `source` fails to assemble.
pub fn assemble_or_panic(source: &str) -> Image {
    match assemble(source) {
        Ok(image) => image,
        Err(err) => panic!("assembly failed: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_isa::{Inst, Reg, RelocKind};

    #[test]
    fn minimal_program_assembles() {
        let img = assemble("        .text\nmain:   li $v0, 10\n        syscall\n").unwrap();
        assert_eq!(img.text.len(), 2);
        assert_eq!(img.entry, img.text_base);
        assert_eq!(
            Inst::decode(img.text[0]).unwrap(),
            Inst::Addi {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10
            }
        );
        assert_eq!(Inst::decode(img.text[1]).unwrap(), Inst::Syscall);
    }

    #[test]
    fn entry_defaults_to_text_base_without_main() {
        let img = assemble("start: syscall\n").unwrap();
        assert_eq!(img.entry, img.text_base);
    }

    #[test]
    fn labels_resolve_across_segments() {
        let img = assemble(
            r#"
        .data
msg:    .asciiz "hi"
        .align 2
val:    .word 42
        .text
main:   la $a0, msg
        lw $t0, 0($a0)
        li $v0, 10
        syscall
"#,
        )
        .unwrap();
        assert_eq!(img.symbol("msg"), Some(img.data_base));
        // "hi\0" is 3 bytes; .align 2 pads to 4.
        assert_eq!(img.symbol("val"), Some(img.data_base + 4));
        assert_eq!(&img.data[0..3], b"hi\0");
        assert_eq!(&img.data[4..8], &42u32.to_le_bytes());
    }

    #[test]
    fn la_emits_hi_lo_relocs() {
        let img = assemble(
            r#"
        .data
msg:    .word 1
        .text
main:   la $a0, msg
        li $v0, 10
        syscall
"#,
        )
        .unwrap();
        let msg = img.symbol("msg").unwrap();
        let hi = img
            .relocs
            .iter()
            .find(|r| r.kind == RelocKind::Hi16)
            .unwrap();
        let lo = img
            .relocs
            .iter()
            .find(|r| r.kind == RelocKind::Lo16)
            .unwrap();
        assert_eq!(hi.target, msg);
        assert_eq!(lo.target, msg);
        assert_eq!(hi.text_index, 0);
        assert_eq!(lo.text_index, 1);
        match Inst::decode(img.text[0]).unwrap() {
            Inst::Lui { rt, imm } => {
                assert_eq!(rt, Reg::A0);
                assert_eq!(imm, (msg >> 16) as u16);
            }
            other => panic!("expected lui, got {other}"),
        }
        match Inst::decode(img.text[1]).unwrap() {
            Inst::Ori { rt, rs, imm } => {
                assert_eq!((rt, rs), (Reg::A0, Reg::A0));
                assert_eq!(imm, (msg & 0xFFFF) as u16);
            }
            other => panic!("expected ori, got {other}"),
        }
    }

    #[test]
    fn branches_and_jumps_get_relocs() {
        let img = assemble(
            r#"
main:   beq $t0, $t1, skip
        jal main
skip:   j main
"#,
        )
        .unwrap();
        let kinds: Vec<RelocKind> = img.relocs.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RelocKind::Branch16));
        assert_eq!(kinds.iter().filter(|k| **k == RelocKind::Jump26).count(), 2);
        // beq skips one instruction: offset +1.
        match Inst::decode(img.text[0]).unwrap() {
            Inst::Beq { off, .. } => assert_eq!(off, 1),
            other => panic!("expected beq, got {other}"),
        }
        match Inst::decode(img.text[2]).unwrap() {
            Inst::J { target } => assert_eq!(target << 2, img.text_base),
            other => panic!("expected j, got {other}"),
        }
    }

    #[test]
    fn li_picks_shortest_encoding() {
        let img = assemble("main: li $t0, -5\n li $t1, 0x8000\n li $t2, 0x12345678\n").unwrap();
        // -5 -> addi (1 word); 0x8000 -> ori (1 word); big -> lui+ori (2 words).
        assert_eq!(img.text.len(), 4);
        assert!(matches!(
            Inst::decode(img.text[0]).unwrap(),
            Inst::Addi { imm: -5, .. }
        ));
        assert!(matches!(
            Inst::decode(img.text[1]).unwrap(),
            Inst::Ori { imm: 0x8000, .. }
        ));
        assert!(matches!(
            Inst::decode(img.text[2]).unwrap(),
            Inst::Lui { imm: 0x1234, .. }
        ));
        assert!(matches!(
            Inst::decode(img.text[3]).unwrap(),
            Inst::Ori { imm: 0x5678, .. }
        ));
    }

    #[test]
    fn pseudo_branches_expand_with_at() {
        let img = assemble("main: bgt $t0, $t1, main\n nop\n").unwrap();
        assert_eq!(img.text.len(), 3);
        match Inst::decode(img.text[0]).unwrap() {
            Inst::Slt { rd, rs, rt } => {
                assert_eq!(rd, Reg::AT);
                // bgt rs,rt === rt < rs
                assert_eq!((rs, rt), (Reg::T1, Reg::T0));
            }
            other => panic!("expected slt, got {other}"),
        }
        match Inst::decode(img.text[1]).unwrap() {
            Inst::Bne { rs, rt, off } => {
                assert_eq!((rs, rt), (Reg::AT, Reg::ZERO));
                assert_eq!(off, -2); // back to main
            }
            other => panic!("expected bne, got {other}"),
        }
    }

    #[test]
    fn undefined_label_is_reported_with_line() {
        let err = assemble("main: j nowhere\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nowhere"), "{msg}");
        assert!(msg.contains("line 1"), "{msg}");
    }

    #[test]
    fn duplicate_label_rejected() {
        assert!(assemble("a: nop\na: nop\n").is_err());
    }

    #[test]
    fn out_of_range_immediate_rejected() {
        assert!(assemble("main: addi $t0, $t0, 40000\n").is_err());
        assert!(assemble("main: ori $t0, $t0, -1\n").is_err());
        assert!(assemble("main: sll $t0, $t0, 32\n").is_err());
    }

    #[test]
    fn word_directive_in_text_rejected() {
        assert!(assemble(".text\nmain: .word 5\n").is_err());
    }

    #[test]
    fn align_and_space_layout() {
        let img = assemble(
            r#"
        .data
a:      .byte 1
        .align 2
b:      .word 2
c:      .space 5
        .align 1
d:      .half 3
        .text
main:   nop
"#,
        )
        .unwrap();
        let base = img.data_base;
        assert_eq!(img.symbol("a"), Some(base));
        assert_eq!(img.symbol("b"), Some(base + 4));
        assert_eq!(img.symbol("c"), Some(base + 8));
        // .align 1 aligns to 2: 8 + 5 = 13 -> 14
        assert_eq!(img.symbol("d"), Some(base + 14));
        assert_eq!(img.data.len(), 16);
    }

    #[test]
    fn string_escapes() {
        let img =
            assemble(".data\ns: .asciiz \"a\\n\\t\\\"\\\\\\0b\"\n.text\nmain: nop\n").unwrap();
        assert_eq!(&img.data, b"a\n\t\"\\\0b\0");
    }

    #[test]
    fn disassemble_reassemble_fixpoint() {
        let src = r#"
main:   li   $t0, 3
        li   $t1, 4
        addu $t2, $t0, $t1
        mul  $t3, $t2, $t2
        sw   $t3, 0($sp)
        lw   $a0, 0($sp)
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#;
        let img = assemble(src).unwrap();
        let disasm = img.disassemble();
        let img2 = assemble(&disasm).unwrap();
        assert_eq!(img.text, img2.text);
    }

    #[test]
    fn all_native_mnemonics_assemble() {
        let src = r#"
main:   add  $t0, $t1, $t2
        addu $t0, $t1, $t2
        sub  $t0, $t1, $t2
        subu $t0, $t1, $t2
        and  $t0, $t1, $t2
        or   $t0, $t1, $t2
        xor  $t0, $t1, $t2
        nor  $t0, $t1, $t2
        slt  $t0, $t1, $t2
        sltu $t0, $t1, $t2
        mul  $t0, $t1, $t2
        div  $t0, $t1, $t2
        rem  $t0, $t1, $t2
        sll  $t0, $t1, 4
        srl  $t0, $t1, 4
        sra  $t0, $t1, 4
        sllv $t0, $t1, $t2
        srlv $t0, $t1, $t2
        srav $t0, $t1, $t2
        addi $t0, $t1, -1
        slti $t0, $t1, 5
        sltiu $t0, $t1, 5
        andi $t0, $t1, 15
        ori  $t0, $t1, 15
        xori $t0, $t1, 15
        lui  $t0, 0x1001
        lb   $t0, 0($sp)
        lh   $t0, 0($sp)
        lw   $t0, 0($sp)
        lbu  $t0, 0($sp)
        lhu  $t0, 0($sp)
        sb   $t0, 0($sp)
        sh   $t0, 0($sp)
        sw   $t0, 0($sp)
        beq  $t0, $t1, main
        bne  $t0, $t1, main
        blez $t0, main
        bgtz $t0, main
        bltz $t0, main
        bgez $t0, main
        jr   $ra
        jalr $ra, $t0
        j    main
        jal  main
        break
        syscall
"#;
        let img = assemble(src).unwrap();
        assert_eq!(img.text.len(), 46);
        for (addr, decoded) in img.decode_text() {
            decoded.unwrap_or_else(|e| panic!("word at {addr:#x} failed to decode: {e}"));
        }
    }
}
