//! Source-level parsing: lines, labels, statements and operands.

use flexprot_isa::Reg;

use crate::error::AsmError;

/// One parsed operand of an instruction statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A `$`-prefixed register.
    Reg(Reg),
    /// A numeric literal (decimal, hex, or character).
    Imm(i64),
    /// A bare identifier referring to a label.
    Label(String),
    /// A memory operand `off($base)`.
    Mem { off: i64, base: Reg },
}

impl Operand {
    /// Human-readable operand-kind name, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Operand::Reg(_) => "register",
            Operand::Imm(_) => "immediate",
            Operand::Label(_) => "label",
            Operand::Mem { .. } => "memory operand",
        }
    }
}

/// One statement (instruction or directive).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `.text`
    SegText,
    /// `.data`
    SegData,
    /// `.globl name` — recorded but otherwise ignored (all labels are
    /// visible in the image's symbol table).
    Globl(String),
    /// `.word v, v, …`
    Word(Vec<i64>),
    /// `.half v, v, …`
    Half(Vec<i64>),
    /// `.byte v, v, …`
    Byte(Vec<i64>),
    /// `.space n`
    Space(u32),
    /// `.align n` — align to a 2^n boundary.
    Align(u32),
    /// `.ascii "…"` / `.asciiz "…"` (bytes include the NUL for asciiz).
    Bytes(Vec<u8>),
    /// An instruction or pseudo-instruction.
    Op {
        mnemonic: String,
        operands: Vec<Operand>,
    },
}

/// One source line after parsing: its labels and optional statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Line {
    /// 1-based source line number.
    pub number: usize,
    /// Labels defined at this line's address.
    pub labels: Vec<String>,
    /// The statement, if the line has one.
    pub stmt: Option<Stmt>,
}

/// Parses full source text into lines.
pub fn parse_source(source: &str) -> Result<Vec<Line>, AsmError> {
    source
        .lines()
        .enumerate()
        .map(|(i, raw)| parse_line(i + 1, raw))
        .collect()
}

fn parse_line(number: usize, raw: &str) -> Result<Line, AsmError> {
    let mut rest = strip_comment(raw).trim();
    let mut labels = Vec::new();
    // Consume leading `name:` labels. A colon inside a string can't occur
    // before the directive keyword, so scanning the prefix is safe.
    while let Some(colon) = rest.find(':') {
        let candidate = rest[..colon].trim();
        if candidate.is_empty() || !is_ident(candidate) {
            break;
        }
        labels.push(candidate.to_owned());
        rest = rest[colon + 1..].trim();
    }
    let stmt = if rest.is_empty() {
        None
    } else {
        Some(parse_stmt(number, rest)?)
    };
    Ok(Line {
        number,
        labels,
        stmt,
    })
}

/// Removes a trailing `# comment`, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_stmt(number: usize, text: &str) -> Result<Stmt, AsmError> {
    let (head, tail) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    if let Some(directive) = head.strip_prefix('.') {
        return parse_directive(number, directive, tail);
    }
    let operands = parse_operands(number, tail)?;
    Ok(Stmt::Op {
        mnemonic: head.to_ascii_lowercase(),
        operands,
    })
}

fn parse_directive(number: usize, directive: &str, tail: &str) -> Result<Stmt, AsmError> {
    let int_list = |tail: &str| -> Result<Vec<i64>, AsmError> {
        split_operands(tail)
            .into_iter()
            .map(|tok| {
                parse_int(&tok)
                    .ok_or_else(|| AsmError::new(number, format!("invalid integer `{tok}`")))
            })
            .collect()
    };
    match directive {
        "text" => Ok(Stmt::SegText),
        "data" => Ok(Stmt::SegData),
        "globl" | "global" => Ok(Stmt::Globl(tail.to_owned())),
        "word" => Ok(Stmt::Word(int_list(tail)?)),
        "half" => Ok(Stmt::Half(int_list(tail)?)),
        "byte" => Ok(Stmt::Byte(int_list(tail)?)),
        "space" => {
            let n = parse_int(tail)
                .filter(|&n| (0..=u32::MAX as i64).contains(&n))
                .ok_or_else(|| AsmError::new(number, format!("invalid .space size `{tail}`")))?;
            Ok(Stmt::Space(n as u32))
        }
        "align" => {
            let n = parse_int(tail)
                .filter(|&n| (0..=16).contains(&n))
                .ok_or_else(|| {
                    AsmError::new(number, format!("invalid .align exponent `{tail}`"))
                })?;
            Ok(Stmt::Align(n as u32))
        }
        "ascii" | "asciiz" => {
            let mut bytes = parse_string(number, tail)?;
            if directive == "asciiz" {
                bytes.push(0);
            }
            Ok(Stmt::Bytes(bytes))
        }
        other => Err(AsmError::new(
            number,
            format!("unknown directive `.{other}`"),
        )),
    }
}

fn parse_string(number: usize, tok: &str) -> Result<Vec<u8>, AsmError> {
    let inner = tok
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(number, format!("expected string literal, found `{tok}`")))?;
    let mut bytes = Vec::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        let esc = chars
            .next()
            .ok_or_else(|| AsmError::new(number, "dangling escape in string"))?;
        bytes.push(match esc {
            'n' => b'\n',
            't' => b'\t',
            'r' => b'\r',
            '0' => 0,
            '\\' => b'\\',
            '"' => b'"',
            other => {
                return Err(AsmError::new(
                    number,
                    format!("unknown string escape `\\{other}`"),
                ))
            }
        });
    }
    Ok(bytes)
}

/// Splits `a, b, c` at top-level commas, keeping `off($reg)` intact.
fn split_operands(tail: &str) -> Vec<String> {
    if tail.trim().is_empty() {
        return Vec::new();
    }
    tail.split(',').map(|t| t.trim().to_owned()).collect()
}

fn parse_operands(number: usize, tail: &str) -> Result<Vec<Operand>, AsmError> {
    split_operands(tail)
        .into_iter()
        .map(|tok| parse_operand(number, &tok))
        .collect()
}

fn parse_operand(number: usize, tok: &str) -> Result<Operand, AsmError> {
    if tok.is_empty() {
        return Err(AsmError::new(number, "empty operand"));
    }
    if let Some(open) = tok.find('(') {
        let close = tok
            .rfind(')')
            .ok_or_else(|| AsmError::new(number, format!("unbalanced parens in `{tok}`")))?;
        let off_text = tok[..open].trim();
        let off = if off_text.is_empty() {
            0
        } else {
            parse_int(off_text)
                .ok_or_else(|| AsmError::new(number, format!("invalid offset `{off_text}`")))?
        };
        let base: Reg = tok[open + 1..close]
            .trim()
            .parse()
            .map_err(|e| AsmError::new(number, format!("{e}")))?;
        return Ok(Operand::Mem { off, base });
    }
    if tok.starts_with('$') {
        let reg: Reg = tok
            .parse()
            .map_err(|e| AsmError::new(number, format!("{e}")))?;
        return Ok(Operand::Reg(reg));
    }
    if let Some(value) = parse_int(tok) {
        return Ok(Operand::Imm(value));
    }
    if is_ident(tok) {
        return Ok(Operand::Label(tok.to_owned()));
    }
    Err(AsmError::new(
        number,
        format!("unparseable operand `{tok}`"),
    ))
}

/// Parses decimal, hex (`0x…`), negative and character (`'a'`, `'\n'`)
/// literals.
fn parse_int(tok: &str) -> Option<i64> {
    let tok = tok.trim();
    if let Some(inner) = tok.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
        return match inner {
            "\\n" => Some(b'\n' as i64),
            "\\t" => Some(b'\t' as i64),
            "\\0" => Some(0),
            "\\\\" => Some(b'\\' as i64),
            _ if inner.len() == 1 => Some(inner.as_bytes()[0] as i64),
            _ => None,
        };
    }
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_statement_on_one_line() {
        let line = parse_line(3, "a: b:  addu $t0, $t1, $t2 # sum").unwrap();
        assert_eq!(line.labels, vec!["a", "b"]);
        match line.stmt.unwrap() {
            Stmt::Op { mnemonic, operands } => {
                assert_eq!(mnemonic, "addu");
                assert_eq!(operands.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comment_only_line_is_empty() {
        let line = parse_line(1, "   # nothing here").unwrap();
        assert!(line.labels.is_empty());
        assert!(line.stmt.is_none());
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let line = parse_line(1, r#".asciiz "a#b" # real comment"#).unwrap();
        assert_eq!(line.stmt.unwrap(), Stmt::Bytes(b"a#b\0".to_vec()));
    }

    #[test]
    fn memory_operands() {
        let op = parse_operand(1, "-8($sp)").unwrap();
        assert_eq!(
            op,
            Operand::Mem {
                off: -8,
                base: Reg::SP
            }
        );
        let op = parse_operand(1, "($t0)").unwrap();
        assert_eq!(
            op,
            Operand::Mem {
                off: 0,
                base: Reg::T0
            }
        );
    }

    #[test]
    fn integer_literals() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("-17"), Some(-17));
        assert_eq!(parse_int("0xFF"), Some(255));
        assert_eq!(parse_int("-0x10"), Some(-16));
        assert_eq!(parse_int("'a'"), Some(97));
        assert_eq!(parse_int("'\\n'"), Some(10));
        assert_eq!(parse_int("nope"), None);
    }

    #[test]
    fn directive_parsing() {
        assert_eq!(parse_stmt(1, ".text").unwrap(), Stmt::SegText);
        assert_eq!(
            parse_stmt(1, ".word 1, 2, 3").unwrap(),
            Stmt::Word(vec![1, 2, 3])
        );
        assert_eq!(parse_stmt(1, ".space 64").unwrap(), Stmt::Space(64));
        assert_eq!(parse_stmt(1, ".align 2").unwrap(), Stmt::Align(2));
        assert!(parse_stmt(1, ".bogus 1").is_err());
    }

    #[test]
    fn bad_operands_rejected() {
        assert!(parse_operand(1, "$nope").is_err());
        assert!(parse_operand(1, "(t0").is_err());
        assert!(parse_operand(1, "1+2").is_err());
    }
}
