//! Assembler error type.

use std::fmt;

/// Error produced while assembling SP32 source.
///
/// Carries the 1-based source line number where the problem was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    /// Creates an error at the given 1-based line number.
    pub fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line the error refers to.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The human-readable description, without location.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let err = AsmError::new(7, "bad things");
        assert_eq!(err.to_string(), "line 7: bad things");
        assert_eq!(err.line(), 7);
        assert_eq!(err.message(), "bad things");
    }
}
