//! MiniC abstract syntax tree.

/// A complete translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Global scalar and array declarations.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

/// One global: `int g;` or `int a[N];`.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// `Some(n)` for an array of `n` words, `None` for a scalar.
    pub array: Option<usize>,
    /// Declaration line (diagnostics).
    pub line: usize,
}

/// One function definition. All parameters and the return value are `int`.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameter names (max 4, passed in `$a0..$a3`).
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Definition line (diagnostics).
    pub line: usize,
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable (local or global).
    Var(String),
    /// A global array element.
    Index(String, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `int x;` / `int x = e;`
    Decl {
        /// Local name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Line.
        line: usize,
    },
    /// `lv = e;`
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
        /// Line.
        line: usize,
    },
    /// `if (c) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (c) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { .. }` — init/step are statements.
    For {
        /// Initializer (run once).
        init: Option<Box<Stmt>>,
        /// Condition (default: true).
        cond: Option<Expr>,
        /// Step (run each iteration).
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return;` / `return e;`
    Return(Option<Expr>),
    /// `break;` — leave the innermost loop.
    Break {
        /// Line, for "outside a loop" diagnostics.
        line: usize,
    },
    /// `continue;` — next iteration of the innermost loop.
    Continue {
        /// Line, for "outside a loop" diagnostics.
        line: usize,
    },
    /// An expression evaluated for effect (a call).
    Expr(Expr),
    /// `print(e);` — decimal integer to the console.
    Print(Expr),
    /// `printc(e);` — one character.
    PrintChar(Expr),
    /// `printh(e);` — zero-padded hex.
    PrintHex(Expr),
    /// `puts("...");` — a literal string.
    Puts(String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable read.
    Var(String),
    /// Global array element read.
    Index(String, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant-folds an all-literal expression with the runtime's exact
    /// 32-bit wrapping semantics (used by the code generator for folding
    /// and by the parser for array sizes).
    pub fn const_eval(&self) -> Option<i64> {
        self.const_eval_i32().map(i64::from)
    }

    fn const_eval_i32(&self) -> Option<i32> {
        match self {
            Expr::Int(v) => Some(*v as i32),
            Expr::Unary(op, e) => {
                let v = e.const_eval_i32()?;
                Some(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i32::from(v == 0),
                    UnOp::BitNot => !v,
                })
            }
            Expr::Binary(op, l, r) => {
                let (a, b) = (l.const_eval_i32()?, r.const_eval_i32()?);
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => ((a as u32) << ((b as u32) & 31)) as i32,
                    BinOp::Shr => a >> ((b as u32) & 31),
                    BinOp::Lt => i32::from(a < b),
                    BinOp::Gt => i32::from(a > b),
                    BinOp::Le => i32::from(a <= b),
                    BinOp::Ge => i32::from(a >= b),
                    BinOp::Eq => i32::from(a == b),
                    BinOp::Ne => i32::from(a != b),
                    BinOp::LogAnd => i32::from(a != 0 && b != 0),
                    BinOp::LogOr => i32::from(a != 0 || b != 0),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_eval_folds_literals() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Int(2)),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Int(3)),
                Box::new(Expr::Int(4)),
            )),
        );
        assert_eq!(e.const_eval(), Some(14));
        assert_eq!(
            Expr::Unary(UnOp::Neg, Box::new(Expr::Int(5))).const_eval(),
            Some(-5)
        );
        assert_eq!(Expr::Var("x".into()).const_eval(), None);
    }
}
