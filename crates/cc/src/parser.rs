//! MiniC recursive-descent parser with precedence climbing.

use std::fmt;

use crate::ast::{BinOp, Expr, Function, Global, LValue, Program, Stmt, UnOp};
use crate::lexer::{lex, Spanned, Tok};

/// Parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 = end of input).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a MiniC translation unit.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |s| s.line)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn next(&mut self) -> Option<Tok> {
        let tok = self.tokens.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        tok
    }

    fn eat(&mut self, expected: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(tok) if tok == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(tok) => {
                let found = tok.clone();
                self.err(format!("expected `{expected}`, found `{found}`"))
            }
            None => self.err(format!("expected `{expected}`, found end of input")),
        }
    }

    fn try_eat(&mut self, expected: &Tok) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            Some(tok) => {
                let found = tok.clone();
                self.err(format!("expected identifier, found `{found}`"))
            }
            None => self.err("expected identifier, found end of input"),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program {
            globals: Vec::new(),
            functions: Vec::new(),
        };
        while self.peek().is_some() {
            let line = self.line();
            self.eat(&Tok::KwInt)?;
            let name = self.ident()?;
            match self.peek() {
                Some(Tok::LParen) => {
                    program.functions.push(self.function(name, line)?);
                }
                Some(Tok::LBracket) => {
                    self.pos += 1;
                    let size_expr = self.expr()?;
                    let size = size_expr
                        .const_eval()
                        .filter(|&n| n > 0 && n <= 1 << 20)
                        .ok_or(ParseError {
                            line,
                            message: "array size must be a positive constant".into(),
                        })?;
                    self.eat(&Tok::RBracket)?;
                    self.eat(&Tok::Semi)?;
                    program.globals.push(Global {
                        name,
                        array: Some(size as usize),
                        line,
                    });
                }
                _ => {
                    self.eat(&Tok::Semi)?;
                    program.globals.push(Global {
                        name,
                        array: None,
                        line,
                    });
                }
            }
        }
        Ok(program)
    }

    fn function(&mut self, name: String, line: usize) -> Result<Function, ParseError> {
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.try_eat(&Tok::RParen) {
            loop {
                self.eat(&Tok::KwInt)?;
                params.push(self.ident()?);
                if !self.try_eat(&Tok::Comma) {
                    break;
                }
            }
            self.eat(&Tok::RParen)?;
        }
        if params.len() > 4 {
            return Err(ParseError {
                line,
                message: format!("function `{name}` has {} parameters (max 4)", params.len()),
            });
        }
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat(&Tok::LBrace)?;
        let mut body = Vec::new();
        while !self.try_eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::KwInt) => {
                self.pos += 1;
                let name = self.ident()?;
                if self.peek() == Some(&Tok::LBracket) {
                    return self.err("local arrays are not supported; declare them globally");
                }
                let init = if self.try_eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Decl { name, init, line })
            }
            Some(Tok::KwIf) => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.try_eat(&Tok::KwElse) {
                    if self.peek() == Some(&Tok::KwIf) {
                        vec![self.stmt()?] // else if
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Some(Tok::KwWhile) => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Tok::KwFor) => {
                self.pos += 1;
                self.eat(&Tok::LParen)?;
                let init = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.eat(&Tok::Semi)?;
                let cond = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                let step = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Some(Tok::KwBreak) => {
                self.pos += 1;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Break { line })
            }
            Some(Tok::KwContinue) => {
                self.pos += 1;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Continue { line })
            }
            Some(Tok::KwReturn) => {
                self.pos += 1;
                let value = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Return(value))
            }
            _ => {
                let stmt = self.simple_stmt()?;
                self.eat(&Tok::Semi)?;
                Ok(stmt)
            }
        }
    }

    /// A statement without its trailing `;`: assignment, declaration (in
    /// `for` inits), builtin, or expression.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        if self.peek() == Some(&Tok::KwInt) {
            self.pos += 1;
            let name = self.ident()?;
            self.eat(&Tok::Assign)?;
            let init = Some(self.expr()?);
            return Ok(Stmt::Decl { name, init, line });
        }
        // Builtins: print / printc / printh / puts.
        if let Some(Tok::Ident(name)) = self.peek() {
            let builtin = matches!(name.as_str(), "print" | "printc" | "printh" | "puts");
            if builtin {
                let name = name.clone();
                if self.tokens.get(self.pos + 1).map(|s| &s.tok) == Some(&Tok::LParen) {
                    self.pos += 2;
                    let stmt = if name == "puts" {
                        match self.next() {
                            Some(Tok::Str(text)) => Stmt::Puts(text),
                            _ => return self.err("puts expects a string literal"),
                        }
                    } else {
                        let arg = self.expr()?;
                        match name.as_str() {
                            "print" => Stmt::Print(arg),
                            "printc" => Stmt::PrintChar(arg),
                            _ => Stmt::PrintHex(arg),
                        }
                    };
                    self.eat(&Tok::RParen)?;
                    return Ok(stmt);
                }
            }
        }
        // Assignment or expression statement: parse an expression and look
        // for `=` / `op=` after an lvalue-shaped one.
        let expr = self.expr()?;
        let compound = match self.peek() {
            Some(Tok::OpAssign(op)) => Some(match *op {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                "%" => BinOp::Rem,
                "&" => BinOp::And,
                "|" => BinOp::Or,
                _ => BinOp::Xor,
            }),
            _ => None,
        };
        if compound.is_some() || self.peek() == Some(&Tok::Assign) {
            self.pos += 1;
            let target = match expr {
                Expr::Var(name) => LValue::Var(name),
                Expr::Index(name, index) => LValue::Index(name, index),
                _ => return self.err("assignment target must be a variable or array element"),
            };
            let rhs = self.expr()?;
            // `x op= e` desugars to `x = x op e`. For array targets the
            // index expression is evaluated twice; MiniC index expressions
            // are side-effect-free in practice, and the desugaring is
            // documented.
            let value = match compound {
                None => rhs,
                Some(op) => {
                    let current = match &target {
                        LValue::Var(name) => Expr::Var(name.clone()),
                        LValue::Index(name, index) => Expr::Index(name.clone(), index.clone()),
                    };
                    Expr::Binary(op, Box::new(current), Box::new(rhs))
                }
            };
            return Ok(Stmt::Assign {
                target,
                value,
                line,
            });
        }
        Ok(Stmt::Expr(expr))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.peek().and_then(op_of) {
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Tok::Minus) => Some(UnOp::Neg),
            Some(Tok::Bang) => Some(UnOp::Not),
            Some(Tok::Tilde) => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(inner)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Int(value)) => Ok(Expr::Int(value)),
            Some(Tok::LParen) => {
                let inner = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::LParen) => {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.try_eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.try_eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.eat(&Tok::RParen)?;
                    }
                    Ok(Expr::Call(name, args))
                }
                Some(Tok::LBracket) => {
                    self.pos += 1;
                    let index = self.expr()?;
                    self.eat(&Tok::RBracket)?;
                    Ok(Expr::Index(name, Box::new(index)))
                }
                _ => Ok(Expr::Var(name)),
            },
            Some(other) => self.err(format!("expected expression, found `{other}`")),
            None => self.err("expected expression, found end of input"),
        }
    }
}

/// Operator precedence table (higher binds tighter).
fn op_of(tok: &Tok) -> Option<(BinOp, u8)> {
    Some(match tok {
        Tok::OrOr => (BinOp::LogOr, 1),
        Tok::AndAnd => (BinOp::LogAnd, 2),
        Tok::Pipe => (BinOp::Or, 3),
        Tok::Caret => (BinOp::Xor, 4),
        Tok::Amp => (BinOp::And, 5),
        Tok::EqEq => (BinOp::Eq, 6),
        Tok::NotEq => (BinOp::Ne, 6),
        Tok::Lt => (BinOp::Lt, 7),
        Tok::Gt => (BinOp::Gt, 7),
        Tok::Le => (BinOp::Le, 7),
        Tok::Ge => (BinOp::Ge, 7),
        Tok::Shl => (BinOp::Shl, 8),
        Tok::Shr => (BinOp::Shr, 8),
        Tok::Plus => (BinOp::Add, 9),
        Tok::Minus => (BinOp::Sub, 9),
        Tok::Star => (BinOp::Mul, 10),
        Tok::Slash => (BinOp::Div, 10),
        Tok::Percent => (BinOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_and_functions_parse() {
        let p = parse("int g; int a[8]; int main() { return 0; }").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].array, Some(8));
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse("int main() { return 1 + 2 * 3 < 4 & 5; }").unwrap();
        let Stmt::Return(Some(e)) = &p.functions[0].body[0] else {
            panic!("expected return");
        };
        // ((1 + (2*3)) < 4) & 5
        assert_eq!(e.const_eval(), Some(((1 + 2 * 3 < 4) as i64) & 5));
        let Expr::Binary(BinOp::And, _, _) = e else {
            panic!("& must be outermost: {e:?}");
        };
    }

    #[test]
    fn if_else_chain() {
        let p = parse(
            "int main() { if (1) { return 1; } else if (2) { return 2; } else { return 3; } }",
        )
        .unwrap();
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn for_loop_parses() {
        let p = parse(
            "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } return s; }",
        )
        .unwrap();
        assert!(matches!(p.functions[0].body[1], Stmt::For { .. }));
    }

    #[test]
    fn builtins_parse() {
        let p =
            parse(r#"int main() { print(1); printc('x'); printh(255); puts("hi"); return 0; }"#)
                .unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::Print(_)));
        assert!(matches!(p.functions[0].body[3], Stmt::Puts(_)));
    }

    #[test]
    fn assignment_targets() {
        let p = parse("int a[4]; int main() { int x = 1; x = 2; a[x] = 3; return a[0]; }").unwrap();
        assert!(matches!(
            p.functions[0].body[2],
            Stmt::Assign {
                target: LValue::Index(..),
                ..
            }
        ));
    }

    #[test]
    fn errors_are_located() {
        let e = parse("int main() {\n  return +;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("int main() { int a[3]; }").is_err());
        assert!(parse("int f(int a, int b, int c, int d, int e) { return 0; }").is_err());
        assert!(parse("int main() { 1 = 2; }").is_err());
        assert!(parse("int x[0];").is_err());
    }
}
