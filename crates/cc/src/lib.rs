//! MiniC — a small C-like language compiling to SP32 assembly.
//!
//! MiniC completes the codesign toolchain: source → assembly → image →
//! protected image. The language is a C subset chosen to cover the
//! benchmark-kernel idioms:
//!
//! * `int` scalars (32-bit, wrapping) and global `int` arrays;
//! * functions with up to four `int` parameters and an `int` result;
//! * `if`/`else`, `while`, `for`, `return`; C operator precedence with
//!   short-circuit `&&`/`||`;
//! * console builtins `print(e)`, `printc(e)`, `printh(e)`, `puts("…")`.
//!
//! Deliberate restrictions (documented, not silently wrong): no pointers
//! (array names decay to base addresses but arithmetic through them is up
//! to the programmer) and no local arrays. Semantics notes: all arithmetic
//! is 32-bit two's-complement wrapping; division/remainder by zero yield 0
//! (matching the SP32 CPU); `>>` is arithmetic; blocks introduce lexical
//! scopes with shadowing; the builtin names `print`, `printc`, `printh`
//! and `puts` shadow user functions when called.
//!
//! # Example
//!
//! ```
//! use flexprot_sim::{Machine, Outcome, SimConfig};
//!
//! let image = flexprot_cc::compile_to_image(r#"
//!     int square(int x) { return x * x; }
//!     int main() { print(square(7)); return 0; }
//! "#)?;
//! let result = Machine::new(&image, SimConfig::default()).run();
//! assert_eq!(result.outcome, Outcome::Exit(0));
//! assert_eq!(result.output, "49");
//! # Ok::<(), flexprot_cc::CcError>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod kernels;
pub mod lexer;
pub mod parser;

use std::fmt;

use flexprot_isa::Image;

/// Any MiniC compilation failure, with its source line where known.
#[derive(Debug, Clone, PartialEq)]
pub enum CcError {
    /// Lexing failed.
    Lex(lexer::LexError),
    /// Parsing failed.
    Parse(parser::ParseError),
    /// Semantic analysis / code generation failed.
    Codegen(codegen::CodegenError),
    /// The generated assembly failed to assemble (a compiler bug).
    Assemble(String),
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Lex(e) => write!(f, "lex error: {e}"),
            CcError::Parse(e) => write!(f, "parse error: {e}"),
            CcError::Codegen(e) => write!(f, "error: {e}"),
            CcError::Assemble(e) => write!(f, "internal error (bad codegen): {e}"),
        }
    }
}

impl std::error::Error for CcError {}

/// Compiles MiniC source to SP32 assembly text.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile(source: &str) -> Result<String, CcError> {
    let program = parser::parse(source).map_err(CcError::Parse)?;
    codegen::generate(&program).map_err(CcError::Codegen)
}

/// Compiles MiniC source all the way to a loadable [`Image`].
///
/// # Errors
///
/// Propagates compilation errors; an assembly failure of generated code is
/// reported as [`CcError::Assemble`] (a compiler bug, please report).
pub fn compile_to_image(source: &str) -> Result<Image, CcError> {
    let asm = compile(source)?;
    flexprot_asm::assemble(&asm).map_err(|e| CcError::Assemble(format!("{e}\n{asm}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_sim::{Machine, Outcome, SimConfig};

    fn run(source: &str) -> String {
        let image = compile_to_image(source).expect("compile");
        let result = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(result.outcome, Outcome::Exit(0), "{:?}", result.outcome);
        result.output
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(
            run("int main() { print(1 + 2 * 3 - 4 / 2); return 0; }"),
            "5"
        );
        assert_eq!(run("int main() { print((1 + 2) * 3); return 0; }"), "9");
        assert_eq!(run("int main() { print(7 % 3); return 0; }"), "1");
        assert_eq!(run("int main() { print(-5 + 2); return 0; }"), "-3");
        assert_eq!(run("int main() { print(1 << 4 | 3); return 0; }"), "19");
        assert_eq!(run("int main() { print(-8 >> 1); return 0; }"), "-4");
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            run("int main() { print(3 < 4); print(4 < 3); return 0; }"),
            "10"
        );
        assert_eq!(
            run("int main() { print(3 <= 3); print(4 <= 3); return 0; }"),
            "10"
        );
        assert_eq!(
            run("int main() { print(5 == 5); print(5 != 5); return 0; }"),
            "10"
        );
        assert_eq!(run("int main() { print(!0); print(!7); return 0; }"), "10");
        assert_eq!(
            run("int main() { print(1 && 2); print(0 && 2); return 0; }"),
            "10"
        );
        assert_eq!(
            run("int main() { print(0 || 3); print(0 || 0); return 0; }"),
            "10"
        );
    }

    #[test]
    fn short_circuit_has_no_side_effects() {
        // g is incremented only when touch() runs; && must skip it.
        let out = run(r#"
            int g;
            int touch() { g = g + 1; return 1; }
            int main() {
                g = 0;
                int a = 0 && touch();
                int b = 1 || touch();
                print(g); print(a); print(b);
                return 0;
            }
        "#);
        assert_eq!(out, "001");
    }

    #[test]
    fn locals_params_and_calls() {
        let out = run(r#"
            int add3(int a, int b, int c) { return a + b + c; }
            int main() {
                int x = add3(1, 2, 3);
                int y = add3(x, x, x);
                print(y);
                return 0;
            }
        "#);
        assert_eq!(out, "18");
    }

    #[test]
    fn nested_calls_preserve_arguments() {
        let out = run(r#"
            int sub(int a, int b) { return a - b; }
            int main() { print(sub(sub(10, 3), sub(4, 2))); return 0; }
        "#);
        assert_eq!(out, "5");
    }

    #[test]
    fn recursion_fibonacci() {
        let out = run(r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { print(fib(15)); return 0; }
        "#);
        assert_eq!(out, "610");
    }

    #[test]
    fn globals_and_arrays() {
        let out = run(r#"
            int total;
            int data[10];
            int main() {
                for (int i = 0; i < 10; i = i + 1) { data[i] = i * i; }
                total = 0;
                for (int i = 0; i < 10; i = i + 1) { total = total + data[i]; }
                print(total);
                return 0;
            }
        "#);
        assert_eq!(out, "285");
    }

    #[test]
    fn while_and_for_loops() {
        assert_eq!(
            run("int main() { int s = 0; int i = 1; while (i <= 100) { s = s + i; i = i + 1; } print(s); return 0; }"),
            "5050"
        );
        assert_eq!(
            run("int main() { int s = 0; for (int i = 1; i <= 100; i = i + 1) { s = s + i; } print(s); return 0; }"),
            "5050"
        );
    }

    #[test]
    fn if_else_chains() {
        let src = |n: i32| {
            format!(
                "int classify(int n) {{ if (n < 0) {{ return -1; }} else if (n == 0) {{ return 0; }} else {{ return 1; }} }}
                 int main() {{ print(classify({n})); return 0; }}"
            )
        };
        assert_eq!(run(&src(-5)), "-1");
        assert_eq!(run(&src(0)), "0");
        assert_eq!(run(&src(9)), "1");
    }

    #[test]
    fn print_builtins() {
        assert_eq!(
            run(r#"int main() { puts("x="); print(65); printc(10); printh(255); return 0; }"#),
            "x=65\n000000ff"
        );
    }

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(
            run("int main() { print(2147483647 + 1 == -2147483647 - 1); return 0; }"),
            "1"
        );
    }

    #[test]
    fn deep_expression_stack() {
        // Deep nesting exercises the temporary stack discipline.
        let expr = "1".to_owned() + &" + 1".repeat(100);
        assert_eq!(
            run(&format!("int main() {{ print({expr}); return 0; }}")),
            "101"
        );
        let nested = format!("{}1{}", "(".repeat(60), ")".repeat(60));
        assert_eq!(
            run(&format!("int main() {{ print({nested}); return 0; }}")),
            "1"
        );
    }

    #[test]
    fn main_exit_code_is_zero_regardless_of_return() {
        let image = compile_to_image("int main() { return 42; }").unwrap();
        let result = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(result.outcome, Outcome::Exit(0));
    }

    #[test]
    fn semantic_errors_are_reported() {
        assert!(matches!(
            compile("int main() { return x; }"),
            Err(CcError::Codegen(_))
        ));
        assert!(matches!(
            compile("int f() { return 0; } int main() { return f(1); }"),
            Err(CcError::Codegen(_))
        ));
        assert!(matches!(
            compile("int g; int g; int main() { return 0; }"),
            Err(CcError::Codegen(_))
        ));
        assert!(matches!(
            compile("int f() { return 0; }"),
            Err(CcError::Codegen(_))
        ));
        assert!(matches!(
            compile("int main() { int a = 1; int a = 2; return a; }"),
            Err(CcError::Codegen(_))
        ));
        assert!(matches!(
            compile("int main() { a[0] = 1; return 0; }"),
            Err(CcError::Codegen(_))
        ));
    }

    #[test]
    fn compiled_code_survives_protection() {
        use flexprot_core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
        let image = compile_to_image(
            r#"
            int acc;
            int mix(int x) { acc = acc * 31 + x; return acc; }
            int main() {
                acc = 7;
                for (int i = 0; i < 50; i = i + 1) { mix(i ^ 13); }
                printh(acc);
                return 0;
            }
        "#,
        )
        .unwrap();
        let baseline = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(baseline.outcome, Outcome::Exit(0));
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_encryption(EncryptConfig::whole_program(0xCC));
        let protected = protect(&image, &config, None).unwrap();
        let run = protected.run(SimConfig::default());
        assert_eq!(run.outcome, Outcome::Exit(0));
        assert_eq!(run.output, baseline.output);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use flexprot_sim::{Machine, Outcome, SimConfig};

    fn run(source: &str) -> String {
        let image = compile_to_image(source).expect("compile");
        let result = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(result.outcome, Outcome::Exit(0), "{:?}", result.outcome);
        result.output
    }

    #[test]
    fn break_leaves_innermost_loop() {
        let out = run(r#"
            int main() {
                int s = 0;
                for (int i = 0; i < 10; i += 1) {
                    if (i == 5) { break; }
                    s += i;
                }
                print(s);
                return 0;
            }
        "#);
        assert_eq!(out, "10"); // 0+1+2+3+4
    }

    #[test]
    fn continue_skips_to_step() {
        let out = run(r#"
            int main() {
                int s = 0;
                for (int i = 0; i < 10; i += 1) {
                    if (i % 2 == 0) { continue; }
                    s += i;
                }
                print(s);
                return 0;
            }
        "#);
        assert_eq!(out, "25"); // 1+3+5+7+9
    }

    #[test]
    fn continue_in_while_rechecks_condition() {
        let out = run(r#"
            int main() {
                int i = 0;
                int s = 0;
                while (i < 6) {
                    i += 1;
                    if (i == 3) { continue; }
                    s += i;
                }
                print(s);
                return 0;
            }
        "#);
        assert_eq!(out, "18"); // 1+2+4+5+6
    }

    #[test]
    fn nested_break_only_exits_inner() {
        let out = run(r#"
            int main() {
                int hits = 0;
                for (int i = 0; i < 3; i += 1) {
                    for (int j = 0; j < 10; j += 1) {
                        if (j == 2) { break; }
                        hits += 1;
                    }
                }
                print(hits);
                return 0;
            }
        "#);
        assert_eq!(out, "6"); // 2 per outer iteration
    }

    #[test]
    fn compound_assignment_operators() {
        let out = run(r#"
            int a[3];
            int main() {
                int x = 10;
                x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x |= 8; x ^= 1; x &= 14;
                a[1] = 3;
                a[1] += 4;
                print(x); printc(' '); print(a[1]);
                return 0;
            }
        "#);
        // 10+5=15, -3=12, *2=24, /4=6, %4=2, |8=10, ^1=11, &14=10
        assert_eq!(out, "10 7");
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        assert!(matches!(
            compile("int main() { break; return 0; }"),
            Err(CcError::Codegen(_))
        ));
        assert!(matches!(
            compile("int main() { continue; return 0; }"),
            Err(CcError::Codegen(_))
        ));
    }

    #[test]
    fn constant_folding_shrinks_code() {
        let folded = compile("int main() { print(2 * 3 + 4 * (5 - 1)); return 0; }").unwrap();
        let unfolded_ops = folded.matches("mul").count() + folded.matches("addu").count();
        // The whole constant expression must collapse to a single li.
        assert_eq!(unfolded_ops, 0, "{folded}");
        assert_eq!(
            run("int main() { print(2 * 3 + 4 * (5 - 1)); return 0; }"),
            "22"
        );
    }
}
