//! Reference MiniC benchmark kernels.
//!
//! Shared by the protection-matrix differential tests, the `fpsurface`
//! scanner and documentation examples, so every consumer lints and runs
//! the *same* golden programs.  Each kernel prints a small deterministic
//! result via the `print`/`printc` intrinsics and exits 0.

/// 8-queens solution counter (recursive backtracking): prints `92`.
pub const QUEENS: &str = r#"
int col[8];

int solve(int row) {
    if (row == 8) { return 1; }
    int count = 0;
    for (int c = 0; c < 8; c = c + 1) {
        int ok = 1;
        for (int r = 0; r < row; r = r + 1) {
            int d = col[r] - c;
            if (d < 0) { d = 0 - d; }
            if (col[r] == c || d == row - r) { ok = 0; }
        }
        if (ok) {
            col[row] = c;
            count = count + solve(row + 1);
        }
    }
    return count;
}

int main() { print(solve(0)); return 0; }
"#;

/// Sieve of Eratosthenes below 200: prints prime count and prime sum.
pub const SIEVE: &str = r#"
int flags[200];

int main() {
    int n = 200;
    int count = 0;
    int sum = 0;
    for (int i = 2; i < n; i = i + 1) { flags[i] = 1; }
    for (int i = 2; i < n; i = i + 1) {
        if (flags[i]) {
            count = count + 1;
            sum = sum + i;
            for (int j = i + i; j < n; j = j + i) { flags[j] = 0; }
        }
    }
    print(count);
    printc(32);
    print(sum);
    return 0;
}
"#;

/// Collatz record holder for 1..=120: prints the argument and its step
/// count.
pub const COLLATZ: &str = r#"
int steps(int n) {
    int s = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        s = s + 1;
    }
    return s;
}

int main() {
    int best = 0;
    int arg = 1;
    for (int i = 1; i <= 120; i = i + 1) {
        int s = steps(i);
        if (s > best) { best = s; arg = i; }
    }
    print(arg);
    printc(32);
    print(best);
    return 0;
}
"#;

/// Every named kernel, in a stable order.
pub fn all() -> [(&'static str, &'static str); 3] {
    [("queens", QUEENS), ("sieve", SIEVE), ("collatz", COLLATZ)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_compiles() {
        for (name, src) in all() {
            crate::compile_to_image(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
