//! MiniC lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // literals / names
    Int(i64),
    Str(String),
    Ident(String),
    // keywords
    KwInt,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    // operators
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    /// Compound assignment `op=`; carries the underlying operator token.
    OpAssign(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(name) => write!(f, "{name}"),
            Tok::KwInt => f.write_str("int"),
            Tok::KwIf => f.write_str("if"),
            Tok::KwElse => f.write_str("else"),
            Tok::KwWhile => f.write_str("while"),
            Tok::KwFor => f.write_str("for"),
            Tok::KwReturn => f.write_str("return"),
            Tok::KwBreak => f.write_str("break"),
            Tok::KwContinue => f.write_str("continue"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Assign => f.write_str("="),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::Amp => f.write_str("&"),
            Tok::Pipe => f.write_str("|"),
            Tok::Caret => f.write_str("^"),
            Tok::Tilde => f.write_str("~"),
            Tok::Bang => f.write_str("!"),
            Tok::Shl => f.write_str("<<"),
            Tok::Shr => f.write_str(">>"),
            Tok::Lt => f.write_str("<"),
            Tok::Gt => f.write_str(">"),
            Tok::Le => f.write_str("<="),
            Tok::Ge => f.write_str(">="),
            Tok::EqEq => f.write_str("=="),
            Tok::NotEq => f.write_str("!="),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::OpAssign(op) => write!(f, "{op}="),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Lexing error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes MiniC source.
///
/// Supports `//` line comments and `/* */` block comments, decimal / hex /
/// character literals, and string literals with C escapes.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let err = |line: usize, message: String| LexError { line, message };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(line, "unterminated block comment".into()));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let value = if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    let hex_start = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    i64::from_str_radix(&source[hex_start..i], 16).map_err(|_| {
                        err(line, format!("bad hex literal `{}`", &source[start..i]))
                    })?
                } else {
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    source[start..i]
                        .parse()
                        .map_err(|_| err(line, format!("bad literal `{}`", &source[start..i])))?
                };
                tokens.push(Spanned {
                    tok: Tok::Int(value),
                    line,
                });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "int" => Tok::KwInt,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    _ => Tok::Ident(word.to_owned()),
                };
                tokens.push(Spanned { tok, line });
            }
            '\'' => {
                i += 1;
                let (value, used) = match bytes.get(i) {
                    Some(b'\\') => {
                        let esc = *bytes
                            .get(i + 1)
                            .ok_or_else(|| err(line, "unterminated char literal".into()))?;
                        let v = match esc {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            other => {
                                return Err(err(
                                    line,
                                    format!("unknown escape `\\{}`", other as char),
                                ))
                            }
                        };
                        (v, 2)
                    }
                    Some(&b) => (b, 1),
                    None => return Err(err(line, "unterminated char literal".into())),
                };
                i += used;
                if bytes.get(i) != Some(&b'\'') {
                    return Err(err(line, "unterminated char literal".into()));
                }
                i += 1;
                tokens.push(Spanned {
                    tok: Tok::Int(i64::from(value)),
                    line,
                });
            }
            '"' => {
                i += 1;
                let mut text = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(err(line, "unterminated string literal".into()))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = *bytes
                                .get(i + 1)
                                .ok_or_else(|| err(line, "unterminated string".into()))?;
                            text.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'0' => '\0',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(err(
                                        line,
                                        format!("unknown escape `\\{}`", other as char),
                                    ))
                                }
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            text.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Spanned {
                    tok: Tok::Str(text),
                    line,
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &source[i..i + 2]
                } else {
                    ""
                };
                let (tok, used) = match two {
                    "+=" => (Tok::OpAssign("+"), 2),
                    "-=" => (Tok::OpAssign("-"), 2),
                    "*=" => (Tok::OpAssign("*"), 2),
                    "/=" => (Tok::OpAssign("/"), 2),
                    "%=" => (Tok::OpAssign("%"), 2),
                    "&=" => (Tok::OpAssign("&"), 2),
                    "|=" => (Tok::OpAssign("|"), 2),
                    "^=" => (Tok::OpAssign("^"), 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => {
                        let tok = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ',' => Tok::Comma,
                            ';' => Tok::Semi,
                            '=' => Tok::Assign,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '&' => Tok::Amp,
                            '|' => Tok::Pipe,
                            '^' => Tok::Caret,
                            '~' => Tok::Tilde,
                            '!' => Tok::Bang,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            other => {
                                return Err(err(line, format!("unexpected character `{other}`")))
                            }
                        };
                        (tok, 1)
                    }
                };
                tokens.push(Spanned { tok, line });
                i += used;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("int foo if ifx"),
            vec![
                Tok::KwInt,
                Tok::Ident("foo".into()),
                Tok::KwIf,
                Tok::Ident("ifx".into())
            ]
        );
    }

    #[test]
    fn numbers_and_chars() {
        assert_eq!(
            toks("42 0x2A 'a' '\\n'"),
            vec![Tok::Int(42), Tok::Int(42), Tok::Int(97), Tok::Int(10)]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            toks("a<=b<<c==d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::Ident("c".into()),
                Tok::EqEq,
                Tok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // two\n3 /* 4\n5 */ 6"),
            vec![Tok::Int(1), Tok::Int(3), Tok::Int(6)]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks(r#""a\nb""#), vec![Tok::Str("a\nb".into())]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let spanned = lex("1\n\n2").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 3);
    }

    #[test]
    fn errors_report_line() {
        let e = lex("ok\n  @").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'x").is_err());
    }
}
