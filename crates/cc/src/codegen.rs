//! MiniC → SP32 assembly code generation.
//!
//! The generator is deliberately simple and stack-disciplined (no register
//! allocation): expression temporaries live on the machine stack, so
//! arbitrarily deep expressions and nested calls are correct by
//! construction. Registers used:
//!
//! * `$t0` — current expression value, `$t1` — second operand;
//! * `$t8` — address scratch for globals and array indexing;
//! * `$fp` — frame base (locals at `4*i($fp)`), `$sp` — temporary stack;
//! * `$a0..$a3` — arguments, `$v0` — return value.
//!
//! Frame layout (built by the prologue):
//!
//! ```text
//! fp + 4*nlocals + 4 : saved $ra
//! fp + 4*nlocals     : saved $fp
//! fp + 4*i           : local slot i (parameters first)
//! fp = sp
//! ```

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::ast::{BinOp, Expr, Function, LValue, Program, Stmt, UnOp};

/// Code-generation error (semantic analysis failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// 1-based source line, when known.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CodegenError {}

/// Generates SP32 assembly for a parsed program.
///
/// # Errors
///
/// Reports duplicate/undefined names, arity mismatches and missing `main`.
pub fn generate(program: &Program) -> Result<String, CodegenError> {
    let mut gen = Generator::new(program)?;
    gen.program(program)?;
    Ok(gen.finish())
}

struct FuncSig {
    params: usize,
}

struct Generator {
    text: String,
    data: String,
    globals: BTreeMap<String, Option<usize>>, // name -> array size
    functions: BTreeMap<String, FuncSig>,
    strings: Vec<String>,
    label_counter: usize,
}

/// Per-function emission state: lexical scopes mapping names to frame
/// slots, the bump allocator for slots, and the epilogue label.
struct Frame {
    /// Innermost scope last; each entry is (name, slot).
    scopes: Vec<Vec<(String, usize)>>,
    next_slot: usize,
    epilogue: String,
    /// Innermost loop last: (continue target, break target).
    loops: Vec<(String, String)>,
}

impl Frame {
    fn lookup(&self, name: &str) -> Option<usize> {
        self.scopes.iter().rev().find_map(|scope| {
            scope
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, slot)| *slot)
        })
    }

    /// Declares `name` in the innermost scope; errors on a duplicate in the
    /// *same* scope (shadowing outer scopes is fine).
    fn declare(&mut self, name: &str, line: usize) -> Result<usize, CodegenError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.iter().any(|(n, _)| n == name) {
            return Err(CodegenError {
                line,
                message: format!("duplicate declaration of `{name}` in the same scope"),
            });
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        scope.push((name.to_owned(), slot));
        Ok(slot)
    }

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }
}

impl Generator {
    fn new(program: &Program) -> Result<Generator, CodegenError> {
        let mut globals = BTreeMap::new();
        for global in &program.globals {
            if globals.insert(global.name.clone(), global.array).is_some() {
                return Err(CodegenError {
                    line: global.line,
                    message: format!("duplicate global `{}`", global.name),
                });
            }
        }
        let mut functions = BTreeMap::new();
        for function in &program.functions {
            if globals.contains_key(&function.name) {
                return Err(CodegenError {
                    line: function.line,
                    message: format!("`{}` defined as both global and function", function.name),
                });
            }
            let sig = FuncSig {
                params: function.params.len(),
            };
            if functions.insert(function.name.clone(), sig).is_some() {
                return Err(CodegenError {
                    line: function.line,
                    message: format!("duplicate function `{}`", function.name),
                });
            }
        }
        if !functions.contains_key("main") {
            return Err(CodegenError {
                line: 0,
                message: "no `main` function".into(),
            });
        }
        Ok(Generator {
            text: String::new(),
            data: String::new(),
            globals,
            functions,
            strings: Vec::new(),
            label_counter: 0,
        })
    }

    fn emit(&mut self, line: &str) {
        writeln!(self.text, "        {line}").expect("string write");
    }

    fn label(&mut self, name: &str) {
        writeln!(self.text, "{name}:").expect("string write");
    }

    fn fresh(&mut self, hint: &str) -> String {
        self.label_counter += 1;
        format!("L{}_{}", hint, self.label_counter)
    }

    fn finish(self) -> String {
        let mut out = String::new();
        out.push_str("# generated by flexprot-cc (MiniC)\n");
        if !self.data.is_empty() || !self.strings.is_empty() {
            out.push_str("        .data\n");
            out.push_str(&self.data);
            for (i, s) in self.strings.iter().enumerate() {
                let escaped = s
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
                    .replace('\t', "\\t")
                    .replace('\0', "\\0");
                out.push_str(&format!("Lstr_{i}: .asciiz \"{escaped}\"\n"));
            }
        }
        out.push_str("        .text\n");
        out.push_str(&self.text);
        out
    }

    fn program(&mut self, program: &Program) -> Result<(), CodegenError> {
        for global in &program.globals {
            let words = global.array.unwrap_or(1);
            writeln!(self.data, "G_{}: .space {}", global.name, words * 4).expect("write");
        }
        // Entry shim: call main, then exit cleanly.
        self.label("main");
        self.emit("jal F_main");
        self.emit("li $v0, 10");
        self.emit("syscall");
        for function in &program.functions {
            self.function(function)?;
        }
        Ok(())
    }

    fn function(&mut self, function: &Function) -> Result<(), CodegenError> {
        // Frame size upper bound: one slot per parameter plus one per
        // declaration anywhere in the body (slots are not reused across
        // sibling scopes — simple and always sufficient).
        let nslots = function.params.len() + count_decls(&function.body);
        let mut frame = Frame {
            scopes: vec![Vec::new()],
            next_slot: 0,
            epilogue: format!("Lret_{}", function.name),
            loops: Vec::new(),
        };
        for p in &function.params {
            frame.declare(p, function.line).map_err(|_| CodegenError {
                line: function.line,
                message: format!("duplicate parameter `{p}`"),
            })?;
        }

        let frame_bytes = (nslots as i64 + 2) * 4;
        self.label(&format!("F_{}", function.name));
        self.emit(&format!("addi $sp, $sp, -{frame_bytes}"));
        self.emit(&format!("sw $ra, {}($sp)", frame_bytes - 4));
        self.emit(&format!("sw $fp, {}($sp)", frame_bytes - 8));
        self.emit("move $fp, $sp");
        for i in 0..function.params.len() {
            self.emit(&format!("sw $a{i}, {}($fp)", i * 4));
        }
        self.stmts(&function.body, &mut frame)?;
        debug_assert!(frame.next_slot <= nslots);
        // Fall-through return: v0 = 0.
        self.emit("li $v0, 0");
        self.label(&frame.epilogue);
        self.emit(&format!("lw $ra, {}($fp)", frame_bytes - 4));
        self.emit(&format!("lw $fp, {}($fp)", frame_bytes - 8));
        self.emit(&format!("addi $sp, $sp, {frame_bytes}"));
        self.emit("jr $ra");
        Ok(())
    }

    /// Emits a statement list in its own lexical scope.
    fn block(&mut self, body: &[Stmt], frame: &mut Frame) -> Result<(), CodegenError> {
        frame.push_scope();
        let result = self.stmts(body, frame);
        frame.pop_scope();
        result
    }

    fn stmts(&mut self, body: &[Stmt], frame: &mut Frame) -> Result<(), CodegenError> {
        for stmt in body {
            self.stmt(stmt, frame)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<(), CodegenError> {
        match stmt {
            Stmt::Decl { name, init, line } => {
                // Evaluate the initializer BEFORE the name is in scope
                // (`int x = x;` must reference an outer `x`, not itself).
                if let Some(init) = init {
                    self.expr(init, frame)?;
                }
                let slot = frame.declare(name, *line)?;
                if init.is_some() {
                    self.emit(&format!("sw $t0, {}($fp)", slot * 4));
                }
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                self.expr(value, frame)?;
                match target {
                    LValue::Var(name) => {
                        if let Some(slot) = frame.lookup(name) {
                            self.emit(&format!("sw $t0, {}($fp)", slot * 4));
                        } else if let Some(None) = self.globals.get(name) {
                            self.emit(&format!("la $t8, G_{name}"));
                            self.emit("sw $t0, 0($t8)");
                        } else {
                            return Err(CodegenError {
                                line: *line,
                                message: format!("assignment to unknown variable `{name}`"),
                            });
                        }
                    }
                    LValue::Index(name, index) => {
                        if !matches!(self.globals.get(name.as_str()), Some(Some(_))) {
                            return Err(CodegenError {
                                line: *line,
                                message: format!("`{name}` is not a global array"),
                            });
                        }
                        // value on stack while the index is computed
                        self.push_t0();
                        self.expr(index, frame)?;
                        self.emit("sll $t0, $t0, 2");
                        self.emit(&format!("la $t8, G_{name}"));
                        self.emit("addu $t8, $t8, $t0");
                        self.pop_t0();
                        self.emit("sw $t0, 0($t8)");
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let l_else = self.fresh("else");
                let l_end = self.fresh("endif");
                self.expr(cond, frame)?;
                self.emit(&format!("beqz $t0, {l_else}"));
                self.block(then_body, frame)?;
                self.emit(&format!("b {l_end}"));
                self.label(&l_else);
                self.block(else_body, frame)?;
                self.label(&l_end);
            }
            Stmt::While { cond, body } => {
                let l_top = self.fresh("while");
                let l_end = self.fresh("wend");
                self.label(&l_top);
                self.expr(cond, frame)?;
                self.emit(&format!("beqz $t0, {l_end}"));
                frame.loops.push((l_top.clone(), l_end.clone()));
                let result = self.block(body, frame);
                frame.loops.pop();
                result?;
                self.emit(&format!("b {l_top}"));
                self.label(&l_end);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The whole `for` gets one scope so the init declaration
                // covers cond, step and body.
                frame.push_scope();
                let result = (|| {
                    if let Some(init) = init {
                        self.stmt(init, frame)?;
                    }
                    let l_top = self.fresh("for");
                    let l_step = self.fresh("fstep");
                    let l_end = self.fresh("fend");
                    self.label(&l_top);
                    if let Some(cond) = cond {
                        self.expr(cond, frame)?;
                        self.emit(&format!("beqz $t0, {l_end}"));
                    }
                    frame.loops.push((l_step.clone(), l_end.clone()));
                    let body_result = self.block(body, frame);
                    frame.loops.pop();
                    body_result?;
                    self.label(&l_step);
                    if let Some(step) = step {
                        self.stmt(step, frame)?;
                    }
                    self.emit(&format!("b {l_top}"));
                    self.label(&l_end);
                    Ok(())
                })();
                frame.pop_scope();
                result?;
            }
            Stmt::Return(value) => {
                match value {
                    Some(value) => {
                        self.expr(value, frame)?;
                        self.emit("move $v0, $t0");
                    }
                    None => self.emit("li $v0, 0"),
                }
                self.emit(&format!("b {}", frame.epilogue));
            }
            Stmt::Break { line } => {
                let Some((_, l_break)) = frame.loops.last().cloned() else {
                    return Err(CodegenError {
                        line: *line,
                        message: "`break` outside a loop".into(),
                    });
                };
                self.emit(&format!("b {l_break}"));
            }
            Stmt::Continue { line } => {
                let Some((l_continue, _)) = frame.loops.last().cloned() else {
                    return Err(CodegenError {
                        line: *line,
                        message: "`continue` outside a loop".into(),
                    });
                };
                self.emit(&format!("b {l_continue}"));
            }
            Stmt::Expr(expr) => {
                self.expr(expr, frame)?;
            }
            Stmt::Print(expr) => {
                self.expr(expr, frame)?;
                self.emit("move $a0, $t0");
                self.emit("li $v0, 1");
                self.emit("syscall");
            }
            Stmt::PrintChar(expr) => {
                self.expr(expr, frame)?;
                self.emit("move $a0, $t0");
                self.emit("li $v0, 11");
                self.emit("syscall");
            }
            Stmt::PrintHex(expr) => {
                self.expr(expr, frame)?;
                self.emit("move $a0, $t0");
                self.emit("li $v0, 34");
                self.emit("syscall");
            }
            Stmt::Puts(text) => {
                let id = self.strings.len();
                self.strings.push(text.clone());
                self.emit(&format!("la $a0, Lstr_{id}"));
                self.emit("li $v0, 4");
                self.emit("syscall");
            }
        }
        Ok(())
    }

    fn push_t0(&mut self) {
        self.emit("addi $sp, $sp, -4");
        self.emit("sw $t0, 0($sp)");
    }

    fn pop_t0(&mut self) {
        self.emit("lw $t0, 0($sp)");
        self.emit("addi $sp, $sp, 4");
    }

    /// Evaluates `expr` into `$t0`.
    fn expr(&mut self, expr: &Expr, frame: &Frame) -> Result<(), CodegenError> {
        // Constant folding: any all-literal subtree becomes one `li`.
        if !matches!(expr, Expr::Int(_)) {
            if let Some(value) = expr.const_eval() {
                self.emit(&format!("li $t0, {}", value as i32));
                return Ok(());
            }
        }
        match expr {
            Expr::Int(value) => {
                let v = *value as i32;
                self.emit(&format!("li $t0, {v}"));
            }
            Expr::Var(name) => {
                if let Some(slot) = frame.lookup(name) {
                    self.emit(&format!("lw $t0, {}($fp)", slot * 4));
                } else {
                    match self.globals.get(name.as_str()) {
                        Some(None) => {
                            self.emit(&format!("la $t8, G_{name}"));
                            self.emit("lw $t0, 0($t8)");
                        }
                        Some(Some(_)) => {
                            // Array name decays to its base address.
                            self.emit(&format!("la $t0, G_{name}"));
                        }
                        None => {
                            return Err(CodegenError {
                                line: 0,
                                message: format!("unknown variable `{name}`"),
                            })
                        }
                    }
                }
            }
            Expr::Index(name, index) => {
                if !matches!(self.globals.get(name.as_str()), Some(Some(_))) {
                    return Err(CodegenError {
                        line: 0,
                        message: format!("`{name}` is not a global array"),
                    });
                }
                self.expr(index, frame)?;
                self.emit("sll $t0, $t0, 2");
                self.emit(&format!("la $t8, G_{name}"));
                self.emit("addu $t8, $t8, $t0");
                self.emit("lw $t0, 0($t8)");
            }
            Expr::Call(name, args) => {
                let sig = self
                    .functions
                    .get(name.as_str())
                    .ok_or_else(|| CodegenError {
                        line: 0,
                        message: format!("call to unknown function `{name}`"),
                    })?;
                if sig.params != args.len() {
                    return Err(CodegenError {
                        line: 0,
                        message: format!(
                            "`{name}` takes {} argument(s), {} given",
                            sig.params,
                            args.len()
                        ),
                    });
                }
                for arg in args {
                    self.expr(arg, frame)?;
                    self.push_t0();
                }
                for i in (0..args.len()).rev() {
                    self.emit(&format!("lw $a{i}, 0($sp)"));
                    self.emit("addi $sp, $sp, 4");
                }
                self.emit(&format!("jal F_{name}"));
                self.emit("move $t0, $v0");
            }
            Expr::Unary(op, inner) => {
                self.expr(inner, frame)?;
                match op {
                    UnOp::Neg => self.emit("subu $t0, $zero, $t0"),
                    UnOp::BitNot => self.emit("nor $t0, $t0, $zero"),
                    UnOp::Not => self.emit("sltiu $t0, $t0, 1"),
                }
            }
            Expr::Binary(BinOp::LogAnd, lhs, rhs) => {
                let l_false = self.fresh("andf");
                let l_end = self.fresh("ande");
                self.expr(lhs, frame)?;
                self.emit(&format!("beqz $t0, {l_false}"));
                self.expr(rhs, frame)?;
                self.emit("sltu $t0, $zero, $t0");
                self.emit(&format!("b {l_end}"));
                self.label(&l_false);
                self.emit("li $t0, 0");
                self.label(&l_end);
            }
            Expr::Binary(BinOp::LogOr, lhs, rhs) => {
                let l_true = self.fresh("ort");
                let l_end = self.fresh("ore");
                self.expr(lhs, frame)?;
                self.emit(&format!("bnez $t0, {l_true}"));
                self.expr(rhs, frame)?;
                self.emit("sltu $t0, $zero, $t0");
                self.emit(&format!("b {l_end}"));
                self.label(&l_true);
                self.emit("li $t0, 1");
                self.label(&l_end);
            }
            Expr::Binary(op, lhs, rhs) => {
                self.expr(lhs, frame)?;
                self.push_t0();
                self.expr(rhs, frame)?;
                self.emit("move $t1, $t0");
                self.pop_t0();
                // t0 = lhs, t1 = rhs
                match op {
                    BinOp::Add => self.emit("addu $t0, $t0, $t1"),
                    BinOp::Sub => self.emit("subu $t0, $t0, $t1"),
                    BinOp::Mul => self.emit("mul $t0, $t0, $t1"),
                    BinOp::Div => self.emit("div $t0, $t0, $t1"),
                    BinOp::Rem => self.emit("rem $t0, $t0, $t1"),
                    BinOp::And => self.emit("and $t0, $t0, $t1"),
                    BinOp::Or => self.emit("or $t0, $t0, $t1"),
                    BinOp::Xor => self.emit("xor $t0, $t0, $t1"),
                    BinOp::Shl => self.emit("sllv $t0, $t0, $t1"),
                    BinOp::Shr => self.emit("srav $t0, $t0, $t1"),
                    BinOp::Lt => self.emit("slt $t0, $t0, $t1"),
                    BinOp::Gt => self.emit("slt $t0, $t1, $t0"),
                    BinOp::Le => {
                        self.emit("slt $t0, $t1, $t0");
                        self.emit("xori $t0, $t0, 1");
                    }
                    BinOp::Ge => {
                        self.emit("slt $t0, $t0, $t1");
                        self.emit("xori $t0, $t0, 1");
                    }
                    BinOp::Eq => {
                        self.emit("xor $t0, $t0, $t1");
                        self.emit("sltiu $t0, $t0, 1");
                    }
                    BinOp::Ne => {
                        self.emit("xor $t0, $t0, $t1");
                        self.emit("sltu $t0, $zero, $t0");
                    }
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
                }
            }
        }
        Ok(())
    }
}

fn count_decls(body: &[Stmt]) -> usize {
    body.iter()
        .map(|stmt| match stmt {
            Stmt::Decl { .. } => 1,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => count_decls(then_body) + count_decls(else_body),
            Stmt::While { body, .. } => count_decls(body),
            Stmt::For {
                init, body, step, ..
            } => {
                init.as_ref()
                    .map_or(0, |s| count_decls(std::slice::from_ref(s)))
                    + count_decls(body)
                    + step
                        .as_ref()
                        .map_or(0, |s| count_decls(std::slice::from_ref(s)))
            }
            _ => 0,
        })
        .sum()
}
