//! Execution profiles: the feedback half of the codesign loop.
//!
//! The "flexible" in flexible protection is profile-driven: the toolchain
//! first runs the unprotected program on representative inputs, then uses
//! per-block execution counts and per-line I-cache miss counts to decide
//! where protection is affordable. This module wraps the simulator's
//! profiling counters in a form the placement, estimation and optimization
//! passes consume.

use std::collections::HashMap;

use flexprot_isa::Image;
use flexprot_sim::{Machine, Outcome, RunResult, SimConfig};

use crate::cfg::{Block, Cfg};

/// A baseline execution profile of an unprotected program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Committed-instruction count per pc.
    pub exec_counts: HashMap<u32, u64>,
    /// I-cache miss count per line base address.
    pub imiss_counts: HashMap<u32, u64>,
    /// Total committed instructions.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
}

impl Profile {
    /// Profiles `image` by running it unprotected with profiling counters
    /// enabled. Returns the profile together with the run result so callers
    /// can validate output and outcome.
    pub fn collect(image: &Image, config: &SimConfig) -> (Profile, RunResult) {
        let config = config.clone().with_profile();
        let result = Machine::new(image, config).run();
        let profile = Profile {
            exec_counts: result.stats.exec_counts.clone(),
            imiss_counts: result.stats.imiss_counts.clone(),
            instructions: result.stats.instructions,
            cycles: result.stats.cycles,
        };
        (profile, result)
    }

    /// Like [`Profile::collect`], panicking unless the program exits
    /// cleanly — profiles of crashing programs are garbage.
    ///
    /// # Panics
    ///
    /// Panics when the baseline run does not end in `Exit(0)`.
    pub fn collect_clean(image: &Image, config: &SimConfig) -> Profile {
        let (profile, result) = Profile::collect(image, config);
        assert!(
            result.outcome == Outcome::Exit(0),
            "baseline run did not exit cleanly: {:?}",
            result.outcome
        );
        profile
    }

    /// How many times `block` was entered (execution count of its leader).
    pub fn block_entries(&self, image: &Image, block: &Block) -> u64 {
        let leader = image.addr_of_index(block.start);
        self.exec_counts.get(&leader).copied().unwrap_or(0)
    }

    /// Total I-cache miss fills whose line base falls in `[start, end)`.
    pub fn miss_fills_in(&self, start: u32, end: u32) -> u64 {
        self.imiss_counts
            .iter()
            .filter(|(&addr, _)| addr >= start && addr < end)
            .map(|(_, &count)| count)
            .sum()
    }

    /// Execution counts aggregated per block, in block order.
    pub fn per_block_entries(&self, image: &Image, cfg: &Cfg) -> Vec<u64> {
        cfg.blocks
            .iter()
            .map(|b| self.block_entries(image, b))
            .collect()
    }

    /// Instructions executed inside `[start, end)`.
    pub fn instructions_in(&self, start: u32, end: u32) -> u64 {
        self.exec_counts
            .iter()
            .filter(|(&addr, _)| addr >= start && addr < end)
            .map(|(_, &count)| count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Image, Profile) {
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 5
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        syscall
"#,
        );
        let profile = Profile::collect_clean(&image, &SimConfig::default());
        (image, profile)
    }

    #[test]
    fn collect_counts_loop_iterations() {
        let (image, profile) = sample();
        let loop_pc = image.symbol("loop").unwrap();
        assert_eq!(profile.exec_counts.get(&loop_pc), Some(&5));
        assert_eq!(profile.instructions, 1 + 5 * 2 + 2);
    }

    #[test]
    fn block_entries_uses_leader() {
        let (image, profile) = sample();
        let cfg = Cfg::recover(&image).unwrap();
        let entries = profile.per_block_entries(&image, &cfg);
        // Blocks: [main], [loop], [exit]; the loop block runs 5 times.
        assert_eq!(entries, vec![1, 5, 1]);
    }

    #[test]
    fn instructions_in_range() {
        let (image, profile) = sample();
        let all = profile.instructions_in(image.text_base, image.text_end());
        assert_eq!(all, profile.instructions);
        assert_eq!(profile.instructions_in(0, 4), 0);
    }

    #[test]
    fn miss_fills_in_covers_whole_text() {
        let (image, profile) = sample();
        assert!(profile.miss_fills_in(image.text_base, image.text_end()) >= 1);
        assert_eq!(profile.miss_fills_in(0, 0x100), 0);
    }

    #[test]
    #[should_panic(expected = "did not exit cleanly")]
    fn collect_clean_rejects_crashes() {
        let image = flexprot_asm::assemble_or_panic("main: break\n");
        Profile::collect_clean(&image, &SimConfig::default());
    }
}
